"""Tests for bulk trace-dataset operations."""

import pytest

from repro.net.ipv4 import parse_address
from repro.traceroute.model import Hop, Trace
from repro.traceroute.ops import (
    by_monitor,
    dedupe_traces,
    filter_traces,
    merge_datasets,
    path_signature,
    sample_traces,
)


def addr(text: str) -> int:
    return parse_address(text)


def trace(monitor="m1", dst="9.9.9.9", hops=("9.0.0.1", "9.0.0.2"), flow=0):
    return Trace(
        monitor,
        addr(dst),
        tuple(Hop(addr(h)) if h else Hop(None) for h in hops),
        flow,
    )


class TestDedupe:
    def test_exact_duplicates_dropped(self):
        traces = [trace(), trace(), trace(dst="9.9.9.8")]
        assert len(list(dedupe_traces(traces))) == 2

    def test_different_paths_kept(self):
        traces = [trace(), trace(hops=("9.0.0.1", "9.0.0.5"))]
        assert len(list(dedupe_traces(traces))) == 2

    def test_different_monitors_kept(self):
        traces = [trace(monitor="m1"), trace(monitor="m2")]
        assert len(list(dedupe_traces(traces))) == 2

    def test_order_preserved(self):
        traces = [trace(dst="9.9.9.9"), trace(dst="9.9.9.8"), trace(dst="9.9.9.9")]
        kept = list(dedupe_traces(traces))
        assert [t.dst for t in kept] == [addr("9.9.9.9"), addr("9.9.9.8")]

    def test_signature_includes_gaps(self):
        with_gap = trace(hops=("9.0.0.1", None, "9.0.0.2"))
        without = trace(hops=("9.0.0.1", "9.0.0.2"))
        assert path_signature(with_gap) != path_signature(without)


class TestSample:
    def traces(self, count=400):
        return [trace(dst=f"9.9.{i // 250}.{i % 250}", flow=i) for i in range(count)]

    def test_fraction_respected(self):
        kept = list(sample_traces(self.traces(), 0.5))
        assert 120 <= len(kept) <= 280

    def test_deterministic(self):
        first = [t.dst for t in sample_traces(self.traces(), 0.3)]
        second = [t.dst for t in sample_traces(self.traces(), 0.3)]
        assert first == second

    def test_monotone_in_fraction(self):
        """A larger fraction keeps a superset (same hash threshold)."""
        small = {(t.dst, t.flow_id) for t in sample_traces(self.traces(), 0.2)}
        large = {(t.dst, t.flow_id) for t in sample_traces(self.traces(), 0.6)}
        assert small <= large

    def test_extremes(self):
        assert list(sample_traces(self.traces(50), 0.0)) == []
        assert len(list(sample_traces(self.traces(50), 1.0))) == 50

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            list(sample_traces([], 1.5))


class TestGroupingFiltering:
    def test_by_monitor(self):
        grouped = by_monitor([trace(monitor="a"), trace(monitor="b"), trace(monitor="a")])
        assert sorted(grouped) == ["a", "b"]
        assert len(grouped["a"]) == 2

    def test_filter_by_monitor(self):
        kept = list(filter_traces([trace(monitor="a"), trace(monitor="b")], monitor="a"))
        assert len(kept) == 1

    def test_filter_by_involving(self):
        traces = [trace(), trace(hops=("9.0.0.5", "9.0.0.6"))]
        kept = list(filter_traces(traces, involving=addr("9.0.0.1")))
        assert len(kept) == 1

    def test_filter_by_min_hops(self):
        traces = [trace(), trace(hops=("9.0.0.1",))]
        assert len(list(filter_traces(traces, min_hops=2))) == 1


class TestMerge:
    def test_merge_dedupes_across_datasets(self):
        first = [trace(), trace(dst="9.9.9.8")]
        second = [trace(), trace(dst="9.9.9.7")]
        merged = list(merge_datasets(first, second))
        assert len(merged) == 3
