"""Tests for precision/recall scoring primitives."""

from repro.eval.metrics import Score


class TestScore:
    def test_precision(self):
        score = Score(tp=9, fp=1)
        assert abs(score.precision - 0.9) < 1e-9

    def test_recall(self):
        score = Score(tp=8, fn=2)
        assert abs(score.recall - 0.8) < 1e-9

    def test_empty_is_perfect(self):
        score = Score()
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_count_fp(self):
        score = Score()
        score.count_fp("internal")
        score.count_fp("internal")
        score.count_fp("wrong_pair")
        assert score.fp == 3
        assert score.fp_reasons == {"internal": 2, "wrong_pair": 1}

    def test_merged(self):
        a = Score(tp=1, fp=0, fn=2)
        a.count_fp("x")
        b = Score(tp=3, fn=1)
        b.count_fp("x")
        b.count_fp("y")
        merged = a.merged_with(b)
        assert merged.tp == 4
        assert merged.fp == 3
        assert merged.fn == 3
        assert merged.fp_reasons == {"x": 2, "y": 1}

    def test_row(self):
        row = Score(tp=1, fp=1, fn=3).row()
        assert row["TP"] == 1
        assert row["Precision%"] == 50.0
        assert row["Recall%"] == 25.0

    def test_str(self):
        assert "P=50.0%" in str(Score(tp=1, fp=1))
