"""Differential tests for the parallel/cached execution layer.

The contract of :mod:`repro.perf` is *byte-identity*: any worker count
and any cache state must produce exactly the serial pipeline's outputs
— inference files, trace JSONL, reports, and exceptions.  These tests
hold it to that, and prove a corrupted cache entry is detected and
rebuilt rather than served.
"""

import json

import pytest

from repro.cli import main
from repro.perf.cache import BundleCache
from repro.perf.ingest import ingest_traces_parallel
from repro.perf.pool import shard_ranges
from repro.robust.errors import MAX_DETAILED_ERRORS, ErrorBudget, ErrorBudgetExceeded
from repro.robust.ingest import ingest_traces
from repro.traceroute.parse import TraceParseError

GOOD = [
    "m1|9.1.0.9|9.0.0.1 9.1.0.1",
    "m1|9.1.0.9|9.0.0.1 * 9.1.0.2@0",
    "m2|9.1.0.9|9.0.0.2 9.1.0.1",
]


class TestShardRanges:
    def test_covers_every_index_once(self):
        for count in (0, 1, 5, 16, 97):
            for shards in (1, 2, 3, 8, 200):
                ranges = shard_ranges(count, shards)
                flat = [i for start, end in ranges for i in range(start, end)]
                assert flat == list(range(count))

    def test_balanced(self):
        sizes = [end - start for start, end in shard_ranges(10, 3)]
        assert max(sizes) - min(sizes) <= 1


class TestIngestEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["lenient", "quarantine"])
    def test_modes_match_serial(self, jobs, mode, tmp_path):
        lines = (GOOD + ["garbage", "", "# note", "m|300.0.0.1|x"]) * 7
        kwargs = dict(format="text", source="traces.txt")
        serial_traces, serial_report = ingest_traces(
            lines, mode=mode, quarantine_dir=tmp_path / "qs", **kwargs
        )
        traces, report = ingest_traces_parallel(
            lines, jobs, mode=mode, quarantine_dir=tmp_path / "qp", **kwargs
        )
        assert traces == serial_traces
        assert report.parsed == serial_report.parsed
        assert report.malformed == serial_report.malformed
        assert report.skipped == serial_report.skipped
        assert report.errors == serial_report.errors
        if mode == "quarantine":
            serial_rejects = (tmp_path / "qs" / "traces.txt.rejects.txt").read_bytes()
            rejects = (tmp_path / "qp" / "traces.txt.rejects.txt").read_bytes()
            assert rejects == serial_rejects

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_strict_raises_earliest_line(self, jobs):
        lines = GOOD + ["bad one"] + GOOD + ["bad two"]
        with pytest.raises(TraceParseError) as serial:
            ingest_traces(lines, mode="strict")
        with pytest.raises(TraceParseError) as parallel:
            ingest_traces_parallel(lines, jobs, mode="strict")
        assert parallel.value.line_number == serial.value.line_number == 4
        assert parallel.value.reason == serial.value.reason

    def test_error_budget_applies(self):
        lines = (GOOD * 10) + ["junk"] * 10
        with pytest.raises(ErrorBudgetExceeded):
            ingest_traces_parallel(lines, 4, mode="lenient", budget=ErrorBudget(0.1))

    def test_detailed_error_cap_matches_serial(self):
        lines = ["junk %d" % i for i in range(MAX_DETAILED_ERRORS + 50)]
        _, serial_report = ingest_traces(lines, mode="lenient")
        _, report = ingest_traces_parallel(lines, 4, mode="lenient")
        assert report.malformed == serial_report.malformed
        assert report.errors == serial_report.errors
        assert len(report.errors) == MAX_DETAILED_ERRORS


@pytest.fixture()
def dataset(tmp_bundle):
    return tmp_bundle(seed=3)


def _run(dataset, out, trace, *extra):
    args = ["run", str(dataset), "--json", "--output", str(out), "--trace", str(trace)]
    assert main(list(args) + list(extra)) == 0


class TestCliJobsEquivalence:
    def test_jobs_byte_identical(self, dataset, tmp_path, capsys):
        outputs = {}
        for jobs in (1, 2, 4):
            out = tmp_path / f"out{jobs}.json"
            trace = tmp_path / f"trace{jobs}.jsonl"
            _run(dataset, out, trace, "--jobs", str(jobs))
            outputs[jobs] = (out.read_bytes(), trace.read_bytes())
        assert outputs[2] == outputs[1]
        assert outputs[4] == outputs[1]


class TestCacheEquivalence:
    def test_cold_then_warm_byte_identical(self, dataset, tmp_path, capsys):
        cache = tmp_path / "cache"
        cold_out, cold_trace = tmp_path / "c.json", tmp_path / "c.jsonl"
        warm_out, warm_trace = tmp_path / "w.json", tmp_path / "w.jsonl"
        plain_out, plain_trace = tmp_path / "p.json", tmp_path / "p.jsonl"
        _run(dataset, plain_out, plain_trace, "--no-cache")
        _run(dataset, cold_out, cold_trace, "--cache", str(cache))
        metrics = tmp_path / "m.json"
        _run(dataset, warm_out, warm_trace, "--cache", str(cache), "--metrics", str(metrics))
        assert cold_out.read_bytes() == plain_out.read_bytes()
        assert warm_out.read_bytes() == plain_out.read_bytes()
        # the trace JSONL is part of the contract: a cache hit emits the
        # same ingest events/counters a clean parse does
        assert cold_trace.read_bytes() == plain_trace.read_bytes()
        assert warm_trace.read_bytes() == plain_trace.read_bytes()
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["perf.cache.hits"] == 1
        assert counters["ingest.records.parsed"] > 0

    def test_corrupt_entry_detected_and_rebuilt(self, dataset, tmp_path, capsys):
        cache = tmp_path / "cache"
        _run(dataset, tmp_path / "cold.json", tmp_path / "cold.jsonl", "--cache", str(cache))
        entries = list(cache.glob("*.mapitc"))
        assert len(entries) == 1
        # flip one payload byte
        data = bytearray(entries[0].read_bytes())
        data[-1] ^= 0xFF
        entries[0].write_bytes(bytes(data))
        metrics = tmp_path / "m1.json"
        _run(
            dataset,
            tmp_path / "re.json",
            tmp_path / "re.jsonl",
            "--cache",
            str(cache),
            "--metrics",
            str(metrics),
        )
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["perf.cache.invalid"] == 1
        assert "perf.cache.hits" not in counters
        assert (tmp_path / "re.json").read_bytes() == (
            tmp_path / "cold.json"
        ).read_bytes()
        # the corrupt entry was overwritten by a good one: next run hits
        metrics2 = tmp_path / "m2.json"
        _run(
            dataset,
            tmp_path / "hit.json",
            tmp_path / "hit.jsonl",
            "--cache",
            str(cache),
            "--metrics",
            str(metrics2),
        )
        assert json.loads(metrics2.read_text())["counters"]["perf.cache.hits"] == 1

    def test_changed_source_misses(self, tmp_bundle, tmp_path, capsys):
        dataset = tmp_bundle(seed=3, copy=True)
        cache = tmp_path / "cache"
        _run(dataset, tmp_path / "a.json", tmp_path / "a.jsonl", "--cache", str(cache))
        with open(dataset / "traces.txt", "a") as handle:
            handle.write("m9|9.1.0.9|9.0.0.1 9.1.0.1\n")
        metrics = tmp_path / "m.json"
        _run(
            dataset,
            tmp_path / "b.json",
            tmp_path / "b.jsonl",
            "--cache",
            str(cache),
            "--metrics",
            str(metrics),
        )
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["perf.cache.misses"] == 1
        assert len(list(cache.glob("*.mapitc"))) == 2

    def test_v1_entry_warm_run_byte_identical(self, dataset, tmp_path, capsys):
        """Golden byte-identity for legacy v1 entries read by new code:
        a warm run over a fabricated old-format entry must produce the
        same output and trace bytes as the cold (v2-writing) run."""
        import hashlib

        cache = tmp_path / "cache"
        cold_out, cold_trace = tmp_path / "c.json", tmp_path / "c.jsonl"
        _run(dataset, cold_out, cold_trace, "--cache", str(cache))
        bundle_cache = BundleCache(cache)
        source_sha = hashlib.sha256((dataset / "traces.txt").read_bytes()).hexdigest()
        hit = bundle_cache.load_entry(source_sha, "text")
        assert hit is not None and hit.entry_version == 2
        TestBundleCacheUnit._write_v1_entry(
            bundle_cache, source_sha, "text", hit.traces(), hit.parsed, hit.skipped
        )
        warm_out, warm_trace = tmp_path / "w.json", tmp_path / "w.jsonl"
        metrics = tmp_path / "m.json"
        _run(
            dataset,
            warm_out,
            warm_trace,
            "--cache",
            str(cache),
            "--metrics",
            str(metrics),
        )
        assert warm_out.read_bytes() == cold_out.read_bytes()
        assert warm_trace.read_bytes() == cold_trace.read_bytes()
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["perf.cache.hits"] == 1
        assert counters["perf.cache.format.v1"] == 1

    def test_dirty_parse_not_cached(self, tmp_bundle, tmp_path, capsys):
        dataset = tmp_bundle(seed=3, copy=True)
        with open(dataset / "traces.txt", "a") as handle:
            handle.write("garbage line\n")
        cache = tmp_path / "cache"
        args = [
            "run",
            str(dataset),
            "--json",
            "--output",
            str(tmp_path / "o.json"),
            "--on-error",
            "lenient",
            "--cache",
            str(cache),
        ]
        assert main(args) == 0
        assert list(cache.glob("*.mapitc")) == []


class TestBundleCacheUnit:
    def test_load_missing_is_miss(self, tmp_path):
        assert BundleCache(tmp_path).load("0" * 64, "text") is None

    def test_round_trip(self, tmp_path):
        from repro.robust.errors import IngestReport
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        report = IngestReport(source="traces.txt", parsed=len(traces))
        cache = BundleCache(tmp_path)
        assert cache.store("a" * 64, "text", traces, report)
        assert cache.load("a" * 64, "text") == (traces, len(traces), 0)
        assert cache.load("b" * 64, "text") is None  # different source
        assert cache.load("a" * 64, "jsonl") is None  # different format

    def test_dirty_report_refused(self, tmp_path):
        from repro.robust.errors import IngestReport

        report = IngestReport(source="traces.txt", parsed=1, malformed=2)
        assert not BundleCache(tmp_path).store("a" * 64, "text", [], report)
        assert list(tmp_path.iterdir()) == []

    def test_stored_entries_are_binary_v2(self, tmp_path):
        from repro.perf.cache import BINARY_MAGIC
        from repro.robust.errors import IngestReport
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        report = IngestReport(source="traces.txt", parsed=len(traces))
        cache = BundleCache(tmp_path)
        assert cache.store("a" * 64, "text", traces, report)
        raw = cache.entry_path("a" * 64, "text").read_bytes()
        assert raw.startswith(BINARY_MAGIC)

    def test_header_tamper_is_invalid(self, tmp_path):
        import struct

        from repro.robust.errors import IngestReport
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        report = IngestReport(source="traces.txt", parsed=len(traces))
        cache = BundleCache(tmp_path)
        cache.store("a" * 64, "text", traces, report)
        path = cache.entry_path("a" * 64, "text")
        raw = bytearray(path.read_bytes())
        # doctor the struct header's parsed-count field (offset 12, u32)
        struct.pack_into("<I", raw, 12, 999)
        path.write_bytes(bytes(raw))
        assert cache.load("a" * 64, "text") is None

    @staticmethod
    def _write_v1_entry(cache, source_sha, format, traces, parsed, skipped=0):
        """Fabricate an entry in the legacy v1 layout (JSON header line +
        pickle of compact tuples) at the entry's canonical path."""
        import hashlib
        import pickle

        from repro.perf.cache import MAGIC, _pack

        payload = pickle.dumps(_pack(traces), protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "magic": MAGIC,
            "version": 1,
            "format": format,
            "source_sha256": source_sha,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "parsed": parsed,
            "skipped": skipped,
        }
        cache._ensure_directory()
        cache.entry_path(source_sha, format).write_bytes(
            json.dumps(header, separators=(",", ":")).encode() + b"\n" + payload
        )

    def test_v1_entry_reads_transparently(self, tmp_path):
        from repro.obs.metrics import Metrics
        from repro.obs.observer import Observability
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        metrics = Metrics()
        cache = BundleCache(tmp_path, obs=Observability(metrics=metrics))
        self._write_v1_entry(cache, "a" * 64, "text", traces, len(traces))
        assert cache.load("a" * 64, "text") == (traces, len(traces), 0)
        assert metrics.counters["perf.cache.hits"] == 1
        assert metrics.counters["perf.cache.format.v1"] == 1
        hit = cache.load_entry("a" * 64, "text")
        assert hit.entry_version == 1 and hit.flat is None

    def test_v1_entry_tamper_still_detected(self, tmp_path):
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        cache = BundleCache(tmp_path)
        self._write_v1_entry(cache, "a" * 64, "text", traces, len(traces))
        path = cache.entry_path("a" * 64, "text")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.load("a" * 64, "text") is None

    def test_v2_hit_counts_format_metric(self, tmp_path):
        from repro.obs.metrics import Metrics
        from repro.obs.observer import Observability
        from repro.robust.errors import IngestReport
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        report = IngestReport(source="traces.txt", parsed=len(traces))
        metrics = Metrics()
        cache = BundleCache(tmp_path, obs=Observability(metrics=metrics))
        assert cache.store("a" * 64, "text", traces, report)
        hit = cache.load_entry("a" * 64, "text")
        assert hit.entry_version == 2 and hit.flat is not None
        assert hit.traces() == traces
        assert metrics.counters["perf.cache.format.v2"] == 1


class TestCacheHardening:
    """Races and write failures degrade the cache, never the run."""

    @staticmethod
    def _clean(parsed=3):
        from repro.robust.errors import IngestReport
        from repro.traceroute.parse import parse_text_traces

        traces = list(parse_text_traces(GOOD))
        return traces, IngestReport(source="traces.txt", parsed=len(traces))

    @staticmethod
    def _metrics_obs():
        from repro.obs.metrics import Metrics
        from repro.obs.observer import Observability

        metrics = Metrics()
        return Observability(metrics=metrics), metrics

    def test_overwriting_existing_entry_counts_contention(self, tmp_path):
        traces, report = self._clean()
        obs, metrics = self._metrics_obs()
        cache = BundleCache(tmp_path, obs=obs)
        assert cache.store("a" * 64, "text", traces, report)
        assert "perf.cache.contended" not in metrics.counters
        # a second run racing over the same dataset stores the same key
        assert cache.store("a" * 64, "text", traces, report)
        assert metrics.counters["perf.cache.contended"] == 1
        assert cache.load("a" * 64, "text") == (traces, len(traces), 0)

    def test_store_creates_missing_directory(self, tmp_path):
        traces, report = self._clean()
        cache = BundleCache(tmp_path / "deep" / "nested")
        assert cache.store("a" * 64, "text", traces, report)
        assert cache.load("a" * 64, "text") == (traces, len(traces), 0)

    def test_enospc_store_fails_soft(self, tmp_path):
        from repro.robust.faults import ChaosInjector, chaos

        traces, report = self._clean()
        obs, metrics = self._metrics_obs()
        cache = BundleCache(tmp_path, obs=obs)
        with chaos(ChaosInjector(cache_enospc=True)):
            assert not cache.store("a" * 64, "text", traces, report)
        assert metrics.counters["perf.cache.store_failed"] == 1
        # the failed store left no partial entry behind
        assert cache.load("a" * 64, "text") is None
        # and a later healthy store succeeds
        assert cache.store("a" * 64, "text", traces, report)
