"""mapitlint: per-rule fixtures, pragmas, baseline, CLI, self-check.

The fixture pairs under ``tests/fixtures/lint/`` hold one clean and
one violating file per rule; the doc-sync rules (OBS001/CLI001) use
the two ``docroot_*`` mini-trees whose ``docs/`` either match or lag
their ``src/``.  The final self-check runs the real linter over the
repo's ``src/`` against the checked-in baseline — the same gate CI
applies — so a violation introduced anywhere in ``src/`` fails here
first.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.mapitlint import baseline as baseline_mod  # noqa: E402
from tools.mapitlint import cli as lint_cli  # noqa: E402
from tools.mapitlint.engine import parse_pragmas, run_lint  # noqa: E402
from tools.mapitlint.registry import known_ids  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint_paths(paths, root, **kwargs):
    findings, errors, _ = run_lint([Path(p) for p in paths], Path(root), **kwargs)
    assert not errors, errors
    return findings


def rules_hit(findings):
    return {finding.rule for finding in findings}


# -- registry -----------------------------------------------------------------


def test_all_rules_registered():
    assert known_ids() == [
        "CLI001", "DET001", "DET002", "ERR001", "FORK001", "FORK002",
        "OBS001", "ORA001",
    ]


# -- per-rule fixtures --------------------------------------------------------


@pytest.mark.parametrize(
    "rule, clean, violating, expected_min",
    [
        ("DET001", "det001_clean.py", "det001_violating.py", 4),
        ("DET002", "det002_clean.py", "det002_violating.py", 4),
        ("FORK001", "perf/fork001_clean.py", "perf/fork001_violating.py", 5),
        ("FORK002", "perf/fork002_clean.py", "perf/fork002_violating.py", 5),
        ("ERR001", "err001_clean.py", "err001_violating.py", 3),
    ],
)
def test_module_rule_fixtures(rule, clean, violating, expected_min):
    clean_findings = lint_paths([FIXTURES / clean], REPO_ROOT, select=[rule])
    assert clean_findings == [], [str(f) for f in clean_findings]

    found = lint_paths([FIXTURES / violating], REPO_ROOT, select=[rule])
    assert len(found) >= expected_min, [str(f) for f in found]
    assert rules_hit(found) == {rule}


def test_det001_messages_name_the_hazard():
    found = lint_paths([FIXTURES / "det001_violating.py"], REPO_ROOT, select=["DET001"])
    messages = " ".join(finding.message for finding in found)
    assert "iterating a set" in messages
    assert "filesystem enumeration" in messages
    assert "hidden global state" in messages


def test_fork001_covers_each_hazard_kind():
    found = lint_paths(
        [FIXTURES / "perf" / "fork001_violating.py"], REPO_ROOT, select=["FORK001"]
    )
    messages = " ".join(finding.message for finding in found)
    assert "lambda" in messages
    assert "bound method" in messages
    assert "imap_unordered" in messages
    assert "closure" in messages or "nested function" in messages
    assert "module global" in messages


def test_fork002_names_the_supervised_alternative():
    found = lint_paths(
        [FIXTURES / "perf" / "fork002_violating.py"], REPO_ROOT, select=["FORK002"]
    )
    messages = " ".join(finding.message for finding in found)
    assert "fork_map" in messages
    assert "Pool construction" in messages
    assert "bypasses" in messages


def test_fork002_allows_the_supervisor_itself(tmp_path):
    module = tmp_path / "src" / "repro" / "robust" / "supervise.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        "def dispatch(pool, worker, shard):\n"
        "    return pool.apply_async(worker, (shard,))\n"
    )
    assert lint_paths([module], tmp_path, select=["FORK002"]) == []


@pytest.mark.parametrize(
    "rule, expected_clean, expected_violations",
    [("OBS001", 0, 3), ("CLI001", 0, 1)],
)
def test_doc_sync_rule_fixtures(rule, expected_clean, expected_violations):
    clean_root = FIXTURES / "docroot_clean"
    found = lint_paths([clean_root / "src"], clean_root, select=[rule])
    assert len(found) == expected_clean, [str(f) for f in found]

    stale_root = FIXTURES / "docroot_violating"
    found = lint_paths([stale_root / "src"], stale_root, select=[rule])
    assert len(found) == expected_violations, [str(f) for f in found]
    assert rules_hit(found) == {rule}


def test_doc_sync_reports_missing_doc(tmp_path):
    root = tmp_path / "tree"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "src" / "repro" / "emitter.py").write_text(
        "def go(obs):\n    obs.event('thing.happened')\n"
    )
    found = lint_paths([root / "src"], root, select=["OBS001"])
    assert len(found) == 1
    assert "not found" in found[0].message


# -- ORA001: oracle independence ----------------------------------------------


def _oracle_module(tmp_path, body):
    module = tmp_path / "src" / "repro" / "oracle" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text(body)
    return module


def test_ora001_forbids_core_imports_in_oracle(tmp_path):
    module = _oracle_module(
        tmp_path,
        "import repro.core\n"
        "from repro.core.engine import Engine\n"
        "from repro.core import mapit\n",
    )
    found = lint_paths([module], tmp_path, select=["ORA001"])
    assert len(found) == 3, [str(f) for f in found]
    assert rules_hit(found) == {"ORA001"}
    assert "independent of repro.core" in found[0].message


def test_ora001_allows_everything_else(tmp_path):
    module = _oracle_module(
        tmp_path,
        "import repro.graph.neighbors\n"
        "from repro.corelike import thing\n"  # prefix match must be exact
        "from repro.obs.observer import NULL_OBS\n",
    )
    assert lint_paths([module], tmp_path, select=["ORA001"]) == []


def test_ora001_ignores_files_outside_oracle(tmp_path):
    module = tmp_path / "src" / "repro" / "diff" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text("from repro.core.mapit import MapIt\n")
    assert lint_paths([module], tmp_path, select=["ORA001"]) == []


def test_ora001_repo_oracle_is_independent():
    found = lint_paths([REPO_ROOT / "src" / "repro" / "oracle"], REPO_ROOT,
                       select=["ORA001"])
    assert found == [], [str(f) for f in found]


# -- pragmas ------------------------------------------------------------------


def test_parse_pragmas_line_file_and_all():
    lines = [
        "x = set()  # mapitlint: disable=DET001 -- reviewed",
        "# mapitlint: disable-file=ERR001",
        "y = 1  # mapitlint: disable=all",
        "z = 2  # mapitlint: disable=DET001,DET002",
    ]
    line_pragmas, file_pragmas = parse_pragmas(lines)
    assert line_pragmas[1] == {"DET001"}
    assert line_pragmas[3] == {"all"}
    assert line_pragmas[4] == {"DET001", "DET002"}
    assert file_pragmas == {"ERR001"}


def test_line_pragma_suppresses_finding(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    return [x for x in set(items)]"
        "  # mapitlint: disable=DET001 -- order-insensitive sink\n"
    )
    assert lint_paths([source], tmp_path, select=["DET001"]) == []


def test_comment_line_pragma_governs_next_line(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    # mapitlint: disable=DET001 -- order-insensitive sink\n"
        "    return [x for x in set(items)]\n"
    )
    assert lint_paths([source], tmp_path, select=["DET001"]) == []


def test_file_pragma_suppresses_whole_file(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "# mapitlint: disable-file=DET001 -- fixture\n"
        "def f(items):\n"
        "    return [x for x in set(items)]\n"
        "def g(items):\n"
        "    return {x for x in set(items)}\n"
    )
    assert lint_paths([source], tmp_path, select=["DET001"]) == []


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    return [x for x in set(items)]  # mapitlint: disable=ERR001\n"
    )
    assert len(lint_paths([source], tmp_path, select=["DET001"])) == 1


# -- baseline -----------------------------------------------------------------


def test_baseline_grandfathers_and_reports_stale(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    findings = lint_paths([source], tmp_path, select=["DET001"])
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(baseline_path, findings, {})
    entries = baseline_mod.load(baseline_path)
    for entry in entries.values():
        entry["justification"] = "fixture: sink is order-insensitive"
    new, grandfathered, stale, unjustified = baseline_mod.apply(findings, entries)
    assert new == [] and len(grandfathered) == 1
    assert stale == [] and unjustified == []

    # fix the violation: the entry goes stale
    source.write_text("def f(items):\n    return [x for x in sorted(items)]\n")
    fixed = lint_paths([source], tmp_path, select=["DET001"])
    new, grandfathered, stale, unjustified = baseline_mod.apply(fixed, entries)
    assert new == [] and grandfathered == []
    assert len(stale) == 1


def test_baseline_without_justification_is_flagged(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    findings = lint_paths([source], tmp_path, select=["DET001"])
    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(baseline_path, findings, {})
    entries = baseline_mod.load(baseline_path)
    new, _, _, unjustified = baseline_mod.apply(findings, entries)
    assert new == []
    assert len(unjustified) == 1


def test_fingerprints_survive_line_shifts(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    before = lint_paths([source], tmp_path, select=["DET001"])
    source.write_text(
        "# a new leading comment shifts every line number\n\n"
        "def f(items):\n    return [x for x in set(items)]\n"
    )
    after = lint_paths([source], tmp_path, select=["DET001"])
    assert before[0].fingerprint == after[0].fingerprint
    assert before[0].line != after[0].line


# -- CLI ----------------------------------------------------------------------


def test_cli_clean_exit_zero(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("VALUE = 1\n")
    code = lint_cli.main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_findings_exit_one(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    code = lint_cli.main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--no-baseline", "--format", "json"]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["new"] == 1
    finding = document["findings"][0]
    assert finding["rule"] == "DET001"
    assert finding["path"] == "mod.py"
    assert finding["fingerprint"]


def test_cli_disable_rule(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--no-baseline", "--disable", "DET001"]
    )
    capsys.readouterr()
    assert code == 0


def test_cli_unknown_rule_exits_two(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        lint_cli.main([str(tmp_path), "--select", "NOPE999"])
    capsys.readouterr()
    assert excinfo.value.code == 2


def test_cli_update_baseline_roundtrip(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    baseline_path = tmp_path / "baseline.json"
    code = lint_cli.main(
        [
            str(tmp_path), "--root", str(tmp_path),
            "--baseline", str(baseline_path), "--update-baseline",
        ]
    )
    assert code == 0
    capsys.readouterr()
    entries = baseline_mod.load(baseline_path)
    assert len(entries) == 1
    # without justifications the run still fails
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--baseline", str(baseline_path)]
    )
    assert code == 1
    assert "UNJUSTIFIED" in capsys.readouterr().out
    # justified: clean
    for entry in entries.values():
        entry["justification"] = "fixture"
    findings = lint_paths([tmp_path], tmp_path)
    baseline_mod.save(baseline_path, findings, entries)
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--baseline", str(baseline_path)]
    )
    assert code == 0
    assert "grandfathered" in capsys.readouterr().out


def test_cli_syntax_error_reported(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def f(:\n")
    code = lint_cli.main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
    assert code == 1
    assert "SyntaxError" in capsys.readouterr().out


# -- repo self-check ----------------------------------------------------------


def test_repo_src_is_clean_modulo_baseline():
    findings, errors, scanned = run_lint([REPO_ROOT / "src"], REPO_ROOT)
    assert not errors, errors
    assert scanned > 50
    entries = baseline_mod.load(baseline_mod.default_path())
    new, _, stale, unjustified = baseline_mod.apply(findings, entries)
    assert new == [], "\n".join(str(f) for f in new)
    assert stale == [], stale
    assert unjustified == [], unjustified


def test_seeded_violation_in_core_is_caught(tmp_path):
    """The acceptance gate: a fresh violation in src/repro/core fails."""
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "seeded.py").write_text(
        "def merge(halves):\n"
        "    out = []\n"
        "    for half in set(halves):\n"
        "        try:\n"
        "            out.append(half)\n"
        "        except:\n"
        "            pass\n"
        "    return out\n"
    )
    findings = lint_paths([tmp_path / "src"], tmp_path)
    assert {"DET001", "ERR001"} <= rules_hit(findings)
