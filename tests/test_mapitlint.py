"""mapitlint: per-rule fixtures, pragmas, baseline, CLI, self-check.

The fixture pairs under ``tests/fixtures/lint/`` hold one clean and
one violating file per rule; the doc-sync rules (OBS001/CLI001) use
the two ``docroot_*`` mini-trees whose ``docs/`` either match or lag
their ``src/``.  The final self-check runs the real linter over the
repo's ``src/`` against the checked-in baseline — the same gate CI
applies — so a violation introduced anywhere in ``src/`` fails here
first.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.mapitlint import baseline as baseline_mod  # noqa: E402
from tools.mapitlint import cli as lint_cli  # noqa: E402
from tools.mapitlint.engine import parse_pragmas, run_lint  # noqa: E402
from tools.mapitlint.findings import legacy_fingerprint  # noqa: E402
from tools.mapitlint.registry import known_ids  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint_paths(paths, root, **kwargs):
    findings, errors, _ = run_lint([Path(p) for p in paths], Path(root), **kwargs)
    assert not errors, errors
    return findings


def rules_hit(findings):
    return {finding.rule for finding in findings}


# -- registry -----------------------------------------------------------------


def test_all_rules_registered():
    assert known_ids() == [
        "CLI001", "DET001", "DET002", "DET003", "ERR001", "FORK001",
        "FORK002", "FORK003", "OBS001", "ORA001", "RACE001", "RACE002",
    ]


# -- per-rule fixtures --------------------------------------------------------


@pytest.mark.parametrize(
    "rule, clean, violating, expected_min",
    [
        ("DET001", "det001_clean.py", "det001_violating.py", 4),
        ("DET002", "det002_clean.py", "det002_violating.py", 4),
        ("FORK001", "perf/fork001_clean.py", "perf/fork001_violating.py", 5),
        ("FORK002", "perf/fork002_clean.py", "perf/fork002_violating.py", 5),
        ("ERR001", "err001_clean.py", "err001_violating.py", 3),
    ],
)
def test_module_rule_fixtures(rule, clean, violating, expected_min):
    clean_findings = lint_paths([FIXTURES / clean], REPO_ROOT, select=[rule])
    assert clean_findings == [], [str(f) for f in clean_findings]

    found = lint_paths([FIXTURES / violating], REPO_ROOT, select=[rule])
    assert len(found) >= expected_min, [str(f) for f in found]
    assert rules_hit(found) == {rule}


def test_det001_messages_name_the_hazard():
    found = lint_paths([FIXTURES / "det001_violating.py"], REPO_ROOT, select=["DET001"])
    messages = " ".join(finding.message for finding in found)
    assert "iterating a set" in messages
    assert "filesystem enumeration" in messages
    assert "hidden global state" in messages


def test_fork001_covers_each_hazard_kind():
    found = lint_paths(
        [FIXTURES / "perf" / "fork001_violating.py"], REPO_ROOT, select=["FORK001"]
    )
    messages = " ".join(finding.message for finding in found)
    assert "lambda" in messages
    assert "bound method" in messages
    assert "imap_unordered" in messages
    assert "closure" in messages or "nested function" in messages
    assert "module global" in messages


def test_fork002_names_the_supervised_alternative():
    found = lint_paths(
        [FIXTURES / "perf" / "fork002_violating.py"], REPO_ROOT, select=["FORK002"]
    )
    messages = " ".join(finding.message for finding in found)
    assert "fork_map" in messages
    assert "Pool construction" in messages
    assert "bypasses" in messages


def test_fork002_allows_the_supervisor_itself(tmp_path):
    module = tmp_path / "src" / "repro" / "robust" / "supervise.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        "def dispatch(pool, worker, shard):\n"
        "    return pool.apply_async(worker, (shard,))\n"
    )
    assert lint_paths([module], tmp_path, select=["FORK002"]) == []


@pytest.mark.parametrize(
    "rule, expected_clean, expected_violations",
    [("OBS001", 0, 3), ("CLI001", 0, 1)],
)
def test_doc_sync_rule_fixtures(rule, expected_clean, expected_violations):
    clean_root = FIXTURES / "docroot_clean"
    found = lint_paths([clean_root / "src"], clean_root, select=[rule])
    assert len(found) == expected_clean, [str(f) for f in found]

    stale_root = FIXTURES / "docroot_violating"
    found = lint_paths([stale_root / "src"], stale_root, select=[rule])
    assert len(found) == expected_violations, [str(f) for f in found]
    assert rules_hit(found) == {rule}


def test_doc_sync_reports_missing_doc(tmp_path):
    root = tmp_path / "tree"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "src" / "repro" / "emitter.py").write_text(
        "def go(obs):\n    obs.event('thing.happened')\n"
    )
    found = lint_paths([root / "src"], root, select=["OBS001"])
    assert len(found) == 1
    assert "not found" in found[0].message


# -- ORA001: oracle independence ----------------------------------------------


def _oracle_module(tmp_path, body):
    module = tmp_path / "src" / "repro" / "oracle" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text(body)
    return module


def test_ora001_forbids_core_imports_in_oracle(tmp_path):
    module = _oracle_module(
        tmp_path,
        "import repro.core\n"
        "from repro.core.engine import Engine\n"
        "from repro.core import mapit\n",
    )
    found = lint_paths([module], tmp_path, select=["ORA001"])
    assert len(found) == 3, [str(f) for f in found]
    assert rules_hit(found) == {"ORA001"}
    assert "independent of repro.core" in found[0].message


def test_ora001_allows_everything_else(tmp_path):
    module = _oracle_module(
        tmp_path,
        "import repro.graph.neighbors\n"
        "from repro.corelike import thing\n"  # prefix match must be exact
        "from repro.obs.observer import NULL_OBS\n",
    )
    assert lint_paths([module], tmp_path, select=["ORA001"]) == []


def test_ora001_ignores_files_outside_oracle(tmp_path):
    module = tmp_path / "src" / "repro" / "diff" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text("from repro.core.mapit import MapIt\n")
    assert lint_paths([module], tmp_path, select=["ORA001"]) == []


def test_ora001_repo_oracle_is_independent():
    found = lint_paths([REPO_ROOT / "src" / "repro" / "oracle"], REPO_ROOT,
                       select=["ORA001"])
    assert found == [], [str(f) for f in found]


# -- pragmas ------------------------------------------------------------------


def test_parse_pragmas_line_file_and_all():
    lines = [
        "x = set()  # mapitlint: disable=DET001 -- reviewed",
        "# mapitlint: disable-file=ERR001",
        "y = 1  # mapitlint: disable=all",
        "z = 2  # mapitlint: disable=DET001,DET002",
    ]
    line_pragmas, file_pragmas = parse_pragmas(lines)
    assert line_pragmas[1] == {"DET001"}
    assert line_pragmas[3] == {"all"}
    assert line_pragmas[4] == {"DET001", "DET002"}
    assert file_pragmas == {"ERR001"}


def test_line_pragma_suppresses_finding(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    return [x for x in set(items)]"
        "  # mapitlint: disable=DET001 -- order-insensitive sink\n"
    )
    assert lint_paths([source], tmp_path, select=["DET001"]) == []


def test_comment_line_pragma_governs_next_line(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    # mapitlint: disable=DET001 -- order-insensitive sink\n"
        "    return [x for x in set(items)]\n"
    )
    assert lint_paths([source], tmp_path, select=["DET001"]) == []


def test_file_pragma_suppresses_whole_file(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "# mapitlint: disable-file=DET001 -- fixture\n"
        "def f(items):\n"
        "    return [x for x in set(items)]\n"
        "def g(items):\n"
        "    return {x for x in set(items)}\n"
    )
    assert lint_paths([source], tmp_path, select=["DET001"]) == []


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    return [x for x in set(items)]  # mapitlint: disable=ERR001\n"
    )
    assert len(lint_paths([source], tmp_path, select=["DET001"])) == 1


# -- baseline -----------------------------------------------------------------


def test_baseline_grandfathers_and_reports_stale(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    findings = lint_paths([source], tmp_path, select=["DET001"])
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(baseline_path, findings, {})
    entries, version = baseline_mod.load(baseline_path)
    assert version == baseline_mod.BASELINE_VERSION
    for entry in entries.values():
        entry["justification"] = "fixture: sink is order-insensitive"
    new, grandfathered, stale, unjustified = baseline_mod.apply(findings, entries)
    assert new == [] and len(grandfathered) == 1
    assert stale == [] and unjustified == []

    # fix the violation: the entry goes stale
    source.write_text("def f(items):\n    return [x for x in sorted(items)]\n")
    fixed = lint_paths([source], tmp_path, select=["DET001"])
    new, grandfathered, stale, unjustified = baseline_mod.apply(fixed, entries)
    assert new == [] and grandfathered == []
    assert len(stale) == 1


def test_baseline_without_justification_is_flagged(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    findings = lint_paths([source], tmp_path, select=["DET001"])
    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(baseline_path, findings, {})
    entries, _ = baseline_mod.load(baseline_path)
    new, _, _, unjustified = baseline_mod.apply(findings, entries)
    assert new == []
    assert len(unjustified) == 1


def test_fingerprints_survive_line_shifts(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    before = lint_paths([source], tmp_path, select=["DET001"])
    source.write_text(
        "# a new leading comment shifts every line number\n\n"
        "def f(items):\n    return [x for x in set(items)]\n"
    )
    after = lint_paths([source], tmp_path, select=["DET001"])
    assert before[0].fingerprint == after[0].fingerprint
    assert before[0].line != after[0].line


# -- CLI ----------------------------------------------------------------------


def test_cli_clean_exit_zero(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("VALUE = 1\n")
    code = lint_cli.main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_findings_exit_one(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    code = lint_cli.main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--no-baseline", "--format", "json"]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["new"] == 1
    finding = document["findings"][0]
    assert finding["rule"] == "DET001"
    assert finding["path"] == "mod.py"
    assert finding["fingerprint"]


def test_cli_disable_rule(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--no-baseline", "--disable", "DET001"]
    )
    capsys.readouterr()
    assert code == 0


def test_cli_unknown_rule_exits_two(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        lint_cli.main([str(tmp_path), "--select", "NOPE999"])
    capsys.readouterr()
    assert excinfo.value.code == 2


def test_cli_update_baseline_roundtrip(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f(i):\n    return [x for x in set(i)]\n")
    baseline_path = tmp_path / "baseline.json"
    code = lint_cli.main(
        [
            str(tmp_path), "--root", str(tmp_path),
            "--baseline", str(baseline_path), "--update-baseline",
        ]
    )
    assert code == 0
    capsys.readouterr()
    entries, _ = baseline_mod.load(baseline_path)
    assert len(entries) == 1
    # without justifications the run still fails
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--baseline", str(baseline_path)]
    )
    assert code == 1
    assert "UNJUSTIFIED" in capsys.readouterr().out
    # justified: clean
    for entry in entries.values():
        entry["justification"] = "fixture"
    findings = lint_paths([tmp_path], tmp_path)
    baseline_mod.save(baseline_path, findings, entries)
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--baseline", str(baseline_path)]
    )
    assert code == 0
    assert "grandfathered" in capsys.readouterr().out


def test_cli_syntax_error_reported(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def f(:\n")
    code = lint_cli.main([str(tmp_path), "--root", str(tmp_path), "--no-baseline"])
    assert code == 1
    assert "SyntaxError" in capsys.readouterr().out


# -- repo self-check ----------------------------------------------------------


def test_repo_src_is_clean_modulo_baseline():
    findings, errors, scanned = run_lint(
        [REPO_ROOT / "src", REPO_ROOT / "tools"], REPO_ROOT
    )
    assert not errors, errors
    assert scanned > 50
    entries, _ = baseline_mod.load(baseline_mod.default_path())
    new, _, stale, unjustified = baseline_mod.apply(findings, entries)
    assert new == [], "\n".join(str(f) for f in new)
    assert stale == [], stale
    assert unjustified == [], unjustified


def test_seeded_violation_in_core_is_caught(tmp_path):
    """The acceptance gate: a fresh violation in src/repro/core fails."""
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "seeded.py").write_text(
        "def merge(halves):\n"
        "    out = []\n"
        "    for half in set(halves):\n"
        "        try:\n"
        "            out.append(half)\n"
        "        except:\n"
        "            pass\n"
        "    return out\n"
    )
    findings = lint_paths([tmp_path / "src"], tmp_path)
    assert {"DET001", "ERR001"} <= rules_hit(findings)


# -- whole-program rules: RACE001/RACE002, FORK003, DET003 --------------------


def test_race001_fixture_fires_with_both_locations():
    found = lint_paths(
        [FIXTURES / "serve" / "race001_violating.py"],
        REPO_ROOT,
        select=["RACE001"],
    )
    assert len(found) >= 1, [str(f) for f in found]
    finding = found[0]
    assert "Pipeline.stats" in finding.message
    assert "without a mutual lock" in finding.message
    # the writer is the primary location; the cross-role reader rides
    # along in `related` so the report names both sides of the race
    assert "Pipeline.report" in finding.related
    assert "race001_violating.py" in finding.related


def test_race002_fixture_flags_multi_role_rmw():
    found = lint_paths(
        [FIXTURES / "serve" / "race001_violating.py"],
        REPO_ROOT,
        select=["RACE002"],
    )
    assert len(found) >= 1, [str(f) for f in found]
    messages = " ".join(f.message for f in found)
    assert "read-modify-write" in messages
    assert "many instances" in messages


def test_race_clean_fixture_passes():
    found = lint_paths(
        [FIXTURES / "serve" / "race001_clean.py"],
        REPO_ROOT,
        select=["RACE001", "RACE002"],
    )
    assert found == [], [str(f) for f in found]


def test_fork003_flags_dict_worker_and_container_field():
    found = lint_paths(
        [FIXTURES / "perf" / "fork003_violating.py"],
        REPO_ROOT,
        select=["FORK003"],
    )
    messages = {f.message for f in found}
    assert any("unpacked dict" in m for m in messages), messages
    assert any("ShardOutcome.hops" in m for m in messages), messages
    # every finding carries the fork_map call site as the sink
    assert all("fork_map call site" in f.related for f in found)


def test_fork003_clean_fixture_passes():
    found = lint_paths(
        [FIXTURES / "perf" / "fork003_clean.py"], REPO_ROOT, select=["FORK003"]
    )
    assert found == [], [str(f) for f in found]


def test_det003_traces_time_two_calls_deep():
    found = lint_paths(
        [FIXTURES / "det003_violating.py"], REPO_ROOT, select=["DET003"]
    )
    assert len(found) == 2, [str(f) for f in found]
    producer = next(f for f in found if "state_fingerprint" in f.message)
    # the message carries the full hop chain from source to sink ...
    assert "time.time()" in producer.message
    assert "_now" in producer.message and "_salt" in producer.message
    # ... and `related` points at the source line itself
    assert producer.related.startswith("source ")
    assert "det003_violating.py:9" in producer.related
    sink_call = next(f for f in found if "make_cache_key" in f.message)
    assert "cache_key" in sink_call.message


def test_det003_clean_fixture_passes():
    found = lint_paths(
        [FIXTURES / "det003_clean.py"], REPO_ROOT, select=["DET003"]
    )
    assert found == [], [str(f) for f in found]


# -- pragma edge cases --------------------------------------------------------


def test_multi_rule_pragma_suppresses_both(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "def f(items):\n"
        "    # mapitlint: disable=DET001,ERR001 -- fixture: both reviewed\n"
        "    for x in set(items):\n"
        "        try:\n"
        "            return x\n"
        "        except:\n"
        "            pass\n"
    )
    found = lint_paths([source], tmp_path, select=["DET001"])
    assert found == [], [str(f) for f in found]
    # ERR001 reports on the bare-except line, which the pragma does not
    # govern -- only DET001's set-iteration line is covered
    still = lint_paths([source], tmp_path, select=["ERR001"])
    assert len(still) == 1


def test_pragma_on_decorator_governs_def_line(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "import functools\n"
        "from typing import List\n"
        "\n"
        "\n"
        "class Item:\n"
        "    pass\n"
        "\n"
        "\n"
        "@functools.lru_cache  # mapitlint: disable=FORK003 -- measured: tiny\n"
        "def worker(shard) -> List[Item]:\n"
        "    return []\n"
        "\n"
        "\n"
        "def run(shards, fork_map):\n"
        "    return fork_map(worker, shards)\n"
    )
    found = lint_paths([source], tmp_path, select=["FORK003"])
    assert found == [], [str(f) for f in found]
    # without the pragma the same worker is flagged at its def line
    source.write_text(source.read_text().replace(
        "  # mapitlint: disable=FORK003 -- measured: tiny", ""
    ))
    found = lint_paths([source], tmp_path, select=["FORK003"])
    assert len(found) == 1
    assert found[0].line == 10


def test_unknown_rule_id_in_pragma_is_an_error(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(
        "VALUE = 1  # mapitlint: disable=NOPE999 -- typo\n"
    )
    findings, errors, _ = run_lint([source], tmp_path)
    assert findings == []
    assert len(errors) == 1
    assert "NOPE999" in errors[0] and "unknown rule id" in errors[0]


def test_unknown_rule_id_in_file_pragma_is_an_error(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("# mapitlint: disable-file=WAT123\nVALUE = 1\n")
    _, errors, _ = run_lint([source], tmp_path)
    assert any("WAT123" in error for error in errors)


# -- baseline v1 -> v2 migration ----------------------------------------------


def test_baseline_v1_migrates_keeping_justification(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("def f(items):\n    return [x for x in set(items)]\n")
    findings = lint_paths([source], tmp_path, select=["DET001"])
    assert len(findings) == 1
    finding = findings[0]
    # a v1 file: strip-only fingerprint, a `line` field, no version
    v1_fp = legacy_fingerprint(finding.rule, finding.path, finding.snippet, 0)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({
        "entries": [{
            "fingerprint": v1_fp,
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "justification": "v1-era review: sink is order-insensitive",
        }]
    }))
    entries, version = baseline_mod.load(baseline_path)
    assert version == 1
    migrated = baseline_mod.migrate(findings, entries, version)
    assert finding.fingerprint in migrated
    assert migrated[finding.fingerprint]["justification"].startswith("v1-era")
    new, grandfathered, stale, unjustified = baseline_mod.apply(
        findings, migrated
    )
    assert new == [] and len(grandfathered) == 1
    assert stale == [] and unjustified == []
    # a save after migration writes v2 (snippet-keyed, no line field)
    baseline_mod.save(baseline_path, findings, migrated)
    data = json.loads(baseline_path.read_text())
    assert data["version"] == baseline_mod.BASELINE_VERSION
    assert "snippet" in data["entries"][0]
    assert "line" not in data["entries"][0]


def test_stale_v1_entry_survives_migration_for_reporting(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("VALUE = 1\n")
    findings = lint_paths([source], tmp_path)
    entries = {"feedfeedfeedfeed": {
        "fingerprint": "feedfeedfeedfeed", "rule": "DET001",
        "path": "gone.py", "line": 3, "message": "old", "justification": "x",
    }}
    migrated = baseline_mod.migrate(findings, entries, 1)
    _, _, stale, _ = baseline_mod.apply(findings, migrated)
    assert len(stale) == 1


# -- --changed ----------------------------------------------------------------


def _git(repo, *argv):
    subprocess.run(
        ["git", "-C", str(repo), *argv],
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo), "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def test_changed_run_agrees_with_full_run(tmp_path):
    repo = tmp_path
    (repo / "stable.py").write_text(
        "def f(items):\n    return [x for x in set(items)]\n"
    )
    (repo / "touched.py").write_text("VALUE = 1\n")
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-qm", "seed")
    # introduce one violation in one file; the other keeps its old one
    (repo / "touched.py").write_text(
        "def g(items):\n    return [x for x in set(items)]\n"
    )

    changed = lint_cli.changed_files(repo, "HEAD")
    assert changed == {"touched.py"}

    full = lint_paths([repo], repo)
    narrowed = lint_paths([repo], repo, changed=changed)
    assert {f.path for f in narrowed} == {"touched.py"}
    # agreement: the narrowed run reports exactly the full run's
    # findings for the changed files, identical fingerprints included
    expected = [f for f in full if f.path in changed]
    assert [(f.fingerprint, f.line) for f in narrowed] == [
        (f.fingerprint, f.line) for f in expected
    ]
    # untracked files count as changed too
    (repo / "fresh.py").write_text(
        "def h(items):\n    return [x for x in set(items)]\n"
    )
    assert "fresh.py" in lint_cli.changed_files(repo, "HEAD")


def test_changed_with_update_baseline_is_a_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        lint_cli.main(
            [str(tmp_path), "--update-baseline", "--changed"]
        )
    capsys.readouterr()
    assert excinfo.value.code == 2


def test_json_summary_carries_rule_timings(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("VALUE = 1\n")
    code = lint_cli.main(
        [str(tmp_path), "--root", str(tmp_path), "--no-baseline",
         "--format", "json"]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    timings = document["summary"]["rule_timings_ms"]
    assert set(known_ids()) == set(timings)
    assert all(ms >= 0 for ms in timings.values())
