"""Tests for IPv4 address parsing/formatting."""

import pytest

from repro.net.ipv4 import (
    MAX_ADDRESS,
    AddressError,
    format_address,
    is_valid_address,
    parse_address,
)


class TestParseAddress:
    def test_basic(self):
        assert parse_address("1.2.3.4") == (1 << 24) | (2 << 16) | (3 << 8) | 4

    def test_zero(self):
        assert parse_address("0.0.0.0") == 0

    def test_max(self):
        assert parse_address("255.255.255.255") == MAX_ADDRESS

    def test_known_value(self):
        assert parse_address("10.0.0.1") == 167772161

    @pytest.mark.parametrize(
        "bad",
        [
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "1.2.3.999",
            "a.b.c.d",
            "1..2.3",
            "",
            "1.2.3.4 ",
            "-1.2.3.4",
            "01.2.3.4",  # leading zeros rejected (ambiguous octal)
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    def test_single_zero_octet_allowed(self):
        assert parse_address("10.0.0.0") == 10 << 24


class TestFormatAddress:
    def test_basic(self):
        assert format_address(167772161) == "10.0.0.1"

    def test_zero(self):
        assert format_address(0) == "0.0.0.0"

    def test_max(self):
        assert format_address(MAX_ADDRESS) == "255.255.255.255"

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            format_address(MAX_ADDRESS + 1)
        with pytest.raises(AddressError):
            format_address(-1)

    def test_roundtrip(self):
        for text in ("1.2.3.4", "198.71.46.180", "109.105.98.10"):
            assert format_address(parse_address(text)) == text


class TestIsValid:
    def test_valid(self):
        assert is_valid_address("192.0.2.1")

    def test_invalid(self):
        assert not is_valid_address("192.0.2")
        assert not is_valid_address("hello")
