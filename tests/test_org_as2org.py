"""Tests for sibling AS groups."""

from repro.org.as2org import AS2Org


class TestSiblings:
    def test_unknown_as_is_own_sibling(self):
        org = AS2Org()
        assert org.canonical(64500) == 64500
        assert org.are_siblings(64500, 64500)
        assert not org.are_siblings(64500, 64501)

    def test_pair(self):
        org = AS2Org()
        org.add_pair(3356, 3549, "Level 3")  # Level3 + Global Crossing
        assert org.are_siblings(3356, 3549)
        assert org.canonical(3356) == org.canonical(3549)

    def test_group(self):
        org = AS2Org()
        org.add_siblings([1, 2, 3], "org")
        assert org.are_siblings(1, 3)
        assert org.siblings_of(2) == {1, 2, 3}

    def test_transitive_merge(self):
        org = AS2Org()
        org.add_pair(1, 2)
        org.add_pair(3, 4)
        assert not org.are_siblings(1, 3)
        org.add_pair(2, 3)
        assert org.are_siblings(1, 4)
        assert len({org.canonical(asn) for asn in (1, 2, 3, 4)}) == 1

    def test_canonical_is_stable_minimum(self):
        org = AS2Org()
        org.add_siblings([30, 10, 20])
        assert org.canonical(30) == 10

    def test_org_name(self):
        org = AS2Org()
        org.add_siblings([5, 6], "acme")
        assert org.org_name(5) == "acme"
        assert org.org_name(6) == "acme"
        assert org.org_name(7) == ""

    def test_groups(self):
        org = AS2Org()
        org.add_siblings([1, 2])
        org.add_siblings([5, 6, 7])
        groups = sorted(sorted(group) for group in org.groups())
        assert groups == [[1, 2], [5, 6, 7]]

    def test_lines_roundtrip(self):
        org = AS2Org()
        org.add_siblings([1, 2], "alpha")
        org.add_siblings([5, 6, 7], "beta")
        parsed = AS2Org.from_lines(org.dump_lines())
        assert parsed.are_siblings(1, 2)
        assert parsed.are_siblings(5, 7)
        assert parsed.org_name(5) == "beta"

    def test_from_pairs(self):
        org = AS2Org.from_pairs([(1, 2), (2, 3)])
        assert org.are_siblings(1, 3)
