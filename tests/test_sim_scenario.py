"""Tests for scenario assembly and the presets."""

from repro.sim.presets import paper_config, small_config, small_scenario


class TestScenario:
    def test_components_present(self, scenario):
        assert scenario.traces
        assert scenario.monitors
        assert scenario.relationships.all_ases()
        assert scenario.ground_truth.border

    def test_monitor_count(self, scenario):
        assert len(scenario.monitors) == scenario.config.monitor_count

    def test_monitors_in_distinct_ases(self, scenario):
        ases = [monitor.asn for monitor in scenario.monitors]
        assert len(set(ases)) == len(ases)

    def test_re_monitor_placed_first(self, scenario):
        """The R&E network hosts a monitor (paper: one verification
        network had one)."""
        assert scenario.monitors[0].asn == scenario.re_asn

    def test_traces_cover_all_monitors(self, scenario):
        monitors = {trace.monitor for trace in scenario.traces}
        assert monitors == {monitor.name for monitor in scenario.monitors}

    def test_verification_asns(self, scenario):
        targets = scenario.verification_asns()
        assert len(targets) == 3
        assert targets[0] == scenario.re_asn
        assert set(targets[1:]) <= set(scenario.tier1_asns)

    def test_deterministic(self):
        first = small_scenario(seed=5)
        second = small_scenario(seed=5)
        assert len(first.traces) == len(second.traces)
        for a, b in zip(first.traces[:200], second.traces[:200]):
            assert [h.address for h in a.hops] == [h.address for h in b.hops]

    def test_seed_matters(self):
        first = small_scenario(seed=5)
        second = small_scenario(seed=6)
        assert [h.address for t in first.traces[:50] for h in t.hops] != [
            h.address for t in second.traces[:50] for h in t.hops
        ]

    def test_reseeded_propagates(self):
        config = small_config().reseeded(99)
        assert config.seed == 99
        assert config.as_graph.seed == 99
        assert config.network.seed == 99
        assert config.tracer.seed == 99

    def test_ip2as_high_coverage(self, scenario):
        addresses = set()
        for trace in scenario.traces[:500]:
            addresses.update(trace.addresses())
        assert scenario.ip2as.coverage(addresses) > 0.9


class TestPresets:
    def test_paper_config_is_larger(self):
        small, paper = small_config(), paper_config()
        assert paper.as_graph.stub_count > small.as_graph.stub_count
        assert paper.monitor_count > small.monitor_count
