"""Tests for the trace/hop data model and serialization."""

from repro.net.ipv4 import parse_address
from repro.traceroute.model import Hop, Trace
from repro.traceroute.parse import (
    parse_json_traces,
    parse_text_traces,
    traces_to_json_lines,
    traces_to_text_lines,
)


def addr(text: str) -> int:
    return parse_address(text)


def make_trace():
    return Trace(
        monitor="mon-1",
        dst=addr("203.0.114.9"),
        hops=(
            Hop(addr("9.0.0.1")),
            Hop(None),
            Hop(addr("9.0.0.5"), quoted_ttl=0),
            Hop(addr("203.0.114.9"), rtt_ms=12.5),
        ),
        flow_id=3,
    )


class TestModel:
    def test_len_and_iter(self):
        trace = make_trace()
        assert len(trace) == 4
        assert [hop.responded for hop in trace] == [True, False, True, True]

    def test_addresses_skips_gaps(self):
        assert len(list(make_trace().addresses())) == 3

    def test_replace_hops(self):
        trace = make_trace()
        new = trace.replace_hops(trace.hops[:1])
        assert len(new) == 1
        assert new.monitor == trace.monitor
        assert new.flow_id == trace.flow_id

    def test_str_contains_star(self):
        assert "*" in str(make_trace())


class TestTextFormat:
    def test_roundtrip(self):
        trace = Trace("m", addr("203.0.114.9"), make_trace().hops)
        (line,) = traces_to_text_lines([trace])
        (parsed,) = parse_text_traces([line])
        assert parsed.dst == trace.dst
        assert [hop.address for hop in parsed] == [hop.address for hop in trace]
        assert [hop.quoted_ttl for hop in parsed] == [hop.quoted_ttl for hop in trace]

    def test_quoted_ttl_marker(self):
        (line,) = traces_to_text_lines([make_trace()])
        assert "@0" in line

    def test_parse_skips_comments(self):
        assert list(parse_text_traces(["# comment", ""])) == []


class TestJsonFormat:
    def test_roundtrip(self):
        trace = make_trace()
        (line,) = traces_to_json_lines([trace])
        (parsed,) = parse_json_traces([line])
        assert parsed.dst == trace.dst
        assert [hop.address for hop in parsed] == [hop.address for hop in trace]

    def test_gap_reconstruction(self):
        """Unresponsive probes come back as * hops at the right TTLs."""
        trace = make_trace()
        (line,) = traces_to_json_lines([trace])
        (parsed,) = parse_json_traces([line])
        assert parsed.hops[1].address is None

    def test_rtt_preserved(self):
        (line,) = traces_to_json_lines([make_trace()])
        (parsed,) = parse_json_traces([line])
        assert parsed.hops[3].rtt_ms == 12.5
