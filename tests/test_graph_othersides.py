"""Tests for the /30-vs-/31 other-side heuristic (paper section 4.2)."""

from repro.net.ipv4 import parse_address
from repro.graph.othersides import infer_other_sides


def addr(text: str) -> int:
    return parse_address(text)


class TestHeuristic:
    def test_lone_middle_address_assumed_30(self):
        """A valid /30 host with no conflicting observation keeps /30."""
        a = addr("9.0.0.1")
        table = infer_other_sides([a])
        assert table.other_side[a] == addr("9.0.0.2")
        assert a not in table.from_31

    def test_reserved_address_must_be_31(self):
        """x.x.x.0 cannot be a /30 host, so it is /31-addressed."""
        a = addr("9.0.0.0")
        table = infer_other_sides([a])
        assert table.other_side[a] == addr("9.0.0.1")
        assert a in table.from_31

    def test_broadcast_address_must_be_31(self):
        a = addr("9.0.0.3")
        table = infer_other_sides([a])
        assert table.other_side[a] == addr("9.0.0.2")
        assert a in table.from_31

    def test_observed_reserved_sibling_forces_31(self):
        """Seeing the /30's network address proves .1 is /31-addressed."""
        a, proof = addr("9.0.0.1"), addr("9.0.0.0")
        table = infer_other_sides([a, proof])
        assert table.other_side[a] == addr("9.0.0.0")
        assert a in table.from_31

    def test_observed_broadcast_sibling_forces_31(self):
        a, proof = addr("9.0.0.2"), addr("9.0.0.3")
        table = infer_other_sides([a, proof])
        assert table.other_side[a] == addr("9.0.0.3")
        assert a in table.from_31

    def test_plain_30_pair(self):
        a, b = addr("9.0.0.1"), addr("9.0.0.2")
        table = infer_other_sides([a, b])
        assert table.other_side[a] == b
        assert table.other_side[b] == a

    def test_paper_example(self):
        """109.105.98.10 (a /30 middle host, .8/.11 unseen) pairs with .9."""
        a = addr("109.105.98.10")
        table = infer_other_sides([a])
        assert table.other_side[a] == addr("109.105.98.9")

    def test_fraction_31(self):
        table = infer_other_sides([addr("9.0.0.0"), addr("9.0.1.1")])
        assert abs(table.fraction_31() - 0.5) < 1e-9

    def test_empty(self):
        table = infer_other_sides([])
        assert table.fraction_31() == 0.0
        assert not table.other_side

    def test_scenario_fraction_is_near_paper(self, experiment):
        """The simulator is calibrated near the paper's 40.4% /31 rate."""
        fraction = experiment.graph.other_sides.fraction_31()
        assert 0.25 < fraction < 0.6
