"""Tests for MAP-IT result records."""

from repro.core.results import DIRECT, INDIRECT, LinkInference, MapItResult
from repro.net.ipv4 import parse_address


def addr(text: str) -> int:
    return parse_address(text)


def make(address="9.0.0.1", forward=True, local=1, remote=2, kind=DIRECT, **kwargs):
    return LinkInference(
        address=addr(address),
        forward=forward,
        local_as=local,
        remote_as=remote,
        kind=kind,
        **kwargs,
    )


class TestLinkInference:
    def test_pair_is_sorted(self):
        assert make(local=20, remote=10).pair() == (10, 20)

    def test_involves(self):
        inference = make(local=1, remote=2)
        assert inference.involves(1)
        assert inference.involves(2)
        assert not inference.involves(3)

    def test_half(self):
        assert make(forward=False).half == (addr("9.0.0.1"), False)

    def test_str_mentions_kind_and_ases(self):
        text = str(make(kind=INDIRECT, other_side=addr("9.0.0.2")))
        assert "indirect" in text
        assert "AS1" in text and "AS2" in text
        assert "9.0.0.2" in text

    def test_str_marks_uncertain(self):
        assert "(uncertain)" in str(make(uncertain=True))


class TestMapItResult:
    def result(self):
        return MapItResult(
            inferences=[
                make("9.0.0.1", local=1, remote=2),
                make("9.0.0.2", local=1, remote=2, kind=INDIRECT),
                make("9.0.0.5", local=1, remote=3),
            ],
            uncertain=[make("9.0.0.9", local=2, remote=3, uncertain=True)],
            iterations=3,
            converged=True,
        )

    def test_by_address(self):
        grouped = self.result().by_address()
        assert len(grouped) == 3
        assert len(grouped[addr("9.0.0.1")]) == 1

    def test_as_links(self):
        assert self.result().as_links() == {(1, 2), (1, 3)}

    def test_involving(self):
        assert len(self.result().involving(3)) == 1
        assert len(self.result().involving(1)) == 3

    def test_summary(self):
        summary = self.result().summary()
        assert summary["inferences"] == 3
        assert summary["uncertain"] == 1
        assert summary["as_links"] == 2
        assert summary["iterations"] == 3


class TestSerialization:
    def test_link_inference_dict_roundtrip(self):
        inference = make(
            "9.0.0.1", forward=False, local=10, remote=20,
            kind=INDIRECT, other_side=addr("9.0.0.2"), uncertain=True,
        )
        assert LinkInference.from_dict(inference.to_dict()) == inference

    def test_dict_roundtrip_without_other_side(self):
        inference = make("9.0.0.1")
        assert LinkInference.from_dict(inference.to_dict()) == inference

    def test_result_json_roundtrip(self):
        result = MapItResult(
            inferences=[make("9.0.0.1"), make("9.0.0.5", local=1, remote=3)],
            uncertain=[make("9.0.0.9", uncertain=True)],
            iterations=2,
            converged=True,
            diagnostics={"dual_resolved": 1},
        )
        back = MapItResult.from_json(result.to_json())
        assert back.inferences == result.inferences
        assert back.uncertain == result.uncertain
        assert back.converged
        assert back.iterations == 2
        assert back.diagnostics == result.diagnostics
