"""Tests for the IXP directory dataset."""

from repro.ixp.dataset import IXPDataset, IXPRecord
from repro.net.ipv4 import parse_address
from repro.net.prefix import Prefix


def addr(text: str) -> int:
    return parse_address(text)


class TestIXPRecord:
    def test_line_roundtrip(self):
        record = IXPRecord(Prefix.parse("80.81.192.0/21"), 6695, "DE-CIX Frankfurt")
        assert IXPRecord.from_line(record.to_line()) == record

    def test_line_roundtrip_no_asn(self):
        record = IXPRecord(Prefix.parse("80.81.192.0/21"), None, "mystery")
        assert IXPRecord.from_line(record.to_line()) == record


class TestIXPDataset:
    def _dataset(self):
        return IXPDataset(
            [
                IXPRecord(Prefix.parse("80.81.192.0/21"), 6695, "decix"),
                IXPRecord(Prefix.parse("195.66.224.0/22"), None, "linx"),
            ]
        )

    def test_covers(self):
        dataset = self._dataset()
        assert dataset.covers(addr("80.81.193.5"))
        assert dataset.covers(addr("195.66.225.1"))
        assert not dataset.covers(addr("8.8.8.8"))

    def test_asn_for(self):
        dataset = self._dataset()
        assert dataset.asn_for(addr("80.81.193.5")) == 6695
        assert dataset.asn_for(addr("195.66.225.1")) is None
        assert dataset.asn_for(addr("8.8.8.8")) is None

    def test_record_for(self):
        dataset = self._dataset()
        assert dataset.record_for(addr("80.81.193.5")).name == "decix"

    def test_lines_roundtrip(self):
        dataset = self._dataset()
        parsed = IXPDataset.from_lines(dataset.dump_lines())
        assert len(parsed) == 2
        assert parsed.covers(addr("80.81.193.5"))

    def test_merged_with_prefers_asn(self):
        """PeeringDB + PCH union: a record carrying the ASN wins."""
        pch = IXPDataset([IXPRecord(Prefix.parse("80.81.192.0/21"), None, "pch-view")])
        pdb = IXPDataset([IXPRecord(Prefix.parse("80.81.192.0/21"), 6695, "pdb-view")])
        merged = pch.merged_with(pdb)
        assert len(merged) == 1
        assert merged.asn_for(addr("80.81.192.1")) == 6695

    def test_merged_with_union(self):
        a = IXPDataset([IXPRecord(Prefix.parse("80.81.192.0/21"), 1, "a")])
        b = IXPDataset([IXPRecord(Prefix.parse("195.66.224.0/22"), 2, "b")])
        merged = a.merged_with(b)
        assert merged.covers(addr("80.81.192.1"))
        assert merged.covers(addr("195.66.224.1"))
