"""Unit and property tests for the flat-array data layer.

``repro.perf.flat`` re-implements the §4.1 sanitize and §4.3 neighbor
fold over columnar buffers; these tests hold the flat kernels to exact
equality with the object-based oracles (``sanitize_traces`` +
``accumulate_neighbors``) over seeded random datasets, and pin the
binary block codec's round-trip and rejection behaviour.
"""

import random

import pytest

from repro.graph.neighbors import accumulate_neighbors
from repro.perf.flat import (
    FlatEncodeError,
    FlatTraces,
    accumulate_flat,
    concat_flat_bytes,
    encode_addresses,
    encode_table,
    merge_address_blob,
    merge_graph_bundles,
    merge_table_blob,
    bundle_tables,
    pack_traces,
    resolve_origins,
    unpack_traces,
)
from repro.traceroute.model import Hop, Trace
from repro.traceroute.sanitize import sanitize_traces


def _sample_traces():
    return [
        Trace("mon-a", 0x0A000001, (Hop(0x0A000002, 1, 1.5), Hop(None), Hop(0x0A000003, 1, 20.25)), 7),
        Trace("mönïtor-β", 0xFFFFFFFF, (Hop(0xFFFFFFFF, 0, 0.0), Hop(0x01020304, 255, 3.125)), -3),
        Trace("m", 1, (), 0),
        Trace("mon-a", 0x0A000001, (Hop(0, 1, 0.0625),), 2**40),
    ]


def _random_traces(rng, n_traces=40, address_pool=24):
    """Seeded random dataset exercising gaps, buggy hops, and cycles."""
    addresses = [rng.randrange(1, 2**32) for _ in range(address_pool)]
    traces = []
    for _ in range(n_traces):
        hops = []
        for _ in range(rng.randrange(0, 9)):
            if rng.random() < 0.15:
                hops.append(Hop(None))
            else:
                hops.append(
                    Hop(
                        rng.choice(addresses),
                        0 if rng.random() < 0.1 else rng.randrange(1, 5),
                        round(rng.random() * 100, 3),
                    )
                )
        traces.append(
            Trace(
                f"monitor-{rng.randrange(4)}",
                rng.choice(addresses),
                tuple(hops),
                rng.randrange(-(2**20), 2**20),
            )
        )
    return traces


class TestBlockCodec:
    def test_pack_unpack_round_trip(self):
        traces = _sample_traces()
        flat = pack_traces(traces)
        assert len(flat) == len(traces)
        assert flat.hop_count == sum(len(t.hops) for t in traces)
        assert unpack_traces(flat) == traces

    def test_unpack_slicing(self):
        traces = _sample_traces()
        flat = pack_traces(traces)
        assert unpack_traces(flat, 1, 3) == traces[1:3]
        assert unpack_traces(flat, 4, 4) == []

    def test_to_bytes_round_trip(self):
        traces = _sample_traces()
        blob = pack_traces(traces).to_bytes()
        assert unpack_traces(FlatTraces.from_bytes(blob)) == traces

    def test_empty_round_trip(self):
        blob = pack_traces([]).to_bytes()
        flat = FlatTraces.from_bytes(blob)
        assert len(flat) == 0 and flat.hop_count == 0
        assert unpack_traces(flat) == []

    def test_from_bytes_rejects_malformed(self):
        blob = pack_traces(_sample_traces()).to_bytes()
        with pytest.raises(ValueError):
            FlatTraces.from_bytes(b"XXXX" + blob[4:])  # bad magic
        with pytest.raises(ValueError):
            FlatTraces.from_bytes(blob[:7])  # shorter than the header
        with pytest.raises(ValueError):
            FlatTraces.from_bytes(blob[:-1])  # truncated column
        with pytest.raises(ValueError):
            FlatTraces.from_bytes(blob + b"\x00")  # trailing bytes
        doctored = bytearray(blob)
        doctored[4] = 9  # endianness tag out of range
        with pytest.raises(ValueError):
            FlatTraces.from_bytes(bytes(doctored))

    def test_concat_equals_whole_pack(self):
        rng = random.Random(20260809)
        traces = _random_traces(rng)
        blocks = [
            pack_traces(traces[start:start + 7]).to_bytes()
            for start in range(0, len(traces), 7)
        ]
        merged = FlatTraces.from_bytes(concat_flat_bytes(blocks))
        assert unpack_traces(merged) == traces
        assert concat_flat_bytes(blocks) == pack_traces(traces).to_bytes()

    def test_concat_empty(self):
        assert concat_flat_bytes([]) == pack_traces([]).to_bytes()

    def test_out_of_range_fields_raise(self):
        with pytest.raises(FlatEncodeError):
            pack_traces([Trace("m", 2**32, (), 0)])
        with pytest.raises(FlatEncodeError):
            pack_traces([Trace("m", 1, (Hop(2**32, 1, 0.0),), 0)])
        with pytest.raises(FlatEncodeError):
            pack_traces([Trace("m", 1, (Hop(1, 2**63, 0.0),), 0)])
        with pytest.raises(FlatEncodeError):
            pack_traces([Trace("m", 1, (), 2**63)])


class TestFlatKernelOracle:
    """accumulate_flat == sanitize_traces + accumulate_neighbors."""

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_object_oracle(self, seed):
        rng = random.Random(1_000_003 * (seed + 1))
        traces = _random_traces(rng)
        special = {a for a in {t.dst for t in traces} if a % 5 == 0}
        special.update(
            hop.address
            for trace in traces
            for hop in trace.hops
            if hop.address is not None and hop.address % 5 == 0
        )
        is_special = special.__contains__

        report = sanitize_traces(traces)
        oracle_forward, oracle_backward = {}, {}
        oracle_seen = set()
        accumulate_neighbors(
            report.traces, oracle_forward, oracle_backward, oracle_seen, is_special
        )

        flat = pack_traces(traces)
        forward, backward = {}, {}
        seen, universe = set(), set()
        counts = accumulate_flat(
            flat, 0, len(flat), forward, backward, seen, universe, is_special
        )

        assert counts == (
            len(report.traces),
            report.discarded,
            report.buggy_hops_removed,
        )
        assert forward == oracle_forward
        assert backward == oracle_backward
        assert seen == oracle_seen
        assert universe == report.all_addresses

    @pytest.mark.parametrize("seed", range(4))
    def test_sharded_bundles_merge_to_serial(self, seed):
        """Per-shard bundles merged == one whole-range accumulation."""
        rng = random.Random(7_654_321 + seed)
        traces = _random_traces(rng, n_traces=60)
        is_special = (lambda a: a % 7 == 0)
        flat = pack_traces(traces)

        whole_forward, whole_backward = {}, {}
        whole_seen, whole_universe = set(), set()
        whole_counts = accumulate_flat(
            flat, 0, len(flat), whole_forward, whole_backward,
            whole_seen, whole_universe, is_special,
        )

        bundles = []
        for start in range(0, len(flat), 13):
            forward, backward = {}, {}
            seen, universe = set(), set()
            counts = accumulate_flat(
                flat, start, min(start + 13, len(flat)),
                forward, backward, seen, universe, is_special,
            )
            bundles.append(bundle_tables(forward, backward, seen, universe, counts))

        forward, backward, seen, universe, counts = merge_graph_bundles(bundles)
        assert counts == whole_counts
        assert forward == whole_forward
        assert backward == whole_backward
        assert seen == whole_seen
        assert universe == whole_universe
        assert list(forward) == sorted(forward)
        assert list(backward) == sorted(backward)

    @pytest.mark.parametrize("seed", range(6))
    def test_dirty_reports_exactly_the_grown_halves(self, seed):
        """The ``dirty`` out-param names precisely the (address, forward)
        halves whose neighbor set gained a member — the serve layer's
        dirty-region invalidation depends on this being exact."""
        rng = random.Random(31_337 + seed)
        traces = _random_traces(rng, n_traces=80)
        is_special = (lambda a: a % 7 == 0)
        flat = pack_traces(traces)

        forward, backward = {}, {}
        seen, universe = set(), set()
        split = len(flat) // 2
        accumulate_flat(
            flat, 0, split, forward, backward, seen, universe, is_special
        )
        before_forward = {a: set(m) for a, m in forward.items()}
        before_backward = {a: set(m) for a, m in backward.items()}

        dirty = set()
        accumulate_flat(
            flat, split, len(flat), forward, backward, seen, universe,
            is_special, dirty=dirty,
        )

        expected = set()
        for address, members in forward.items():
            if members != before_forward.get(address, set()):
                expected.add((address, True))
        for address, members in backward.items():
            if members != before_backward.get(address, set()):
                expected.add((address, False))
        assert dirty == expected

    def test_dirty_empty_on_refold(self):
        """Re-folding the same block grows nothing: dirty stays empty."""
        traces = _sample_traces()
        flat = pack_traces(traces)
        forward, backward = {}, {}
        seen, universe = set(), set()
        accumulate_flat(
            flat, 0, len(flat), forward, backward, seen, universe, lambda a: False
        )
        dirty = set()
        accumulate_flat(
            flat, 0, len(flat), forward, backward, seen, universe,
            lambda a: False, dirty=dirty,
        )
        assert dirty == set()


class TestBundleCodec:
    def test_table_blob_round_trip(self):
        table = {5: {1, 9, 3}, 2: {2}, 0xFFFFFFFF: {0}}
        merged = {}
        merge_table_blob(encode_table(table), merged)
        assert merged == table

    def test_table_blob_union(self):
        merged = {}
        merge_table_blob(encode_table({1: {2}, 3: {4}}), merged)
        merge_table_blob(encode_table({1: {5}, 6: {7}}), merged)
        assert merged == {1: {2, 5}, 3: {4}, 6: {7}}

    def test_address_blob_round_trip(self):
        addresses = {0, 1, 0xFFFFFFFF, 42}
        merged = set()
        merge_address_blob(encode_addresses(addresses), merged)
        assert merged == addresses

    def test_encode_table_is_content_deterministic(self):
        a = {2: {9, 1}, 1: {3}}
        b = {1: {3}, 2: {1, 9}}
        assert encode_table(a) == encode_table(b)


class _CountingMapper:
    def __init__(self):
        self.calls = []

    def asn(self, address):
        self.calls.append(address)
        return address % 13 or None


class TestResolveOrigins:
    def test_matches_per_address_lookups(self):
        mapper = _CountingMapper()
        addresses = [9, 3, 9, 26, 3, 7]
        resolved = resolve_origins(mapper, addresses)
        assert resolved == {a: (a % 13 or None) for a in set(addresses)}
        assert mapper.calls == sorted(set(addresses))
