"""Tests for the longest-prefix-match trie."""


from repro.net.ipv4 import parse_address
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


def addr(text: str) -> int:
    return parse_address(text)


class TestInsertLookup:
    def test_empty(self):
        trie = PrefixTrie()
        assert trie.lookup(addr("1.2.3.4")) is None
        assert len(trie) == 0

    def test_single_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        prefix, value = trie.lookup(addr("10.20.30.40"))
        assert value == "ten"
        assert prefix == Prefix.parse("10.0.0.0/8")
        assert trie.lookup(addr("11.0.0.0")) is None

    def test_longest_match_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.5.0.0/16"), "long")
        assert trie.lookup_value(addr("10.5.1.1")) == "long"
        assert trie.lookup_value(addr("10.6.1.1")) == "short"

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        trie.insert(Prefix.parse("192.0.2.0/24"), "specific")
        assert trie.lookup_value(addr("8.8.8.8")) == "default"
        assert trie.lookup_value(addr("192.0.2.9")) == "specific"

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("1.2.3.4/32"), "host")
        assert trie.lookup_value(addr("1.2.3.4")) == "host"
        assert trie.lookup_value(addr("1.2.3.5")) is None

    def test_replace_value(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie.insert(Prefix.parse("10.0.0.0/8"), 2)
        assert trie.lookup_value(addr("10.0.0.1")) == 2
        assert len(trie) == 1

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert addr("10.1.1.1") in trie
        assert addr("11.1.1.1") not in trie

    def test_matched_prefix_is_canonical(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("198.71.44.0/22"), 11537)
        prefix, _ = trie.lookup(addr("198.71.46.180"))
        assert prefix == Prefix.parse("198.71.44.0/22")


class TestExactAndRemove:
    def test_exact(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "v")
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "v"
        assert trie.exact(Prefix.parse("10.0.0.0/16")) is None

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "v")
        assert trie.remove(Prefix.parse("10.0.0.0/8"))
        assert trie.lookup(addr("10.0.0.1")) is None
        assert len(trie) == 0

    def test_remove_missing(self):
        trie = PrefixTrie()
        assert not trie.remove(Prefix.parse("10.0.0.0/8"))

    def test_remove_keeps_more_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "outer")
        trie.insert(Prefix.parse("10.5.0.0/16"), "inner")
        trie.remove(Prefix.parse("10.0.0.0/8"))
        assert trie.lookup_value(addr("10.5.0.1")) == "inner"
        assert trie.lookup(addr("10.6.0.1")) is None


class TestItems:
    def test_items_roundtrip(self):
        trie = PrefixTrie()
        inserted = {
            Prefix.parse("10.0.0.0/8"): 1,
            Prefix.parse("10.5.0.0/16"): 2,
            Prefix.parse("192.0.2.0/24"): 3,
            Prefix.parse("0.0.0.0/0"): 4,
        }
        for prefix, value in inserted.items():
            trie.insert(prefix, value)
        assert dict(trie.items()) == inserted

    def test_matches_naive_lpm(self):
        """Spot-check trie answers against a brute-force LPM."""
        import random

        rng = random.Random(0)
        prefixes = []
        trie = PrefixTrie()
        for index in range(200):
            length = rng.randint(8, 30)
            base = rng.getrandbits(32)
            prefix = Prefix(base & Prefix(0, length).mask, length)
            prefixes.append(prefix)
            trie.insert(prefix, index)
        table = {}
        for index, prefix in enumerate(prefixes):
            table[prefix] = index  # replacement semantics, as in the trie
        for _ in range(500):
            address = rng.getrandbits(32)
            best = None
            for prefix, index in table.items():
                if prefix.contains(address):
                    if best is None or prefix.length > best[0].length:
                        best = (prefix, index)
            got = trie.lookup(address)
            if best is None:
                assert got is None
            else:
                assert got == best
