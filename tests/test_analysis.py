"""Tests for the analysis extensions (explain / AS graph / report)."""

import pytest

from repro import MapItConfig
from repro.analysis.asgraph import ASLinkGraph, compare_with_relationships
from repro.analysis.explain import explain_interface
from repro.analysis.report import run_report
from repro.core.results import DIRECT, INDIRECT, LinkInference
from repro.net.ipv4 import format_address, parse_address


def addr(text: str) -> int:
    return parse_address(text)


@pytest.fixture(scope="module")
def run(experiment):
    mapit = experiment.new_mapit(MapItConfig(f=0.5))
    result = mapit.run()
    return mapit, result


class TestExplain:
    def test_inferred_interface(self, run):
        mapit, result = run
        inference = next(i for i in result.inferences if i.kind == DIRECT)
        explanation = explain_interface(mapit, inference.address)
        text = explanation.render()
        assert format_address(inference.address) in text
        assert "inference:" in text
        assert f"AS{inference.remote_as}" in text

    def test_neighbors_listed(self, run):
        mapit, result = run
        inference = next(i for i in result.inferences if i.kind == DIRECT)
        explanation = explain_interface(mapit, inference.address)
        view = explanation.forward if inference.forward else explanation.backward
        assert view.total >= 2
        assert view.plurality_as is not None

    def test_uninferred_interface(self, run):
        mapit, result = run
        inferred = {i.address for i in result.inferences}
        graph = mapit.engine.graph
        address = next(a for a in sorted(graph.addresses()) if a not in inferred)
        explanation = explain_interface(mapit, address)
        assert explanation.forward.inference is None
        assert explanation.backward.inference is None
        assert "inference:" not in explanation.render()

    def test_mapping_updates_visible(self, run):
        """At least one explanation shows an AS mapping update."""
        mapit, result = run
        found = False
        for inference in result.inferences[:50]:
            text = explain_interface(mapit, inference.address).render()
            if "->" in text:
                found = True
                break
        assert found


def make_inferences():
    return [
        LinkInference(addr("9.0.0.1"), True, 1, 2, DIRECT),
        LinkInference(addr("9.0.0.2"), False, 1, 2, INDIRECT),
        LinkInference(addr("9.1.0.1"), True, 2, 3, DIRECT),
        LinkInference(addr("9.2.0.1"), True, 1, 3, DIRECT),
    ]


class TestASLinkGraph:
    def test_links_and_support(self):
        graph = ASLinkGraph.from_inferences(make_inferences())
        assert len(graph) == 3
        link = graph.link(1, 2)
        assert link.support == 2
        assert link.kinds == {DIRECT, INDIRECT}

    def test_adjacency(self):
        graph = ASLinkGraph.from_inferences(make_inferences())
        assert graph.neighbors(1) == {2, 3}
        assert graph.degree(2) == 2
        assert graph.ases() == {1, 2, 3}
        assert (2, 1) in graph

    def test_top_by_degree(self):
        graph = ASLinkGraph.from_inferences(make_inferences())
        top = graph.top_by_degree(2)
        assert top[0][1] == 2

    def test_relationship_annotation(self):
        from repro.rel.relationships import LinkType, RelationshipDataset

        rel = RelationshipDataset()
        rel.add_p2c(1, 2)
        rel.add_p2p(2, 3)
        graph = ASLinkGraph.from_inferences(make_inferences(), rel)
        assert graph.link(2, 3).link_type == LinkType.PEER

    def test_from_scenario_result(self, run, experiment):
        _, result = run
        graph = ASLinkGraph.from_result(
            result, experiment.scenario.relationships, experiment.scenario.as2org
        )
        assert len(graph) == len(result.as_links())
        assert all(link.link_type is not None for link in graph.links())


class TestComparison:
    def test_inferred_links_mostly_in_bgp(self, run, experiment):
        """In the simulator, every true link is a BGP adjacency, so
        correct inferences must be confirmed by the relationship data."""
        _, result = run
        graph = ASLinkGraph.from_result(result)
        comparison = compare_with_relationships(
            graph, experiment.scenario.relationships
        )
        assert comparison.bgp_coverage > 0.85
        assert comparison.only_bgp  # not every adjacency was traversed

    def test_summary(self, run, experiment):
        _, result = run
        graph = ASLinkGraph.from_result(result)
        summary = compare_with_relationships(
            graph, experiment.scenario.relationships
        ).summary()
        assert set(summary) == {"in_both", "only_traceroute", "only_bgp", "bgp_coverage"}


class TestReport:
    def test_report_contents(self, run, experiment):
        _, result = run
        text = run_report(
            result, experiment.scenario.relationships, experiment.scenario.as2org
        )
        assert "MAP-IT run report" in text
        assert "AS-level links" in text
        assert "by relationship:" in text
        assert "contradiction handling:" in text

    def test_report_without_relationships(self, run):
        _, result = run
        text = run_report(result)
        assert "by relationship:" not in text
        assert "top 5 ASes" in text


class TestDotExport:
    def test_dot_structure(self):
        from repro.rel.relationships import RelationshipDataset

        rel = RelationshipDataset()
        rel.add_p2c(1, 2)
        rel.add_p2p(2, 3)
        graph = ASLinkGraph.from_inferences(make_inferences(), rel)
        dot = graph.to_dot(names={1: "tier1"})
        assert dot.startswith("graph aslinks {")
        assert dot.rstrip().endswith("}")
        assert '1 [label="tier1"];' in dot
        assert "1 -- 2" in dot
        assert "style=dashed" in dot  # the 2--3 peering
        assert "style=solid" in dot   # the 1--2 transit

    def test_dot_unclassified(self):
        graph = ASLinkGraph.from_inferences(make_inferences())
        assert "style=dotted" in graph.to_dot()
