"""Tests for trace sanitization (paper section 4.1)."""

from repro.net.ipv4 import parse_address
from repro.traceroute.model import Hop, Trace
from repro.traceroute.sanitize import (
    find_cycle,
    sanitize_traces,
    strip_buggy_hops,
)


def addr(text: str) -> int:
    return parse_address(text)


def trace_of(*hops, monitor="m", dst="9.9.9.9"):
    return Trace(monitor, addr(dst), tuple(hops))


A, B, C, D = (addr(f"9.0.0.{i}") for i in (1, 2, 3, 4))


class TestStripBuggyHops:
    def test_quoted_ttl_zero_becomes_gap(self):
        trace = trace_of(Hop(A), Hop(B, quoted_ttl=0), Hop(C))
        cleaned = strip_buggy_hops(trace)
        assert cleaned.hops[1].address is None
        assert cleaned.hops[0].address == A
        assert cleaned.hops[2].address == C

    def test_clean_trace_untouched(self):
        trace = trace_of(Hop(A), Hop(B))
        assert strip_buggy_hops(trace) is trace

    def test_gap_prevents_false_adjacency(self):
        """The addresses around a removed buggy hop must not become
        neighbors — that is the whole point of replacing, not deleting."""
        from repro.graph.neighbors import build_interface_graph

        trace = trace_of(Hop(A), Hop(B, quoted_ttl=0), Hop(C))
        graph = build_interface_graph([strip_buggy_hops(trace)])
        assert C not in graph.n_forward(A)


class TestFindCycle:
    def test_no_cycle(self):
        assert find_cycle(trace_of(Hop(A), Hop(B), Hop(C))) is None

    def test_cycle_detected(self):
        assert find_cycle(trace_of(Hop(A), Hop(B), Hop(A))) == A

    def test_adjacent_repeat_is_not_cycle(self):
        """Viger et al.: repetition must be separated by another hop."""
        assert find_cycle(trace_of(Hop(A), Hop(A), Hop(B))) is None

    def test_gap_counts_as_separation(self):
        assert find_cycle(trace_of(Hop(A), Hop(None), Hop(A))) == A

    def test_longer_cycle(self):
        assert find_cycle(trace_of(Hop(A), Hop(B), Hop(C), Hop(B))) == B


class TestSanitizeTraces:
    def test_discards_cycles(self):
        good = trace_of(Hop(A), Hop(B))
        bad = trace_of(Hop(C), Hop(D), Hop(C))
        report = sanitize_traces([good, bad])
        assert report.discarded == 1
        assert len(report.traces) == 1
        assert report.total == 2
        assert abs(report.discard_fraction - 0.5) < 1e-9

    def test_discarded_addresses_still_collected(self):
        """Section 4.2 uses addresses from discarded traces too."""
        bad = trace_of(Hop(C), Hop(D), Hop(C))
        report = sanitize_traces([bad])
        assert report.all_addresses == {C, D}
        assert report.retained_addresses == set()
        assert report.address_retention == 0.0

    def test_buggy_hop_count(self):
        trace = trace_of(Hop(A), Hop(B, quoted_ttl=0), Hop(C))
        report = sanitize_traces([trace])
        assert report.buggy_hops_removed == 1
        assert len(report.traces) == 1

    def test_buggy_then_cycle(self):
        """A cycle formed only via the buggy hop's removal is fine; but a
        real cycle after cleaning is still discarded."""
        trace = trace_of(Hop(A), Hop(B, quoted_ttl=0), Hop(C), Hop(A))
        report = sanitize_traces([trace])
        assert report.discarded == 1

    def test_empty_dataset(self):
        report = sanitize_traces([])
        assert report.total == 0
        assert report.discard_fraction == 0.0
        assert report.address_retention == 0.0


class TestScenarioSanitization:
    def test_scenario_discard_rate_is_small_but_nonzero(self, scenario):
        report = sanitize_traces(scenario.traces)
        assert 0.0 <= report.discard_fraction < 0.15
        assert report.address_retention > 0.8
