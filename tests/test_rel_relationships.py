"""Tests for the AS relationship dataset."""

import pytest

from repro.org.as2org import AS2Org
from repro.rel.relationships import LinkType, P2C, P2P, RelationshipDataset


def sample() -> RelationshipDataset:
    dataset = RelationshipDataset()
    dataset.add_p2c(100, 200)   # 100 transits 200
    dataset.add_p2c(100, 300)
    dataset.add_p2c(200, 400)   # 200 transits stub 400
    dataset.add_p2p(200, 300)
    return dataset


class TestQueries:
    def test_providers_customers(self):
        dataset = sample()
        assert dataset.providers(200) == {100}
        assert dataset.customers(100) == {200, 300}
        assert dataset.peers(200) == {300}

    def test_relationship_direction(self):
        dataset = sample()
        assert dataset.relationship(100, 200) == P2C
        assert dataset.relationship(200, 100) is None
        assert dataset.relationship(200, 300) == P2P

    def test_is_transit_pair(self):
        dataset = sample()
        assert dataset.is_transit_pair(100, 200)
        assert dataset.is_transit_pair(200, 100)
        assert not dataset.is_transit_pair(200, 300)

    def test_provider_of(self):
        dataset = sample()
        assert dataset.provider_of(100, 200) == 100
        assert dataset.provider_of(200, 100) == 100
        assert dataset.provider_of(200, 300) is None

    def test_knows(self):
        dataset = sample()
        assert dataset.knows(400)
        assert not dataset.knows(999)


class TestStubs:
    def test_isp_has_customer(self):
        dataset = sample()
        assert dataset.is_isp(100)
        assert dataset.is_isp(200)
        assert dataset.is_stub(400)
        assert dataset.is_stub(300) is False or dataset.is_isp(300) is False

    def test_unknown_as_is_stub(self):
        assert sample().is_stub(999)

    def test_sibling_customers_do_not_make_isp(self):
        """The paper's ISP definition needs a *non-sibling* customer."""
        dataset = RelationshipDataset()
        dataset.add_p2c(10, 11)
        org = AS2Org.from_pairs([(10, 11)])
        assert dataset.is_isp(10)              # without sibling info
        assert not dataset.is_isp(10, org)     # with sibling info
        assert dataset.is_stub(10, org)


class TestClassifyLink:
    def test_isp_transit(self):
        assert sample().classify_link(100, 200) == LinkType.ISP_TRANSIT

    def test_stub_transit(self):
        assert sample().classify_link(200, 400) == LinkType.STUB_TRANSIT

    def test_peer(self):
        assert sample().classify_link(200, 300) == LinkType.PEER

    def test_unknown_as_means_stub_transit(self):
        """Section 5.4: ASes missing from the dataset count as stubs."""
        assert sample().classify_link(100, 999) == LinkType.STUB_TRANSIT

    def test_no_relation_known_ases_is_peer(self):
        dataset = sample()
        assert dataset.classify_link(100, 400) == LinkType.PEER


class TestSerialization:
    def test_roundtrip(self):
        dataset = sample()
        parsed = RelationshipDataset.from_lines(dataset.dump_lines())
        assert parsed.customers(100) == {200, 300}
        assert parsed.peers(300) == {200}
        assert len(parsed) == len(dataset)

    def test_bad_code(self):
        with pytest.raises(ValueError):
            RelationshipDataset.from_lines(["1|2|7"])

    def test_comments_ignored(self):
        parsed = RelationshipDataset.from_lines(["# header", "1|2|-1"])
        assert parsed.customers(1) == {2}
