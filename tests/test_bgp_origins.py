"""Tests for multi-collector origin merging and MOAS handling."""

from repro.bgp.origins import OriginTable, merge_collectors
from repro.bgp.table import CollectorDump
from repro.net.prefix import Prefix

P8 = Prefix.parse("10.0.0.0/8")
P24 = Prefix.parse("192.0.2.0/24")


def make_dump(name, routes):
    dump = CollectorDump(name=name)
    for prefix, path in routes:
        dump.add_route(prefix, path)
    return dump


class TestOriginTable:
    def test_single_origin(self):
        table = OriginTable()
        table.record(P8, 100)
        assert table.origins(P8) == {100}
        assert table.best_origin(P8) == 100

    def test_moas_majority_wins(self):
        table = OriginTable()
        table.record(P8, 100)
        table.record(P8, 200)
        table.record(P8, 200)
        assert table.best_origin(P8) == 200
        assert table.moas_prefixes() == {P8: {100, 200}}

    def test_moas_tie_breaks_to_lowest(self):
        table = OriginTable()
        table.record(P8, 200)
        table.record(P8, 100)
        assert table.best_origin(P8) == 100

    def test_best_origins_map(self):
        table = OriginTable()
        table.record(P8, 1)
        table.record(P24, 2)
        assert table.best_origins() == {P8: 1, P24: 2}

    def test_unknown_prefix_raises(self):
        import pytest

        with pytest.raises(KeyError):
            OriginTable().best_origin(P8)

    def test_contains_and_len(self):
        table = OriginTable()
        table.record(P8, 1)
        assert P8 in table
        assert P24 not in table
        assert len(table) == 1


class TestMergeCollectors:
    def test_merges_views(self):
        dumps = [
            make_dump("a", [(P8, [1, 2, 100])]),
            make_dump("b", [(P24, [3, 200])]),
        ]
        table = merge_collectors(dumps)
        assert table.best_origin(P8) == 100
        assert table.best_origin(P24) == 200

    def test_one_vote_per_collector(self):
        """Many paths to the same prefix at one collector count once."""
        dumps = [
            make_dump("a", [(P8, [1, 100]), (P8, [2, 5, 100]), (P8, [9, 100])]),
            make_dump("b", [(P8, [1, 200])]),
            make_dump("c", [(P8, [1, 200])]),
        ]
        table = merge_collectors(dumps)
        # 200 seen by two collectors, 100 by one (despite three paths).
        assert table.best_origin(P8) == 200

    def test_moas_across_collectors(self):
        dumps = [
            make_dump("a", [(P8, [1, 100])]),
            make_dump("b", [(P8, [2, 200])]),
        ]
        table = merge_collectors(dumps)
        assert table.origins(P8) == {100, 200}
