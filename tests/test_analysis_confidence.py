"""Tests for evidence-based confidence scoring."""

import pytest

from repro import MapItConfig
from repro.analysis.confidence import Confidence, rank_inferences


class TestConfidenceModel:
    def test_score_bounds(self):
        assert Confidence(support=0, dominance=0.0, corroborated=False).score == 0.0
        assert Confidence(support=100, dominance=1.0, corroborated=True).score == 1.0

    def test_support_saturates(self):
        low = Confidence(support=8, dominance=1.0, corroborated=True)
        high = Confidence(support=1000, dominance=1.0, corroborated=True)
        assert low.score == high.score

    def test_corroboration_discount(self):
        yes = Confidence(support=4, dominance=1.0, corroborated=True)
        no = Confidence(support=4, dominance=1.0, corroborated=False)
        assert no.score < yes.score

    def test_dominance_scales(self):
        strong = Confidence(support=4, dominance=1.0, corroborated=True)
        weak = Confidence(support=4, dominance=0.5, corroborated=True)
        assert weak.score == pytest.approx(strong.score / 2)


class TestOnScenario:
    @pytest.fixture(scope="class")
    def ranked(self, experiment):
        mapit = experiment.new_mapit(MapItConfig(f=0.5))
        result = mapit.run()
        return experiment, mapit, rank_inferences(mapit, result.inferences)

    def test_sorted_descending(self, ranked):
        _, _, scored = ranked
        scores = [confidence.score for _, confidence in scored]
        assert scores == sorted(scores, reverse=True)

    def test_stub_inferences_rank_low(self, ranked):
        """Single-neighbor stub inferences must sit below the median
        well-supported core inference."""
        _, _, scored = ranked
        stub_scores = [c.score for i, c in scored if i.kind == "stub"]
        direct_scores = [c.score for i, c in scored if i.kind == "direct"]
        if stub_scores and direct_scores:
            median_direct = sorted(direct_scores)[len(direct_scores) // 2]
            assert max(stub_scores) <= median_direct + 1e-9

    def test_correct_rank_above_incorrect_on_average(self, ranked):
        experiment, _, scored = ranked
        truth = experiment.scenario.ground_truth
        correct, incorrect = [], []
        for inference, confidence in scored:
            pair = truth.connected_pair(inference.address)
            if pair is None and not truth.is_internal(inference.address):
                continue
            (correct if pair == inference.pair() else incorrect).append(
                confidence.score
            )
        if incorrect:
            assert sum(correct) / len(correct) > sum(incorrect) / len(incorrect)

    def test_indirect_inherits_source_evidence(self, ranked):
        _, mapit, scored = ranked
        by_half = {(i.address, i.forward): c for i, c in scored}
        for inference, confidence in scored:
            if inference.kind != "indirect" or inference.other_side is None:
                continue
            source = by_half.get((inference.other_side, not inference.forward))
            if source is not None:
                assert confidence.support == source.support
                break
