"""Tests for router-level topology synthesis."""


from repro.net.special import default_special_registry
from repro.sim.asgraph import ASGraphConfig, generate_as_graph
from repro.sim.network import (
    EXTERNAL,
    INTERNAL,
    IXP_LAN,
    NetworkConfig,
    build_network,
)


def make_network(seed=1, **net_kwargs):
    graph = generate_as_graph(
        ASGraphConfig(
            tier1_count=2,
            tier2_count=4,
            regional_count=4,
            stub_count=8,
            re_customer_count=3,
            ixp_count=1,
            seed=seed,
        )
    )
    return graph, build_network(graph, NetworkConfig(seed=seed, **net_kwargs))


class TestBackbones:
    def test_router_counts_match_nodes(self):
        graph, network = make_network()
        for asn, node in graph.nodes.items():
            assert len(network.routers_by_as[asn]) == node.router_count

    def test_backbone_is_connected(self):
        """Every AS backbone must be internally connected (ring base)."""
        graph, network = make_network()
        for asn, routers in network.routers_by_as.items():
            if len(routers) == 1:
                continue
            seen = {routers[0]}
            frontier = [routers[0]]
            while frontier:
                current = frontier.pop()
                for _, neighbor in network.internal_adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            assert seen == set(routers), f"AS{asn} backbone disconnected"

    def test_internal_links_numbered_from_own_space(self):
        graph, network = make_network()
        for link in network.links.values():
            if link.kind != INTERNAL:
                continue
            router_ases = {network.router_as(r) for r, _ in link.endpoints}
            assert router_ases == {link.owner_as}


class TestExternalLinks:
    def test_every_as_edge_realized(self):
        graph, network = make_network()
        for edge in graph.edges:
            assert network.external_link_ids(edge.a, edge.b)

    def test_endpoints_are_the_right_ases(self):
        graph, network = make_network()
        for link in network.links.values():
            if link.kind != EXTERNAL:
                continue
            router_ases = {network.router_as(r) for r, _ in link.endpoints}
            assert len(link.endpoints) == 2
            assert link.owner_as in router_ases

    def test_addresses_unique_and_public(self):
        graph, network = make_network()
        registry = default_special_registry()
        addresses = [address for address, _, _ in network.interfaces()]
        assert len(addresses) == len(set(addresses))
        assert not any(registry.is_special(address) for address in addresses)

    def test_link_addresses_inside_subnet(self):
        graph, network = make_network()
        for link in network.links.values():
            for _, address in link.endpoints:
                if link.kind in (EXTERNAL, INTERNAL):
                    assert link.subnet.contains(address)

    def test_customer_space_violations_occur(self):
        """With violation probability 1, every transit link is numbered
        from the customer's space."""
        graph, network = make_network(customer_space_violation=1.0)
        for edge in graph.edges:
            if edge.kind != "transit":
                continue
            for link_id in network.external_link_ids(edge.a, edge.b):
                assert network.links[link_id].owner_as == edge.b

    def test_convention_by_default(self):
        """With violation probability 0 (and no R&E bias), transit
        links are numbered from the provider."""
        graph = generate_as_graph(
            ASGraphConfig(
                tier1_count=2, tier2_count=4, regional_count=4, stub_count=8,
                include_re_network=False, seed=3,
            )
        )
        network = build_network(graph, NetworkConfig(customer_space_violation=0.0, seed=3))
        for edge in graph.edges:
            if edge.kind != "transit":
                continue
            for link_id in network.external_link_ids(edge.a, edge.b):
                assert network.links[link_id].owner_as == edge.a


class TestIXP:
    def test_lan_built_with_member_interfaces(self):
        graph, network = make_network()
        for ixp in graph.ixps:
            if not ixp.sessions:
                continue
            link = network.links[network.ixp_links[ixp.name]]
            assert link.kind == IXP_LAN
            participants = {asn for session in ixp.sessions for asn in session}
            attached = {network.router_as(r) for r, _ in link.endpoints}
            assert attached == participants

    def test_border_routers_via_ixp(self):
        graph, network = make_network()
        for ixp in graph.ixps:
            for a, b in ixp.sessions:
                assert network.border_routers(a, b)
                assert network.border_routers(b, a)


class TestArtifactsAssignment:
    def test_fractions_zero_means_none(self):
        graph, network = make_network(
            per_packet_lb_fraction=0.0,
            egress_reply_fraction=0.0,
            silent_router_fraction=0.0,
            buggy_ttl_fraction=0.0,
        )
        silent_border_ases = {
            node.asn for node in graph.nodes.values() if node.silent_borders
        }
        for router in network.routers.values():
            assert not router.per_packet_lb
            assert not router.replies_with_egress
            assert not router.buggy_ttl
            if router.asn not in silent_border_ases:
                assert not router.silent

    def test_deterministic(self):
        _, first = make_network(seed=5)
        _, second = make_network(seed=5)
        assert [r.per_packet_lb for r in first.routers.values()] == [
            r.per_packet_lb for r in second.routers.values()
        ]
        assert sorted(first.address_owner) == sorted(second.address_owner)
