"""The chaos harness: fault schedules, regression bundles, CLI.

Each schedule injects one failure mode into a real CLI run and asserts
the output is byte-identical to the fault-free golden run — the same
gate ``mapit chaos`` applies in CI.  The checked-in bundle under
``tests/fixtures/chaos/`` pins the golden sha256, so a behaviour change
that alters the tiny-preset output fails here before it lands.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.perf.pool import fork_available
from repro.robust.chaos import (
    CHAOS_SCHEDULES,
    ChaosOutcome,
    ScheduleResult,
    replay_bundle,
    run_chaos,
    write_bundle,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "chaos" / "tiny-seed0.json"

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="chaos schedules fork worker pools"
)


class TestOutcomeModel:
    def test_schedule_result_lines(self):
        assert ScheduleResult("kill", True).line() == "schedule kill: ok"
        failed = ScheduleResult("hang", False, "sha mismatch").line()
        assert "FAIL" in failed and "sha mismatch" in failed

    def test_outcome_ok_and_bundle_roundtrip(self, tmp_path):
        outcome = ChaosOutcome(
            preset="tiny",
            seed=0,
            jobs=4,
            golden_sha256="ab" * 32,
            results=[ScheduleResult("kill", True)],
        )
        assert outcome.ok
        path = tmp_path / "bundle.json"
        write_bundle(path, outcome)
        document = path.read_text()
        assert '"tiny"' in document and '"kill"' in document

    def test_outcome_not_ok_with_failure(self):
        outcome = ChaosOutcome(
            preset="tiny",
            seed=0,
            jobs=4,
            golden_sha256="ab" * 32,
            results=[
                ScheduleResult("kill", True),
                ScheduleResult("hang", False, "exit 1"),
            ],
        )
        assert not outcome.ok
        assert any("DIVERGENCE" in line for line in outcome.lines())


@needs_fork
class TestSchedules:
    def test_kill_schedule_is_byte_identical(self, tmp_path):
        outcome = run_chaos(
            preset="tiny", seed=0, schedules=["kill"], jobs=2,
            workdir=tmp_path / "chaos",
        )
        assert outcome.ok, outcome.lines()
        assert [r.name for r in outcome.results] == ["kill"]

    def test_enospc_schedule_is_byte_identical(self, tmp_path):
        outcome = run_chaos(
            preset="tiny", seed=0, schedules=["enospc"], jobs=2,
            workdir=tmp_path / "chaos",
        )
        assert outcome.ok, outcome.lines()

    def test_unknown_schedule_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown chaos schedule"):
            run_chaos(
                preset="tiny", seed=0, schedules=["not-a-schedule"],
                workdir=tmp_path / "chaos",
            )


@needs_fork
class TestRegressionBundle:
    def test_checked_in_bundle_replays_clean(self, tmp_path):
        """The pinned golden sha256 still holds for every recorded schedule."""
        assert FIXTURE.exists()
        outcome = replay_bundle(FIXTURE, jobs=2, workdir=tmp_path / "replay")
        assert outcome.ok, outcome.lines()
        names = [r.name for r in outcome.results]
        assert names[-1] == "golden-pin"
        assert set(names[:-1]) <= set(CHAOS_SCHEDULES)


@needs_fork
class TestChaosCli:
    def test_cli_single_schedule(self, tmp_path, capsys):
        code = main(
            [
                "chaos", "--preset", "tiny", "--seed", "0",
                "--schedule", "kill", "--jobs", "2",
                "--workdir", str(tmp_path / "chaos"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "schedule kill: ok" in out
        assert "all schedules byte-identical" in out

    def test_cli_record_writes_bundle(self, tmp_path, capsys):
        bundle_path = tmp_path / "bundle.json"
        code = main(
            [
                "chaos", "--preset", "tiny", "--seed", "0",
                "--schedule", "enospc", "--jobs", "2",
                "--workdir", str(tmp_path / "chaos"),
                "--record", str(bundle_path),
            ]
        )
        assert code == 0, capsys.readouterr().out
        assert bundle_path.exists()

    def test_cli_replay_missing_bundle_is_usage_error(self, tmp_path, capsys):
        code = main(["chaos", "--replay", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err
