"""Tests for the traceroute engine and its artifact injection."""

import random


from repro.sim.asgraph import ASGraphConfig, Tier, generate_as_graph
from repro.sim.network import EXTERNAL, NetworkConfig, build_network
from repro.sim.routing import ASRoutes, IGP
from repro.sim.tracer import TracerConfig, TracerouteEngine
from repro.traceroute.sanitize import find_cycle


def make_engine(seed=1, net_kwargs=None, tracer_kwargs=None, graph_kwargs=None):
    graph_defaults = dict(
        tier1_count=2, tier2_count=4, regional_count=4, stub_count=10,
        re_customer_count=3, ixp_count=1, seed=seed,
    )
    graph_defaults.update(graph_kwargs or {})
    graph = generate_as_graph(ASGraphConfig(**graph_defaults))
    network = build_network(graph, NetworkConfig(seed=seed, **(net_kwargs or {})))
    engine = TracerouteEngine(
        network,
        ASRoutes(graph),
        IGP(network),
        TracerConfig(seed=seed, **(tracer_kwargs or {})),
    )
    return graph, network, engine


def quiet_engine(seed=1, **tracer_kwargs):
    """An engine with every artifact disabled."""
    return make_engine(
        seed=seed,
        net_kwargs=dict(
            per_packet_lb_fraction=0.0,
            egress_reply_fraction=0.0,
            silent_router_fraction=0.0,
            buggy_ttl_fraction=0.0,
        ),
        tracer_kwargs=dict(
            transient_change_probability=0.0,
            destination_reply_probability=1.0,
            **tracer_kwargs,
        ),
        graph_kwargs=dict(nat_stub_fraction=0.0, silent_border_fraction=0.0),
    )


class TestCleanTraces:
    def test_trace_reaches_destination(self):
        graph, network, engine = quiet_engine()
        rng = random.Random(0)
        monitor = engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        target_as = graph.by_tier(Tier.STUB)[-1].asn
        target = network.plan.announced[target_as][0].address + 99
        trace = engine.trace("m", target, flow_id=0)
        assert trace.hops[-1].address == target
        assert all(hop.responded for hop in trace.hops)

    def test_hops_follow_actual_links(self):
        """Consecutive responsive hops must be genuinely adjacent
        (the addresses' routers share a link) in a clean world."""
        graph, network, engine = quiet_engine()
        rng = random.Random(0)
        monitor = engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        target_as = graph.by_tier(Tier.TIER1)[0].asn
        target = network.plan.announced[target_as][0].address + 50
        trace = engine.trace("m", target, flow_id=1)
        owners = network.address_owner
        for before, after in zip(trace.hops, trace.hops[1:]):
            if before.address is None or after.address is None:
                continue
            if after.address not in owners:
                continue  # destination host reply
            before_router = owners.get(before.address)
            after_router = owners[after.address][0]
            if before_router is None:
                continue
            shared = set(network.routers[before_router[0]].links) & set(
                network.routers[after_router].links
            )
            assert shared, f"hops {before} -> {after} not adjacent"

    def test_ingress_semantics(self):
        """Each reported address belongs to the router that received
        the probe, on the link it arrived over."""
        graph, network, engine = quiet_engine()
        rng = random.Random(0)
        monitor = engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        target_as = graph.by_tier(Tier.TIER2)[0].asn
        target = network.plan.announced[target_as][0].address + 11
        trace = engine.trace("m", target, flow_id=2)
        for hop in trace.hops[:-1]:
            assert hop.address in network.address_owner

    def test_deterministic(self):
        graph, network, engine = quiet_engine()
        rng = random.Random(0)
        monitor = engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        target_as = graph.by_tier(Tier.TIER1)[0].asn
        target = network.plan.announced[target_as][0].address + 50
        first = engine.trace("m", target, flow_id=7)
        second = engine.trace("m", target, flow_id=7)
        assert [h.address for h in first.hops] == [h.address for h in second.hops]

    def test_flow_id_stable_paths(self):
        """Per-flow load balancing: same flow id, same path."""
        graph, network, engine = quiet_engine()
        rng = random.Random(0)
        engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        target_as = graph.by_tier(Tier.TIER1)[0].asn
        target = network.plan.announced[target_as][0].address + 50
        paths = {
            tuple(h.address for h in engine.trace("m", target, flow_id=i).hops)
            for i in range(3)
            for _ in range(2)
        }
        # each flow id maps to exactly one path
        assert len(paths) <= 3


class TestArtifacts:
    def test_silent_routers_produce_gaps(self):
        graph, network, engine = make_engine(
            net_kwargs=dict(silent_router_fraction=0.5)
        )
        rng = random.Random(0)
        engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        gaps = 0
        for stub in graph.by_tier(Tier.TIER1):
            target = network.plan.announced[stub.asn][0].address + 9
            trace = engine.trace("m", target, flow_id=0)
            gaps += sum(1 for hop in trace.hops if hop.address is None)
        assert gaps > 0

    def test_buggy_ttl_quotes_zero(self):
        graph, network, engine = make_engine(
            net_kwargs=dict(buggy_ttl_fraction=0.7)
        )
        rng = random.Random(0)
        engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        quoted = []
        for node in graph.by_tier(Tier.TIER1) + graph.by_tier(Tier.TIER2):
            target = network.plan.announced[node.asn][0].address + 9
            trace = engine.trace("m", target, flow_id=0)
            quoted.extend(h.quoted_ttl for h in trace.hops if h.responded)
        assert 0 in quoted

    def test_transient_changes_cause_cycles_somewhere(self):
        """Route flaps onto unequal-length fallback paths must yield
        the interface cycles section 4.1 discards.  Needs a topology
        rich enough for length-diverse alternates."""
        graph, network, engine = make_engine(
            tracer_kwargs=dict(transient_change_probability=1.0),
            graph_kwargs=dict(
                tier1_count=3, tier2_count=8, regional_count=10, stub_count=25
            ),
        )
        rng = random.Random(0)
        stubs = [node for node in graph.by_tier(Tier.STUB) if not node.natted]
        for index in range(3):
            engine.add_monitor(f"m{index}", stubs[index * 3].asn, rng)
        cycles = 0
        for node in graph.nodes.values():
            for index in range(3):
                for offset in range(3):
                    target = network.plan.announced[node.asn][0].address + 40 + offset
                    trace = engine.trace(f"m{index}", target, flow_id=offset)
                    if find_cycle(trace) is not None:
                        cycles += 1
        assert cycles > 0

    def test_nat_stub_exposes_single_address(self):
        graph, network, engine = make_engine(
            graph_kwargs=dict(nat_stub_fraction=1.0),
            tracer_kwargs=dict(destination_reply_probability=1.0),
        )
        rng = random.Random(0)
        monitor_as = graph.by_tier(Tier.TIER1)[0].asn
        engine.add_monitor("m", monitor_as, rng)
        stub = next(node for node in graph.by_tier(Tier.STUB) if node.natted)
        nat = engine._nat_address[stub.asn]
        seen = set()
        for offset in range(6):
            target = network.plan.announced[stub.asn][0].address + 1000 + offset
            trace = engine.trace("m", target, flow_id=offset)
            for hop in trace.hops:
                if hop.address is not None and engine.owner_as(hop.address) == stub.asn:
                    seen.add(hop.address)
        # Only the NAT pool address and possibly the border's external
        # ingress (often numbered from the provider) are visible.
        assert seen <= {nat} | set(network.address_owner)
        assert nat in seen
        internal = {
            address
            for address in seen
            if address != nat and network.links[
                network.address_owner[address][1]
            ].kind not in (EXTERNAL,)
        }
        assert not internal

    def test_third_party_addresses_appear(self):
        graph, network, engine = make_engine(
            net_kwargs=dict(egress_reply_fraction=1.0)
        )
        rng = random.Random(0)
        engine.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        off_ingress = 0
        for node in graph.by_tier(Tier.TIER2):
            target = network.plan.announced[node.asn][0].address + 21
            trace = engine.trace("m", target, flow_id=0)
            for hop in trace.hops:
                if hop.address is None or hop.address not in network.address_owner:
                    continue
        # With every router replying via its reverse-path egress, at
        # least some traces must differ from the clean equivalent.
        _, _, clean = quiet_engine()
        engine2 = clean
        rng = random.Random(0)
        engine2.add_monitor("m", graph.by_tier(Tier.STUB)[0].asn, rng)
        diffs = 0
        for node in graph.by_tier(Tier.TIER2):
            target = network.plan.announced[node.asn][0].address + 21
            noisy = [h.address for h in engine.trace("m", target, 0).hops]
            quiet = [h.address for h in engine2.trace("m", target, 0).hops]
            if noisy != quiet:
                diffs += 1
        assert diffs > 0
