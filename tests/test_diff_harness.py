"""The differential harness end to end: sweeps, metamorphic checks,
fault-driven divergence detection, shrinking, regression-bundle
round-trips, and the remove-rule reading divergence fixture.

The harness exists to catch *future* bugs, so these tests seed a known
fault (:func:`repro.robust.faults.engine_fault`) and check the whole
chain fires: the sweep detects the divergence, the report names the
half and both tallies, the shrinker minimizes the world, and the
written bundle replays the divergence while staying clean against the
unfaulted engine.
"""

import json
from pathlib import Path

import pytest

from repro import MapItConfig, run_mapit
from repro.bgp.ip2as import IP2AS
from repro.core.engine import Engine
from repro.diff.cli import main as diff_main
from repro.diff.harness import (
    DEFAULT_RULES,
    compare_world,
    oracle_config_for,
    world_diverges,
)
from repro.diff.metamorphic import CHECKS, check_world
from repro.diff.shrink import regression_name, shrink_world, write_regression
from repro.diff.worlds import (
    PRESETS,
    duplicate_traces,
    permute_traces,
    renumber_ases,
    world_from_bundle,
    world_from_preset,
)
from repro.graph.neighbors import build_interface_graph
from repro.org.as2org import AS2Org
from repro.oracle import oracle_run
from repro.rel.relationships import RelationshipDataset
from repro.robust.faults import engine_fault
from repro.traceroute.parse import parse_text_traces
from repro.traceroute.sanitize import sanitize_traces

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_BUNDLE = REPO_ROOT / "tests" / "fixtures" / "regressions" / (
    "small-seed4-shrunk-majority"
)

#: the seeded fault every detection test uses: always pick the
#: highest-numbered sibling member instead of the most frequent one
FAULT = dict(kind="member_high", rate=1.0, seed=1)
#: a world where that fault is known to change the answer
FAULTY_SEED = 4


class TestSweep:
    @pytest.mark.parametrize("rule", DEFAULT_RULES)
    def test_small_worlds_agree(self, rule):
        for seed in (0, 1):
            outcome = compare_world(world_from_preset("small", seed), rule)
            assert outcome.ok, outcome.report
            assert outcome.core_inferences == outcome.oracle_inferences > 0

    def test_presets_cover_all_factories(self):
        assert set(PRESETS) == {"tiny", "small", "paper", "dense"}

    def test_oracle_config_mapping_is_total(self):
        config = MapItConfig(f=0.7, min_neighbors=3, remove_rule="add_rule")
        mapped = oracle_config_for(config)
        assert mapped.f == 0.7
        assert mapped.min_neighbors == 3
        assert mapped.remove_rule == "add_rule"


class TestMetamorphic:
    def test_invariants_hold_on_clean_world(self):
        outcome = check_world(world_from_preset("small", 0), seed=0)
        assert outcome.ok, [f.summary() for f in outcome.failures]
        assert outcome.checks == len(CHECKS) == 3

    def test_transforms_change_what_they_claim(self):
        import random

        world = world_from_preset("small", 0)
        permuted = permute_traces(world, random.Random(0))
        assert sorted(map(str, permuted.traces)) == sorted(map(str, world.traces))
        duplicated = duplicate_traces(world, random.Random(0))
        assert len(duplicated.traces) > len(world.traces)
        renumbered, mapping = renumber_ases(world, random.Random(0))
        assert set(mapping) >= set(world.address_as.values())
        # order-preserving: the relabeling never flips an ASN comparison
        ordered = sorted(asn for asn in mapping if asn > 0)
        relabeled = [mapping[asn] for asn in ordered]
        assert relabeled == sorted(relabeled)
        assert len(set(relabeled)) == len(relabeled)


class TestFaultDetection:
    def test_seeded_fault_diverges_and_reports(self):
        world = world_from_preset("small", FAULTY_SEED)
        with engine_fault(**FAULT):
            outcome = compare_world(world, "majority")
        assert not outcome.ok
        assert "first divergence" in outcome.report
        assert "core final tally" in outcome.report
        assert "oracle final tally" in outcome.report
        assert "oracle journal" in outcome.report

    def test_fault_restores_engine(self):
        original = Engine.plurality
        with engine_fault(**FAULT):
            assert Engine.plurality is not original
        assert Engine.plurality is original
        assert compare_world(world_from_preset("small", FAULTY_SEED), "majority").ok

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            with engine_fault(kind="nope"):
                pass


class TestShrinker:
    def test_minimizes_faulty_world(self):
        world = world_from_preset("small", FAULTY_SEED)

        def predicate(candidate):
            with engine_fault(**FAULT):
                return world_diverges(candidate, "majority")

        assert predicate(world)
        shrunk, report = shrink_world(world, predicate)
        assert predicate(shrunk), "the minimized world must still diverge"
        assert report.final_traces < report.original_traces
        assert report.final_traces <= 5
        assert report.tests_run > 0
        assert any(stage.startswith("traces:") for stage in report.stages)

    def test_write_regression_round_trips(self, tmp_path):
        world = world_from_preset("small", 0)
        path = write_regression(world, "majority", tmp_path, {"note": "fixture"})
        assert path.name == regression_name(world, "majority")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["diff"]["remove_rule"] == "majority"
        assert manifest["diff"]["note"] == "fixture"
        replayed = world_from_bundle(path)
        assert compare_world(replayed, "majority").ok
        # shrink metadata survives, so a replayed world can keep shrinking
        assert replayed.router_addresses == world.router_addresses
        assert replayed.address_as == world.address_as


class TestRegressionFixture:
    """The checked-in bundle produced by shrinking the seeded fault."""

    def test_bundle_exists_and_is_minimal(self):
        assert FIXTURE_BUNDLE.is_dir()
        world = world_from_bundle(FIXTURE_BUNDLE)
        assert len(world.traces) <= 5

    def test_replays_clean_against_fixed_engine(self):
        world = world_from_bundle(FIXTURE_BUNDLE)
        outcome = compare_world(world, "majority")
        assert outcome.ok, outcome.report

    def test_replays_divergence_with_fault_armed(self):
        world = world_from_bundle(FIXTURE_BUNDLE)
        with engine_fault(**FAULT):
            assert not compare_world(world, "majority").ok


class TestRemoveRuleReadings:
    """Section 4.5's two defensible readings genuinely differ: a
    strict-plurality winner at exactly half the neighbor set survives
    the add-rule re-check but fails the majority test."""

    PAIRS = [
        ("9.0.0.0/16", 100),
        ("9.1.0.0/16", 200),
        ("9.2.0.0/16", 300),
        ("9.3.0.0/16", 400),
    ]
    # N_F(9.0.0.1) = {AS200 x2, AS300, AS400}: plurality AS200 with
    # count 2 of 4 — passes f=0.5 and the strict-winner test, but
    # 2*2 > 4 is false.
    LINES = [
        "m1|9.9.9.1|9.0.0.1 9.1.0.1",
        "m2|9.9.9.2|9.0.0.1 9.1.0.5",
        "m3|9.9.9.3|9.0.0.1 9.2.0.1",
        "m4|9.9.9.4|9.0.0.1 9.3.0.1",
    ]

    def run_rule(self, rule):
        return run_mapit(
            list(parse_text_traces(self.LINES)),
            IP2AS.from_pairs(self.PAIRS),
            config=MapItConfig(f=0.5, remove_rule=rule),
        )

    def half_inferences(self, result):
        from repro.net.ipv4 import parse_address

        target = parse_address("9.0.0.1")
        return [
            i for i in result.inferences if i.address == target and i.forward
        ]

    def test_rules_diverge_on_fixture(self):
        majority = self.half_inferences(self.run_rule("majority"))
        add_rule = self.half_inferences(self.run_rule("add_rule"))
        assert majority == []  # demoted/removed: 2*2 > 4 fails
        assert len(add_rule) == 1 and add_rule[0].remote_as == 200

    @pytest.mark.parametrize("rule", DEFAULT_RULES)
    def test_each_reading_matches_oracle(self, rule):
        core = self.run_rule(rule)
        traces = list(parse_text_traces(self.LINES))
        graph = build_interface_graph(sanitize_traces(traces).traces)
        oracle = oracle_run(
            graph,
            IP2AS.from_pairs(self.PAIRS),
            AS2Org(),
            RelationshipDataset(),
            oracle_config_for(MapItConfig(f=0.5, remove_rule=rule)),
        )
        core_map = {
            (i.address, i.forward): (i.local_as, i.remote_as, i.kind, i.uncertain)
            for i in core.inferences + core.uncertain
        }
        oracle_map = {
            r.half: (r.local_as, r.remote_as, r.kind, r.uncertain)
            for r in oracle.confident + oracle.uncertain
        }
        assert core_map == oracle_map


class TestCLI:
    def test_sweep_json_summary(self, capsys):
        code = diff_main(["--worlds", "2", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["worlds"] == 2
        assert summary["comparisons"] == 4  # both rules by default
        assert summary["divergences"] == 0
        assert summary["metamorphic_failures"] == 0

    def test_single_rule_flag(self, capsys):
        code = diff_main(["--worlds", "1", "--rules", "majority", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["comparisons"] == 1

    def test_replay_fixture_bundle(self, capsys):
        code = diff_main(
            ["--worlds", "0", "--no-metamorphic", "--replay", str(FIXTURE_BUNDLE)]
        )
        capsys.readouterr()
        assert code == 0

    def test_observability_outputs(self, tmp_path, capsys):
        trace_path = tmp_path / "diff.jsonl"
        metrics_path = tmp_path / "diff-metrics.json"
        code = diff_main(
            [
                "--worlds", "1", "--no-metamorphic",
                "--trace", str(trace_path), "--metrics", str(metrics_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        events = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert any(event["event"] == "diff.sweep.end" for event in events)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["diff.worlds"] == 2  # one world, two rules
        assert metrics["counters"]["diff.divergences"] == 0

    def test_mapit_diff_subcommand_forwards(self, capsys):
        from repro.cli import main as mapit_main

        code = mapit_main(["diff", "--worlds", "1", "--no-metamorphic", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["worlds"] == 1
