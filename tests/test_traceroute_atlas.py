"""Tests for RIPE Atlas result ingestion."""

import json

from repro.net.ipv4 import parse_address
from repro.traceroute.atlas import parse_atlas, parse_atlas_measurement


def addr(text: str) -> int:
    return parse_address(text)


def measurement(**overrides):
    record = {
        "af": 4,
        "prb_id": 6012,
        "dst_addr": "9.9.9.9",
        "result": [
            {"hop": 1, "result": [{"from": "9.0.0.1", "rtt": 1.2, "ittl": 1}]},
            {"hop": 2, "result": [{"x": "*"}, {"from": "9.0.0.5", "rtt": 8.0}]},
            {"hop": 3, "result": [{"x": "*"}, {"x": "*"}, {"x": "*"}]},
            {"hop": 4, "result": [{"from": "9.9.9.9", "rtt": 20.1}]},
        ],
    }
    record.update(overrides)
    return record


class TestParseMeasurement:
    def test_basic(self):
        trace = parse_atlas_measurement(measurement())
        assert trace is not None
        assert trace.monitor == "prb-6012"
        assert trace.dst == addr("9.9.9.9")
        assert [hop.address for hop in trace.hops] == [
            addr("9.0.0.1"),
            addr("9.0.0.5"),
            None,
            addr("9.9.9.9"),
        ]

    def test_first_responding_probe_wins(self):
        trace = parse_atlas_measurement(measurement())
        assert trace.hops[1].address == addr("9.0.0.5")
        assert trace.hops[1].rtt_ms == 8.0

    def test_missing_ttls_become_gaps(self):
        record = measurement(
            result=[
                {"hop": 1, "result": [{"from": "9.0.0.1"}]},
                {"hop": 4, "result": [{"from": "9.0.0.9"}]},
            ]
        )
        trace = parse_atlas_measurement(record)
        assert [hop.address for hop in trace.hops] == [
            addr("9.0.0.1"),
            None,
            None,
            addr("9.0.0.9"),
        ]

    def test_ipv6_skipped(self):
        assert parse_atlas_measurement(measurement(af=6)) is None

    def test_ipv6_hop_addresses_skipped(self):
        record = measurement(
            result=[{"hop": 1, "result": [{"from": "2001:db8::1"}, {"from": "9.0.0.1"}]}]
        )
        trace = parse_atlas_measurement(record)
        assert trace.hops[0].address == addr("9.0.0.1")

    def test_no_result_skipped(self):
        assert parse_atlas_measurement({"af": 4, "dst_addr": "9.9.9.9"}) is None

    def test_quoted_ttl_passthrough(self):
        record = measurement(
            result=[{"hop": 1, "result": [{"from": "9.0.0.1", "ittl": 0}]}]
        )
        trace = parse_atlas_measurement(record)
        assert trace.hops[0].quoted_ttl == 0


class TestParseAtlas:
    def test_json_array(self):
        text = json.dumps([measurement(), measurement(af=6)])
        traces = list(parse_atlas(text))
        assert len(traces) == 1

    def test_json_lines(self):
        lines = [json.dumps(measurement()), json.dumps(measurement(prb_id=7))]
        traces = list(parse_atlas(lines))
        assert len(traces) == 2
        assert traces[1].monitor == "prb-7"

    def test_feeds_the_pipeline(self):
        """Atlas traces flow straight into MAP-IT."""
        from repro import MapItConfig, run_mapit
        from repro.bgp.ip2as import IP2AS

        records = []
        for suffix in range(1, 4):
            records.append(
                json.dumps(
                    measurement(
                        dst_addr="9.1.9.9",
                        result=[
                            {"hop": 1, "result": [{"from": "9.0.0.1"}]},
                            {"hop": 2, "result": [{"from": f"9.1.0.{suffix}"}]},
                        ],
                    )
                )
            )
        traces = list(parse_atlas(records))
        ip2as = IP2AS.from_pairs([("9.0.0.0/16", 100), ("9.1.0.0/16", 200)])
        result = run_mapit(traces, ip2as, config=MapItConfig(f=0.5))
        assert any(i.address == addr("9.0.0.1") for i in result.inferences)
