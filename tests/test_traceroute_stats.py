"""Tests for dataset statistics."""

from repro.net.ipv4 import parse_address
from repro.traceroute.model import Hop, Trace
from repro.traceroute.stats import dataset_stats


def addr(text: str) -> int:
    return parse_address(text)


A, B, C = addr("9.0.0.1"), addr("9.0.0.2"), addr("9.0.0.3")


class TestDatasetStats:
    def test_counts(self):
        traces = [
            Trace("m", addr("9.9.9.9"), (Hop(A), Hop(B))),
            Trace("m", addr("9.9.9.8"), (Hop(C),)),
        ]
        stats = dataset_stats(traces)
        assert stats.traces == 2
        assert stats.distinct_addresses == 3
        # C never appears adjacent to another address.
        assert stats.adjacent_addresses == 2
        assert abs(stats.mean_hops - 1.5) < 1e-9

    def test_gap_breaks_adjacency(self):
        traces = [Trace("m", addr("9.9.9.9"), (Hop(A), Hop(None), Hop(B)))]
        stats = dataset_stats(traces)
        assert stats.adjacent_addresses == 0

    def test_empty(self):
        stats = dataset_stats([])
        assert stats.traces == 0
        assert stats.mean_hops == 0.0

    def test_rows(self):
        stats = dataset_stats([Trace("m", addr("9.9.9.9"), (Hop(A), Hop(B)))])
        rows = stats.as_rows()
        assert rows["traces"] == 1
        assert rows["distinct_addresses"] == 2
