"""Serve-vs-batch equivalence: golden bundles, trace by trace.

The serve contract (docs/SERVE.md): a quiesced incremental state is
**byte-identical** — same §4.6 fingerprint, same result JSON — to a
batch ``mapit run`` over exactly the traces folded so far, regardless
of arrival order, checkpoint/restart boundaries, or transport.
"""

from __future__ import annotations

import os
import random
import socket
import tempfile
import threading

import pytest

from repro.cli import main as cli_main
from repro.core.config import MapItConfig
from repro.diff.worlds import World, world_from_preset
from repro.obs.observer import NULL_OBS
from repro.robust.journal import RunJournal
from repro.serve.daemon import ServeDaemon
from repro.serve.incremental import IncrementalIndex
from repro.serve.sources import SocketSource
from repro.serve.verify import batch_state, check_world
from repro.traceroute.parse import traces_to_text_lines


@pytest.fixture(scope="module")
def world() -> World:
    return world_from_preset("tiny", 0)


def _fresh_index(world: World, obs=NULL_OBS) -> IncrementalIndex:
    return IncrementalIndex(
        world.ip2as(),
        org=world.as2org,
        rel=world.relationships,
        config=MapItConfig(),
        obs=obs,
    )


def _serve_state(index: IncrementalIndex):
    result = index.quiesce()
    return index.fingerprint(), result.to_json(indent=2)


def test_trace_by_trace_byte_identity(world):
    """Every prefix of the stream quiesces to the batch state."""
    divergence, checked = check_world(world, check_every=1)
    assert divergence is None, divergence.summary()
    assert checked == len(world.traces)


def test_permuted_arrival_order(world):
    """Folding is order-independent: a shuffled stream quiesces to the
    same bytes as the canonical order (and as batch)."""
    batch_fp, batch_json = batch_state(world, len(world.traces), MapItConfig())
    shuffled = list(world.traces)
    random.Random(7).shuffle(shuffled)
    index = _fresh_index(world)
    for trace in shuffled:
        index.fold([trace])
    fp, payload = _serve_state(index)
    assert fp == batch_fp
    assert payload == batch_json


def test_chunked_folds_match_single_fold(world):
    """Chunk boundaries are invisible: many small folds == one big one."""
    whole = _fresh_index(world)
    whole.fold(list(world.traces))
    chunked = _fresh_index(world)
    for start in range(0, len(world.traces), 13):
        chunked.fold(list(world.traces[start : start + 13]))
        chunked.quiesce()  # interleaved quiesces must not perturb state
    assert _serve_state(whole) == _serve_state(chunked)


def test_checkpoint_restart_midstream(world, tmp_path):
    """Kill after a mid-stream checkpoint, restore into a fresh daemon,
    fold the rest: byte-identical to batch over everything."""
    lines = list(traces_to_text_lines(world.traces))
    half = len(lines) // 2
    journal = RunJournal(tmp_path / "journal", "serve-test")
    first = ServeDaemon(
        _fresh_index(world), format="text", journal=journal, quiesce_every=11
    )
    offset = 0
    for line in lines[:half]:
        offset += len(line) + 1
        first.ingest_entry(line, "stream", offset)
    first.quiesce()
    assert first.checkpoint()
    # the first daemon is now abandoned mid-stream (simulated kill)
    second = ServeDaemon(
        _fresh_index(world),
        format="text",
        journal=RunJournal(tmp_path / "journal", "serve-test"),
        quiesce_every=11,
    )
    assert second.resume()
    assert second.offsets["stream"] == offset
    assert second.stats["folds"] == first.stats["folds"]
    for line in lines[half:]:
        offset += len(line) + 1
        second.ingest_entry(line, "stream", offset)
    snapshot = second.finalize()
    batch_fp, batch_json = batch_state(world, len(world.traces), MapItConfig())
    assert snapshot.fingerprint == batch_fp
    assert snapshot.result.to_json(indent=2) == batch_json


def test_socket_ingest_reaches_batch_state(world):
    """Records arriving over the unix socket fold to the batch state."""
    lines = list(traces_to_text_lines(world.traces))
    daemon = ServeDaemon(_fresh_index(world), format="text", quiesce_every=10)
    # consume from the queue on a pump thread while the socket feeds it
    stop = threading.Event()
    pump = threading.Thread(target=daemon.run_loop, args=(stop, 0.01), daemon=True)
    pump.start()
    with tempfile.TemporaryDirectory() as sockdir:
        path = os.path.join(sockdir, "mapit.sock")
        source = SocketSource(path, daemon)
        source.start()
        try:
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.connect(path)
            client.sendall(("\n".join(lines) + "\n").encode())
            client.close()
            deadline = threading.Event()
            for _ in range(2000):  # bounded wait, no wall clock needed
                if daemon.stats["folds"] >= len(world.traces):
                    break
                deadline.wait(0.01)
            assert daemon.stats["folds"] == len(world.traces)
        finally:
            stop.set()
            pump.join(timeout=5)
            source.close()
    batch_fp, batch_json = batch_state(world, len(world.traces), MapItConfig())
    assert daemon.snapshot.fingerprint == batch_fp
    assert daemon.snapshot.result.to_json(indent=2) == batch_json


def test_cli_serve_once_matches_run(tmp_bundle, tmp_path, capsys):
    """``mapit serve --once --json`` writes exactly what ``mapit run
    --json`` writes — same writer, same bytes."""
    dataset = tmp_bundle(seed=3)
    batch_out = tmp_path / "batch.json"
    serve_out = tmp_path / "serve.json"
    assert cli_main(["run", str(dataset), "--json", "--output", str(batch_out)]) == 0
    assert (
        cli_main(
            ["serve", str(dataset), "--once", "--json", "--output", str(serve_out)]
        )
        == 0
    )
    capsys.readouterr()
    assert serve_out.read_bytes() == batch_out.read_bytes()


def test_cli_follow_file_named_like_dataset_traces(tmp_bundle, tmp_path, capsys):
    """A followed file whose basename collides with the dataset's own
    ``traces.txt`` is still read in full: source offsets are keyed by
    full path, not basename.  (Regression: the follow source inherited
    the warm start's end-of-file offset and silently skipped its
    entire content.)"""
    full = tmp_bundle(seed=3)
    batch_out = tmp_path / "batch.json"
    assert cli_main(["run", str(full), "--json", "--output", str(batch_out)]) == 0
    partial = tmp_bundle(seed=3, copy=True)
    lines = (partial / "traces.txt").read_text().splitlines(keepends=True)
    half = len(lines) // 2
    (partial / "traces.txt").write_text("".join(lines[:half]))
    followdir = tmp_path / "extra"
    followdir.mkdir()
    follow = followdir / "traces.txt"  # the colliding basename
    follow.write_text("".join(lines[half:]))
    serve_out = tmp_path / "serve.json"
    code = cli_main(
        [
            "serve",
            str(partial),
            "--follow",
            str(follow),
            "--once",
            "--json",
            "--output",
            str(serve_out),
        ]
    )
    capsys.readouterr()
    assert code == 0
    assert serve_out.read_bytes() == batch_out.read_bytes()


def test_cli_serve_budget_exit(tmp_bundle, tmp_path, capsys):
    """A stream blowing the error budget exits 3, like batch ingest."""
    dataset = tmp_bundle(seed=3)
    stream = tmp_path / "stream.txt"
    garbage = "\n".join("!!not-a-trace!!" for _ in range(40)) + "\n"
    stream.write_text(garbage)
    code = cli_main(
        [
            "serve",
            str(dataset),
            "--follow",
            str(stream),
            "--once",
            "--on-error",
            "lenient",
            "--max-error-rate",
            "0.01",
            "--output",
            str(tmp_path / "out.txt"),
        ]
    )
    capsys.readouterr()
    assert code == 3
