"""docs/CLI.md must document every subcommand and flag the parser accepts.

The test walks the real argparse tree, so adding a flag without
documenting it (or renaming one and leaving the doc stale) fails CI.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

DOC = Path(__file__).resolve().parent.parent / "docs" / "CLI.md"


def _subparsers(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    return {}


def _option_strings(parser):
    options = set()
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--"):
                options.add(option)
    options.discard("--help")
    return options


@pytest.fixture(scope="module")
def doc_text():
    assert DOC.exists(), "docs/CLI.md is missing"
    return DOC.read_text()


def test_every_subcommand_documented(doc_text):
    for name in _subparsers(build_parser()):
        assert re.search(rf"\bmapit {name}\b", doc_text), (
            f"subcommand {name!r} is not documented in docs/CLI.md"
        )


def test_every_flag_documented(doc_text):
    missing = []
    for name, subparser in _subparsers(build_parser()).items():
        for option in _option_strings(subparser):
            if f"`{option}" not in doc_text and f"{option} " not in doc_text:
                missing.append(f"{name} {option}")
    assert not missing, f"flags undocumented in docs/CLI.md: {sorted(missing)}"


def test_exit_codes_documented(doc_text):
    for code in ("0", "2", "3"):
        assert re.search(rf"^\|?\s*`?{code}`?\s*\|", doc_text, re.M) or (
            f"exit code {code}" in doc_text.lower()
        ), f"exit code {code} not documented"


def test_on_error_modes_documented(doc_text):
    for mode in ("strict", "lenient", "quarantine"):
        assert mode in doc_text


def test_epilog_covers_exit_codes_and_on_error():
    epilog = build_parser().epilog or ""
    assert "exit codes" in epilog
    assert "--on-error" in epilog
    for mode in ("strict", "lenient", "quarantine"):
        assert mode in epilog
