"""docs/CLI.md content checks that need the *runtime* parser.

Flag and subcommand coverage is enforced statically by mapitlint's
CLI001 rule (see docs/STATIC_ANALYSIS.md) — it walks the argparse
construction in ``repro/cli.py`` without importing it and runs in the
CI lint job.  What remains here are the checks a static walk cannot
express: documented exit codes, the error-mode vocabulary, and the
parser epilog's self-documentation.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

DOC = Path(__file__).resolve().parent.parent / "docs" / "CLI.md"


@pytest.fixture(scope="module")
def doc_text():
    assert DOC.exists(), "docs/CLI.md is missing"
    return DOC.read_text()


def test_exit_codes_documented(doc_text):
    for code in ("0", "2", "3"):
        assert re.search(rf"^\|?\s*`?{code}`?\s*\|", doc_text, re.M) or (
            f"exit code {code}" in doc_text.lower()
        ), f"exit code {code} not documented"


def test_on_error_modes_documented(doc_text):
    for mode in ("strict", "lenient", "quarantine"):
        assert mode in doc_text


def test_epilog_covers_exit_codes_and_on_error():
    epilog = build_parser().epilog or ""
    assert "exit codes" in epilog
    assert "--on-error" in epilog
    for mode in ("strict", "lenient", "quarantine"):
        assert mode in epilog
