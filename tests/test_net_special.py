"""Tests for the RFC 6890 special-purpose registry."""

import pytest

from repro.net.ipv4 import parse_address
from repro.net.prefix import Prefix
from repro.net.special import SpecialPurposeRegistry, default_special_registry


def addr(text: str) -> int:
    return parse_address(text)


class TestDefaultRegistry:
    @pytest.mark.parametrize(
        "text",
        [
            "10.0.0.1",
            "10.255.255.255",
            "172.16.0.1",
            "172.31.255.254",
            "192.168.1.1",
            "100.64.0.1",       # CGN shared space
            "127.0.0.1",
            "169.254.10.10",
            "224.0.0.5",        # multicast
            "255.255.255.255",
            "192.0.2.55",       # TEST-NET-1
            "198.18.0.1",       # benchmarking
        ],
    )
    def test_special(self, text):
        assert default_special_registry().is_special(addr(text))

    @pytest.mark.parametrize(
        "text",
        [
            "8.8.8.8",
            "198.71.46.180",
            "109.105.98.10",
            "172.32.0.1",    # just past 172.16/12
            "100.128.0.1",   # just past 100.64/10
            "11.0.0.1",
            "223.255.255.1",
        ],
    )
    def test_public(self, text):
        assert not default_special_registry().is_special(addr(text))

    def test_name_for(self):
        registry = default_special_registry()
        assert registry.name_for(addr("10.1.2.3")) == "private-use"
        assert registry.name_for(addr("8.8.8.8")) is None

    def test_len(self):
        assert len(default_special_registry()) == 16


class TestCustomRegistry:
    def test_add(self):
        registry = SpecialPurposeRegistry()
        assert not registry.is_special(addr("203.0.113.1"))
        registry.add(Prefix.parse("203.0.113.0/24"), "docs")
        assert registry.is_special(addr("203.0.113.1"))

    def test_constructor_prefixes(self):
        registry = SpecialPurposeRegistry([Prefix.parse("198.51.100.0/24")])
        assert registry.is_special(addr("198.51.100.9"))
