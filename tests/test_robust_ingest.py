"""Fault-tolerance tests: malformed-input corpus, ingestion policies,
error budget, quarantine round-trips, atomic writes, and sanitize edge
cases.  Every fault-taxonomy class of :mod:`repro.robust.faults` is
exercised against strict (raises), lenient (skips + exact counts), and
quarantine (rejects round-trip) ingestion."""

import json
import shutil

import pytest

from repro.cli import main
from repro.io import load_bundle, save_scenario
from repro.io.atomic import atomic_write_lines, file_sha256
from repro.net.ipv4 import AddressError, parse_address
from repro.robust import (
    ErrorBudget,
    ErrorBudgetExceeded,
    FaultInjector,
    SimulatedCrash,
    ingest_trace_file,
    ingest_traces,
)
from repro.robust.faults import LINE_FAULTS, TRACE_FAULTS
from repro.traceroute.model import Hop, Trace
from repro.traceroute.parse import (
    TraceParseError,
    parse_json_trace,
    parse_text_trace,
    parse_text_traces,
    traces_to_json_lines,
    traces_to_text_lines,
)
from repro.traceroute.sanitize import sanitize_traces

GOOD_TEXT = [
    "m1|9.1.0.9|9.0.0.1 9.1.0.1",
    "m1|9.1.0.9|9.0.0.1 * 9.1.0.2@0",
    "m2|9.1.0.9|9.0.0.2 9.1.0.1",
]


def good_json_lines():
    return list(traces_to_json_lines(parse_text_traces(GOOD_TEXT)))


class TestTraceParseError:
    def test_missing_separators(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_text_trace("no separators here", line_number=7)
        assert excinfo.value.line_number == 7
        assert excinfo.value.text == "no separators here"
        assert "line 7" in str(excinfo.value)

    def test_one_separator(self):
        with pytest.raises(TraceParseError):
            parse_text_trace("m1|9.0.0.1")

    def test_bad_destination(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_text_trace("m1|300.0.0.1|9.0.0.1")
        assert "destination" in excinfo.value.reason

    def test_bad_hop_address(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_text_trace("m1|9.0.0.9|9.0.0.1 bogus")
        assert "hop address" in excinfo.value.reason

    def test_bad_quoted_ttl(self):
        with pytest.raises(TraceParseError):
            parse_text_trace("m1|9.0.0.9|9.0.0.1@x")

    def test_is_a_value_error(self):
        """Callers catching the historical ValueError still work."""
        with pytest.raises(ValueError):
            parse_text_trace("junk")

    def test_strict_iterator_reports_line_number(self):
        lines = GOOD_TEXT + ["garbage"]
        with pytest.raises(TraceParseError) as excinfo:
            list(parse_text_traces(lines))
        assert excinfo.value.line_number == 4

    def test_unicode_digits_rejected(self):
        """str.isdigit() accepts '³'; the parser must not."""
        with pytest.raises(AddressError):
            parse_address("9.0.0.³3")


class TestJsonParseErrors:
    def test_invalid_json(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_json_trace("{not json", line_number=2)
        assert "invalid JSON" in excinfo.value.reason

    def test_non_object(self):
        with pytest.raises(TraceParseError):
            parse_json_trace("[1, 2]")

    def test_null_dst(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_json_trace('{"dst": null, "hops": []}')
        assert "dst" in excinfo.value.reason

    def test_missing_dst(self):
        with pytest.raises(TraceParseError):
            parse_json_trace('{"hops": []}')

    def test_null_hop_addr(self):
        line = '{"dst":"9.0.0.9","hop_count":1,"hops":[{"probe_ttl":1,"addr":null}]}'
        with pytest.raises(TraceParseError):
            parse_json_trace(line)

    def test_null_rtt_and_reply_ttl_treated_as_absent(self):
        line = (
            '{"dst":"9.0.0.9","hop_count":1,'
            '"hops":[{"probe_ttl":1,"addr":"9.0.0.1","rtt":null,"reply_ttl":null}]}'
        )
        trace = parse_json_trace(line)
        assert trace.hops[0].rtt_ms == 0.0
        assert trace.hops[0].quoted_ttl == 1

    def test_reply_ttl_zero_preserved(self):
        """Quoted TTL 0 is the buggy-router signature; null-handling
        must not rewrite it to 1."""
        line = (
            '{"dst":"9.0.0.9","hop_count":1,'
            '"hops":[{"probe_ttl":1,"addr":"9.0.0.1","reply_ttl":0}]}'
        )
        assert parse_json_trace(line).hops[0].quoted_ttl == 0


class TestAtlasNullFields:
    def test_null_rtt_and_ittl(self):
        from repro.traceroute.atlas import parse_atlas_measurement

        record = {
            "af": 4,
            "prb_id": 1,
            "dst_addr": "9.9.9.9",
            "result": [
                {"hop": 1, "result": [{"from": "9.0.0.1", "rtt": None, "ittl": None}]}
            ],
        }
        trace = parse_atlas_measurement(record)
        assert trace.hops[0].address == parse_address("9.0.0.1")
        assert trace.hops[0].quoted_ttl == 1
        assert trace.hops[0].rtt_ms == 0.0

    def test_null_hop_entry_and_non_numeric_rtt(self):
        from repro.traceroute.atlas import parse_atlas_measurement

        record = {
            "af": 4,
            "dst_addr": "9.9.9.9",
            "result": [
                {"hop": None, "result": [{"from": "9.0.0.1"}]},
                {"hop": 2, "result": [None, {"from": "9.0.0.2", "rtt": "slow"}]},
            ],
        }
        trace = parse_atlas_measurement(record)
        # hop:null entry is dropped; non-numeric rtt makes its probe
        # unusable, the hop falls back to a gap rather than crashing
        assert [hop.address for hop in trace.hops] == [None, None]


class TestIngestModes:
    def test_strict_raises(self):
        with pytest.raises(TraceParseError):
            ingest_traces(GOOD_TEXT + ["garbage"], mode="strict")

    def test_lenient_counts_are_exact(self):
        lines = GOOD_TEXT + ["garbage"] + GOOD_TEXT + ["m|300.0.0.1|x", "", "# note"]
        traces, report = ingest_traces(lines, mode="lenient", source="s")
        assert len(traces) == 6
        assert report.parsed == 6
        assert report.malformed == 2
        assert report.total == 8  # blanks and comments are not records
        assert report.error_rate == pytest.approx(0.25)
        assert [error.line_number for error in report.errors] == [4, 8]
        assert report.errors[0].source == "s"
        assert report.errors[0].snippet == "garbage"

    def test_every_line_fault_kind_text(self):
        injector = FaultInjector(seed=5)
        for kind in LINE_FAULTS:
            line = injector.corrupt_line(GOOD_TEXT[0], kind, format="text")
            traces, report = ingest_traces(GOOD_TEXT + [line], mode="lenient")
            assert report.malformed == 1, kind
            assert len(traces) == len(GOOD_TEXT), kind

    def test_every_line_fault_kind_jsonl(self):
        injector = FaultInjector(seed=5)
        good = good_json_lines()
        for kind in LINE_FAULTS:
            line = injector.corrupt_line(good[0], kind, format="jsonl")
            traces, report = ingest_traces(
                good + [line], format="jsonl", mode="lenient"
            )
            assert report.malformed == 1, kind
            assert len(traces) == len(good), kind

    def test_atlas_mode_counts_bad_json(self):
        lines = ['{"af": 4', '{"af": 6, "dst_addr": "9.9.9.9"}']
        traces, report = ingest_traces(lines, format="atlas", mode="lenient")
        assert traces == []
        assert report.malformed == 1  # bad JSON
        assert report.skipped == 1  # IPv6: a skip, not an error

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ingest_traces(GOOD_TEXT, mode="permissive")

    def test_quarantine_requires_directory(self):
        with pytest.raises(ValueError):
            ingest_traces(GOOD_TEXT, mode="quarantine")


class TestQuarantine:
    def test_rejects_round_trip(self, tmp_path):
        bad = ["garbage one", "m|300.0.0.1|x"]
        lines = GOOD_TEXT + bad
        traces, report = ingest_traces(
            lines,
            mode="quarantine",
            source="traces.txt",
            quarantine_dir=tmp_path / "quarantine",
        )
        assert len(traces) == len(GOOD_TEXT)
        rejects_path = tmp_path / "quarantine" / "traces.txt.rejects.txt"
        assert str(rejects_path) == report.quarantine_path
        assert rejects_path.read_text().splitlines() == bad
        errors = [
            json.loads(line)
            for line in (tmp_path / "quarantine" / "traces.txt.errors.jsonl")
            .read_text()
            .splitlines()
        ]
        assert [error["line_number"] for error in errors] == [4, 5]
        assert all(error["source"] == "traces.txt" for error in errors)
        # re-ingesting the quarantined rejects finds them all malformed
        _, re_report = ingest_traces(
            rejects_path.read_text().splitlines(), mode="lenient"
        )
        assert re_report.malformed == len(bad)

    def test_no_rejects_no_files(self, tmp_path):
        _, report = ingest_traces(
            GOOD_TEXT, mode="quarantine", quarantine_dir=tmp_path / "q"
        )
        assert report.quarantine_path is None
        assert not (tmp_path / "q").exists()


class TestErrorBudget:
    def test_over_budget_raises(self):
        lines = (GOOD_TEXT * 10) + ["junk"] * 10  # 25% malformed of 40
        with pytest.raises(ErrorBudgetExceeded) as excinfo:
            ingest_traces(lines, mode="lenient", budget=ErrorBudget(0.1))
        assert excinfo.value.malformed == 10
        assert excinfo.value.total == 40
        assert "error budget exceeded" in str(excinfo.value)

    def test_under_budget_passes(self):
        lines = (GOOD_TEXT * 10) + ["junk"]
        traces, report = ingest_traces(
            lines, mode="lenient", budget=ErrorBudget(0.1)
        )
        assert report.malformed == 1
        assert len(traces) == 30

    def test_min_records_grace(self):
        traces, report = ingest_traces(
            GOOD_TEXT + ["junk"], mode="lenient", budget=ErrorBudget(0.1)
        )
        assert report.malformed == 1  # 25% > 10%, but only 4 records

    def test_early_cluster_judged_over_whole_file(self):
        """A corrupt block early in a long file must not abort a load
        whose overall malformed fraction is under budget."""
        lines = ["junk"] * 5 + GOOD_TEXT * 40  # 5/125 = 4%
        traces, report = ingest_traces(
            lines, mode="lenient", budget=ErrorBudget(0.1)
        )
        assert report.malformed == 5
        assert len(traces) == 120


class TestFaultInjectorDeterminism:
    def test_same_seed_same_damage(self):
        lines = GOOD_TEXT * 20
        first = FaultInjector(seed=9).corrupt_lines(lines, 0.2)
        second = FaultInjector(seed=9).corrupt_lines(lines, 0.2)
        assert first == second

    def test_fault_records_name_damaged_lines(self):
        lines = GOOD_TEXT * 20
        damaged, faults = FaultInjector(seed=9).corrupt_lines(lines, 0.2)
        assert faults
        damaged_numbers = {fault.line_number for fault in faults}
        for number, (old, new) in enumerate(zip(lines, damaged), start=1):
            assert (old != new) == (number in damaged_numbers)

    def test_file_faults(self, tmp_path):
        path = tmp_path / "traces.txt"
        path.write_text("\n".join(GOOD_TEXT * 10) + "\n")
        injector = FaultInjector(seed=2)
        faults = injector.corrupt_file(path, kind="truncated_file")
        assert faults and faults[0].kind == "truncated_file"
        _, report = ingest_trace_file(path, mode="lenient")
        assert report.malformed == 1  # the partial final record
        injector.corrupt_file(path, kind="empty_file")
        assert path.read_bytes() == b""
        traces, report = ingest_trace_file(path, mode="lenient")
        assert traces == [] and report.total == 0


class TestAtomicWrites:
    def test_crash_mid_serialization_leaves_no_file(self, tmp_path):
        injector = FaultInjector(seed=0)
        path = tmp_path / "out.txt"
        with pytest.raises(SimulatedCrash):
            atomic_write_lines(path, injector.crash_after(GOOD_TEXT, 2))
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # no temp litter either

    def test_crash_preserves_previous_version(self, tmp_path):
        injector = FaultInjector(seed=0)
        path = tmp_path / "out.txt"
        atomic_write_lines(path, ["complete"])
        with pytest.raises(SimulatedCrash):
            atomic_write_lines(path, injector.crash_after(GOOD_TEXT, 1))
        assert path.read_text() == "complete\n"

    def test_save_scenario_crash_leaves_no_partial_traces(
        self, tmp_path, scenario, monkeypatch
    ):
        """A mapit simulate killed mid-write leaves traces.txt and
        manifest.json either absent or complete — never partial."""
        import repro.io.save as save_module

        injector = FaultInjector(seed=0)
        real = save_module.traces_to_text_lines

        def crashing(traces):
            return injector.crash_after(real(traces), 10)

        monkeypatch.setattr(save_module, "traces_to_text_lines", crashing)
        with pytest.raises(SimulatedCrash):
            save_scenario(scenario, tmp_path / "ds")
        dataset = tmp_path / "ds"
        assert not (dataset / "traces.txt").exists()
        assert not (dataset / "manifest.json").exists()
        assert not list(dataset.glob("*.tmp.*"))

    def test_checksums_recorded_and_verified(self, tmp_bundle):
        root = tmp_bundle(seed=42, hostnames=False, copy=True)
        manifest = json.loads((root / "manifest.json").read_text())
        checksums = manifest["checksums"]
        assert checksums["traces.txt"] == "sha256:" + file_sha256(root / "traces.txt")
        bundle = load_bundle(root)
        assert bundle.health.checksum_failures == []
        # silent corruption that still parses is caught by the checksum
        lines = (root / "traces.txt").read_text().splitlines()
        (root / "traces.txt").write_text("\n".join(lines[:-1]) + "\n")
        bundle = load_bundle(root)
        assert bundle.health.checksum_failures == ["traces.txt"]
        assert not bundle.health.ok


class TestBundleDegradation:
    @pytest.fixture()
    def dataset(self, tmp_bundle):
        return tmp_bundle(seed=42, hostnames=False, copy=True)

    def test_corrupt_optional_degrades(self, dataset):
        (dataset / "relationships.txt").write_text("total garbage | | |\n")
        bundle = load_bundle(dataset)
        assert bundle.relationships.providers(1) == frozenset()
        assert bundle.health.status_of("relationships.txt") == "degraded"
        assert any("relationships" in warning for warning in bundle.health.warnings)

    def test_corrupt_ground_truth_degrades_to_none(self, dataset):
        (dataset / "groundtruth.txt").write_text("bogus|1.2.3.4|1\n")
        bundle = load_bundle(dataset)
        assert bundle.ground_truth is None
        assert bundle.health.status_of("groundtruth.txt") == "degraded"

    def test_corrupt_manifest_degrades_to_empty(self, dataset):
        (dataset / "manifest.json").write_text("{ not json")
        bundle = load_bundle(dataset)
        assert bundle.manifest == {}
        assert bundle.health.status_of("manifest.json") == "degraded"

    def test_missing_required_still_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path, on_error="lenient")

    def test_corrupt_required_raises_even_lenient(self, tmp_path):
        (tmp_path / "traces.txt").write_text("m|9.1.0.9|9.0.0.1 9.1.0.1\n")
        (tmp_path / "cymru.txt").write_text("complete garbage\n")
        with pytest.raises(Exception):
            load_bundle(tmp_path, on_error="lenient")

    def test_health_ok_on_clean_dataset(self, dataset):
        bundle = load_bundle(dataset)
        assert bundle.health.ok
        assert "bundle health: ok" in list(bundle.health.summary_lines())


class TestCliRobustness:
    @pytest.fixture()
    def clean_dataset(self, tmp_bundle):
        return tmp_bundle(seed=3)

    @pytest.fixture()
    def corrupted(self, clean_dataset, tmp_path_factory):
        """The dataset corrupted at a 5% line rate, plus its clean
        subset (the same dataset minus exactly the damaged lines)."""
        root = tmp_path_factory.mktemp("robust-cli-corrupt")
        corrupt_dir, subset_dir = root / "corrupt", root / "subset"
        shutil.copytree(clean_dataset, corrupt_dir)
        shutil.copytree(clean_dataset, subset_dir)
        lines = (clean_dataset / "traces.txt").read_text().splitlines()
        damaged, faults = FaultInjector(seed=13).corrupt_lines(lines, 0.05)
        assert faults
        (corrupt_dir / "traces.txt").write_text("\n".join(damaged) + "\n")
        bad = {fault.line_number for fault in faults}
        survivors = [
            line for number, line in enumerate(lines, start=1) if number not in bad
        ]
        (subset_dir / "traces.txt").write_text("\n".join(survivors) + "\n")
        return corrupt_dir, subset_dir, faults

    def test_strict_mode_aborts(self, corrupted):
        corrupt_dir, _, _ = corrupted
        with pytest.raises(TraceParseError):
            main(["run", str(corrupt_dir)])

    def test_lenient_reports_exact_count_and_matches_clean_subset(
        self, corrupted, tmp_path, capsys
    ):
        corrupt_dir, subset_dir, faults = corrupted
        lenient_out = tmp_path / "lenient.txt"
        subset_out = tmp_path / "subset.txt"
        code = main(
            [
                "run",
                str(corrupt_dir),
                "--on-error",
                "lenient",
                "--output",
                str(lenient_out),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert f"{len(faults)} malformed" in err
        assert main(["run", str(subset_dir), "--output", str(subset_out)]) == 0
        # inferences over the survivors == inferences over the clean subset
        assert lenient_out.read_text() == subset_out.read_text()

    def test_budget_exceeded_aborts_nonzero(
        self, clean_dataset, tmp_path, capsys
    ):
        corrupt_dir = tmp_path / "heavy"
        shutil.copytree(clean_dataset, corrupt_dir)
        FaultInjector(seed=4).corrupt_dataset(corrupt_dir, rate=0.3)
        code = main(["run", str(corrupt_dir), "--on-error", "lenient"])
        assert code == 3
        assert "error budget exceeded" in capsys.readouterr().err

    def test_quarantine_writes_rejects(self, corrupted, tmp_path, capsys):
        corrupt_dir, _, faults = corrupted
        code = main(
            [
                "run",
                str(corrupt_dir),
                "--on-error",
                "quarantine",
                "--output",
                str(tmp_path / "out.txt"),
            ]
        )
        assert code == 0
        rejects = corrupt_dir / "quarantine" / "traces.txt.rejects.txt"
        assert len(rejects.read_text().splitlines()) == len(faults)

    def test_simulate_prints_ingest_health(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path / "ds"), "--seed", "1"]) == 0
        err = capsys.readouterr().err
        assert "ingest traces.txt [strict]" in err
        assert "0 malformed" in err


class TestSanitizeEdgeCases:
    def _trace(self, *addresses):
        return Trace(
            "m",
            parse_address("9.9.9.9"),
            tuple(
                Hop(None) if text is None else Hop(parse_address(text))
                for text in addresses
            ),
        )

    def test_all_gap_trace_survives(self):
        report = sanitize_traces([self._trace(None, None, None)])
        assert len(report.traces) == 1
        assert report.discarded == 0
        assert report.all_addresses == set()

    def test_cycle_at_head(self):
        trace = self._trace("9.0.0.1", "9.0.0.2", "9.0.0.1")
        report = sanitize_traces([trace])
        assert report.discarded == 1
        assert report.all_addresses == {
            parse_address("9.0.0.1"),
            parse_address("9.0.0.2"),
        }

    def test_cycle_at_tail(self):
        trace = self._trace("9.0.0.5", "9.0.0.1", "9.0.0.2", "9.0.0.1")
        assert sanitize_traces([trace]).discarded == 1

    def test_injected_trace_faults_feed_sanitizer(self, scenario):
        injector = FaultInjector(seed=6)
        damaged, faults = injector.corrupt_traces(
            scenario.traces[:50], rate=0.3, kinds=TRACE_FAULTS
        )
        assert faults
        report = sanitize_traces(damaged)  # must not raise
        assert report.total == 50

    def test_cycle_fault_is_discarded(self):
        injector = FaultInjector(seed=6)
        clean = self._trace("9.0.0.1", "9.0.0.2", "9.0.0.3")
        cycled = injector.corrupt_trace(clean, "cycle")
        assert sanitize_traces([cycled]).discarded == 1

    def test_all_gaps_fault(self):
        injector = FaultInjector(seed=6)
        trace = injector.corrupt_trace(self._trace("9.0.0.1", "9.0.0.2"), "all_gaps")
        assert all(not hop.responded for hop in trace.hops)
