"""Tests for the testbed builder and the Internet2 neighborhood."""

import pytest

from repro import MapItConfig, run_mapit
from repro.net.ipv4 import parse_address
from repro.sim.internet2 import (
    INTERNET2,
    MAGPI,
    MERIT,
    MONTANA,
    NORDUNET,
    NYSERNET,
    UPENN,
    internet2_testbed,
)
from repro.sim.testbed import TestbedBuilder


def addr(text: str) -> int:
    return parse_address(text)


class TestBuilder:
    def minimal(self):
        tb = TestbedBuilder()
        tb.add_as(100, "a", "20.0.0.0/16")
        tb.add_as(200, "b", "21.0.0.0/16")
        tb.add_router("a1", 100)
        tb.add_router("a2", 100)
        tb.add_router("b1", 200)
        tb.link("a1", "a2", "20.0.1.0/31")
        tb.link("a2", "b1", "20.0.2.0/30")
        tb.transit(100, 200)
        tb.monitor("m", "a1")
        return tb

    def test_builds_and_traces(self):
        testbed = self.minimal().build()
        trace = testbed.trace("m", "21.0.0.55")
        addresses = [hop.address for hop in trace.hops if hop.address]
        # the path crosses a1 -> a2 -> b1
        assert addr("20.0.1.1") in addresses or addr("20.0.2.2") in addresses

    def test_link_owner_inferred_from_space(self):
        testbed = self.minimal().build()
        border = testbed.ground_truth.border[addr("20.0.2.1")]
        assert border.owner_as == 100
        assert border.pair() == (100, 200)

    def test_internal_vs_external_detection(self):
        testbed = self.minimal().build()
        assert testbed.ground_truth.is_internal(addr("20.0.1.0"))
        assert testbed.ground_truth.is_inter_as(addr("20.0.2.1"))

    def test_duplicate_router_rejected(self):
        tb = TestbedBuilder()
        tb.add_as(1, "x", "20.0.0.0/16")
        tb.add_router("r", 1)
        with pytest.raises(ValueError):
            tb.add_router("r", 1)

    def test_link_needs_p2p_prefix(self):
        tb = self.minimal()
        with pytest.raises(ValueError):
            tb.link("a1", "a2", "20.0.3.0/24")

    def test_link_outside_declared_space_rejected(self):
        tb = self.minimal()
        tb.add_router("b2", 200)
        tb.link("b1", "b2", "99.0.0.0/31")
        with pytest.raises(ValueError):
            tb.build()

    def test_monitor_pinned_to_named_router(self):
        testbed = self.minimal().build()
        (monitor,) = testbed.monitors
        gateway = testbed.network.routers[monitor.gateway_router]
        assert gateway.name == "a1"


class TestInternet2Neighborhood:
    @pytest.fixture(scope="class")
    def result(self):
        testbed = internet2_testbed()
        traces = testbed.trace_all(flows=2, targets_per_as=4)
        result = run_mapit(
            traces,
            testbed.ip2as,
            org=testbed.as2org,
            rel=testbed.relationships,
            config=MapItConfig(f=0.5),
        )
        return testbed, result

    def pairs_on(self, result, address_text):
        return {
            inference.pair()
            for inference in result.inferences
            if inference.address == addr(address_text)
        }

    def test_nordunet_link_from_paper(self, result):
        """The headline example: 109.105.98.10, NORDUnet-announced but
        on the Internet2 New York router."""
        _, inferences = result
        assert self.pairs_on(inferences, "109.105.98.10") == {
            tuple(sorted((NORDUNET, INTERNET2)))
        }

    def test_nysernet_customer_space_link(self, result):
        _, inferences = result
        assert self.pairs_on(inferences, "199.109.5.1") == {
            tuple(sorted((INTERNET2, NYSERNET)))
        }

    def test_merit_link(self, result):
        _, inferences = result
        assert self.pairs_on(inferences, "216.249.136.197") == {
            tuple(sorted((MERIT, INTERNET2)))
        }

    def test_montana_links(self, result):
        """Fig 5: the parallel Internet2-numbered customer links."""
        _, inferences = result
        montana_pair = tuple(sorted((INTERNET2, MONTANA)))
        found = self.pairs_on(inferences, "198.71.46.197") | self.pairs_on(
            inferences, "198.71.46.217"
        )
        assert montana_pair in found

    def test_no_inverse_mistake_inside_montana(self, result):
        """192.73.48.120/121 is Montana-internal; the Fig 5 mistaken
        backward inference must not survive."""
        _, inferences = result
        assert self.pairs_on(inferences, "192.73.48.120") == set()
        assert self.pairs_on(inferences, "192.73.48.121") == set()

    def test_backbone_interfaces_stay_internal(self, result):
        _, inferences = result
        for text in ("198.71.45.0", "198.71.45.1", "198.71.46.180", "198.71.46.181"):
            assert self.pairs_on(inferences, text) == set(), text

    def test_upenn_behind_magpi_not_linked_to_internet2(self, result):
        """Fig 1's lesson: UPenn connects to MAGPI, not Internet2."""
        _, inferences = result
        upenn_pairs = {
            inference.pair()
            for inference in inferences.inferences
            if UPENN in inference.pair()
        }
        assert tuple(sorted((UPENN, INTERNET2))) not in upenn_pairs

    def test_precision_against_testbed_truth(self, result):
        testbed, inferences = result
        truth = testbed.ground_truth
        observed = [i for i in inferences.inferences if i.kind != "indirect"]
        correct = sum(
            1 for i in observed if truth.connected_pair(i.address) == i.pair()
        )
        assert observed
        assert correct / len(observed) == 1.0
