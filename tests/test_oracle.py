"""The paper-literal oracle: equivalence with the production engine,
independence from it, and the shape of its result object.

The oracle (:mod:`repro.oracle`) restates Algorithms 1-4 in the
slowest, most literal form; these tests pin (a) that it reaches the
same inferences as :mod:`repro.core` on the worked Fig 2 example and
on seeded simulator worlds under both remove-rule readings, and
(b) that it really is a second implementation — importing it never
loads ``repro.core``.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import MapItConfig, run_mapit
from repro.graph.neighbors import build_interface_graph
from repro.org.as2org import AS2Org
from repro.oracle import OracleConfig, oracle_run
from repro.rel.relationships import RelationshipDataset
from repro.sim.presets import small_scenario
from repro.traceroute.sanitize import sanitize_traces

REPO_ROOT = Path(__file__).resolve().parent.parent


def core_map(result):
    return {
        (i.address, i.forward): (i.local_as, i.remote_as, i.kind, i.uncertain)
        for i in result.inferences + result.uncertain
    }


def oracle_map(result):
    return {
        record.half: (record.local_as, record.remote_as, record.kind, record.uncertain)
        for record in result.confident + result.uncertain
    }


def run_both(traces, ip2as, org=None, rel=None, **config_kwargs):
    org = org or AS2Org()
    rel = rel or RelationshipDataset()
    config = MapItConfig(**config_kwargs)
    core = run_mapit(list(traces), ip2as, org=org, rel=rel, config=config)
    graph = build_interface_graph(sanitize_traces(list(traces)).traces)
    oracle = oracle_run(
        graph,
        ip2as,
        org,
        rel,
        OracleConfig(
            f=config.f,
            min_neighbors=config.min_neighbors,
            remove_rule=config.remove_rule,
            max_iterations=config.max_iterations,
            enable_stub_heuristic=config.enable_stub_heuristic,
            fix_dual_inferences=config.fix_dual_inferences,
            fix_divergent_other_sides=config.fix_divergent_other_sides,
            fix_inverse_inferences=config.fix_inverse_inferences,
            enable_remove_step=config.enable_remove_step,
        ),
    )
    return core, oracle


class TestEquivalence:
    @pytest.mark.parametrize("rule", ["majority", "add_rule"])
    def test_fig2_example(self, fig2_traces, fig2_ip2as, rule):
        core, oracle = run_both(fig2_traces, fig2_ip2as, remove_rule=rule)
        assert core_map(core) == oracle_map(oracle)
        assert core_map(core)  # the worked example infers something

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("rule", ["majority", "add_rule"])
    def test_small_worlds(self, seed, rule):
        scenario = small_scenario(seed=seed)
        core, oracle = run_both(
            scenario.traces,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            remove_rule=rule,
        )
        assert core_map(core) == oracle_map(oracle)
        assert core.converged == oracle.converged
        assert core.iterations == oracle.iterations

    def test_ablation_knobs_respected(self, fig2_traces, fig2_ip2as):
        """The oracle honours the same ablation switches the engine
        does — with the inverse fix and remove step off, both keep the
        mistaken backward inference."""
        core, oracle = run_both(
            fig2_traces,
            fig2_ip2as,
            fix_inverse_inferences=False,
            enable_remove_step=False,
        )
        assert core_map(core) == oracle_map(oracle)


class TestIndependence:
    def test_reference_loads_standalone(self):
        """ORA001's runtime counterpart: the reference module executes
        in a fresh interpreter with *no* repro package on the path —
        it depends on nothing but the standard library."""
        reference = REPO_ROOT / "src" / "repro" / "oracle" / "reference.py"
        code = (
            "import importlib.util, sys\n"
            f"spec = importlib.util.spec_from_file_location('ref', {str(reference)!r})\n"
            "module = importlib.util.module_from_spec(spec)\n"
            "sys.modules['ref'] = module\n"
            "spec.loader.exec_module(module)\n"
            "loaded = [m for m in sys.modules if m.startswith('repro')]\n"
            "assert not loaded, loaded\n"
            "assert callable(module.oracle_run)\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env={})

    def test_oracle_sources_never_mention_core(self):
        for path in (REPO_ROOT / "src" / "repro" / "oracle").glob("*.py"):
            assert "from repro.core" not in path.read_text()
            assert "import repro.core" not in path.read_text()


class TestResultShape:
    def test_journal_and_by_half(self, fig2_traces, fig2_ip2as):
        _, oracle = run_both(fig2_traces, fig2_ip2as)
        assert oracle.converged
        assert oracle.journal, "a non-trivial run must journal its rules"
        for entry in oracle.journal:
            assert {"iteration", "pass", "rule", "address", "forward"} <= set(entry)
        by_half = oracle.by_half()
        for record in oracle.confident:
            assert by_half[record.half] is record
            assert oracle.journal_for(record.half), (
                "every final inference has journal entries for its half"
            )

    def test_final_visible_reflects_inferences(self, fig2_traces, fig2_ip2as):
        _, oracle = run_both(fig2_traces, fig2_ip2as)
        for record in oracle.confident:
            assert oracle.final_visible.get(record.half) == record.remote_as

    def test_config_defaults_mirror_production(self):
        """Field-by-field: a new MapItConfig knob must be mirrored (or
        consciously diverged) in the oracle's config."""
        production = MapItConfig()
        reference = OracleConfig()
        for name in (
            "f",
            "min_neighbors",
            "remove_rule",
            "max_iterations",
            "enable_stub_heuristic",
            "fix_dual_inferences",
            "fix_divergent_other_sides",
            "fix_inverse_inferences",
            "enable_remove_step",
        ):
            assert getattr(production, name) == getattr(reference, name), name
