"""Tests for ground-truth extraction."""

from repro.sim.network import EXTERNAL


class TestGroundTruth:
    def test_border_interfaces_paired(self, scenario):
        truth = scenario.ground_truth
        for address, interface in truth.border.items():
            other = truth.border[interface.other_address]
            assert other.other_address == address
            assert other.pair() == interface.pair()
            assert other.router_as == interface.connected_as

    def test_pair_matches_link_routers(self, scenario):
        truth = scenario.ground_truth
        network = scenario.network
        for link in network.links.values():
            if link.kind != EXTERNAL:
                continue
            for router_id, address in link.endpoints:
                interface = truth.border[address]
                assert interface.router_as == network.router_as(router_id)
                assert interface.owner_as == link.owner_as

    def test_internal_disjoint_from_border(self, scenario):
        truth = scenario.ground_truth
        assert not (set(truth.border) & truth.internal)
        assert not (set(truth.border) & set(truth.ixp))

    def test_monitor_lans_are_internal(self, scenario):
        truth = scenario.ground_truth
        for monitor in scenario.monitors:
            link = scenario.network.links[monitor.lan_link]
            for _, address in link.endpoints:
                assert truth.is_internal(address)

    def test_queries(self, scenario):
        truth = scenario.ground_truth
        some_border = next(iter(truth.border))
        assert truth.is_inter_as(some_border)
        assert truth.connected_pair(some_border) is not None
        assert truth.connected_pair(0) is None

    def test_interfaces_involving(self, scenario):
        truth = scenario.ground_truth
        asn = scenario.tier1_asns[0]
        for interface in truth.interfaces_involving(asn):
            assert asn in interface.pair()

    def test_counts(self, scenario):
        counts = scenario.ground_truth.counts()
        assert counts["border_interfaces"] > 0
        assert counts["internal_interfaces"] > 0
