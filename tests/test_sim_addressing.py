"""Tests for address-space allocation."""

import random

import pytest

from repro.net.prefix import Prefix
from repro.net.special import default_special_registry
from repro.sim.addressing import (
    ASAllocator,
    AddressPoolExhausted,
    build_address_plan,
    number_p2p_link,
)


class TestASAllocator:
    def allocator(self):
        return ASAllocator(asn=1, prefixes=[Prefix.parse("20.0.0.0/24")])

    def test_link_subnets_are_disjoint_and_aligned(self):
        allocator = self.allocator()
        seen = set()
        for _ in range(20):
            subnet = allocator.link_subnet(use_31=False)
            assert subnet.length == 30
            assert subnet.address % 4 == 0
            for address in subnet:
                assert address not in seen
                seen.add(address)

    def test_31_alignment(self):
        allocator = self.allocator()
        allocator.host()  # misalign the cursor
        subnet = allocator.link_subnet(use_31=True)
        assert subnet.length == 31
        assert subnet.address % 2 == 0

    def test_exhaustion(self):
        allocator = ASAllocator(asn=1, prefixes=[Prefix.parse("20.0.0.0/30")])
        allocator.link_subnet(use_31=False)
        with pytest.raises(AddressPoolExhausted):
            allocator.link_subnet(use_31=False)

    def test_spills_to_second_prefix(self):
        allocator = ASAllocator(
            asn=1,
            prefixes=[Prefix.parse("20.0.0.0/30"), Prefix.parse("30.0.0.0/24")],
        )
        first = allocator.link_subnet(use_31=False)
        second = allocator.link_subnet(use_31=False)
        assert Prefix.parse("20.0.0.0/30").contains(first.address)
        assert Prefix.parse("30.0.0.0/24").contains(second.address)

    def test_lan(self):
        lan = self.allocator().lan(26)
        assert lan.length == 26


class TestBuildPlan:
    def test_every_as_gets_space(self):
        rng = random.Random(0)
        plan = build_address_plan([10, 20, 30], rng)
        for asn in (10, 20, 30):
            assert plan.allocator(asn).prefixes
            assert plan.announced[asn]

    def test_prefixes_are_disjoint_and_public(self):
        rng = random.Random(0)
        plan = build_address_plan(list(range(1, 40)), rng)
        registry = default_special_registry()
        seen = []
        for prefix, _ in plan.all_prefixes():
            assert not registry.is_special(prefix.address)
            assert not registry.is_special(prefix.broadcast)
            for other in seen:
                assert not other.contains_prefix(prefix)
                assert not prefix.contains_prefix(other)
            seen.append(prefix)

    def test_unannounced_fraction(self):
        rng = random.Random(0)
        plan = build_address_plan(
            list(range(1, 200)), rng, unannounced_fraction=0.5,
            extra_prefix_probability=1.0,
        )
        unannounced = sum(len(prefixes) for prefixes in plan.unannounced.values())
        assert unannounced > 0


class TestNumberLink:
    def test_30_assignment(self):
        allocator = ASAllocator(asn=7, prefixes=[Prefix.parse("20.0.0.0/24")])
        rng = random.Random(1)
        link = number_p2p_link(allocator, rng, p31_fraction=0.0)
        assert link.subnet.length == 30
        assert link.owner_address == link.subnet.address + 1
        assert link.other_address == link.subnet.address + 2
        assert link.owner_as == 7

    def test_31_assignment(self):
        allocator = ASAllocator(asn=7, prefixes=[Prefix.parse("20.0.0.0/24")])
        link = number_p2p_link(allocator, random.Random(1), p31_fraction=1.0)
        assert link.subnet.length == 31
        assert {link.owner_address, link.other_address} == set(link.subnet)

    def test_fraction_respected(self):
        allocator = ASAllocator(asn=7, prefixes=[Prefix.parse("20.0.0.0/16")])
        rng = random.Random(42)
        lengths = [
            number_p2p_link(allocator, rng, p31_fraction=0.4).subnet.length
            for _ in range(400)
        ]
        fraction = sum(1 for length in lengths if length == 31) / len(lengths)
        assert 0.3 < fraction < 0.5
