"""Smoke tests: the runnable examples must keep working.

The fast examples run in-process; the paper-scale ones are exercised
indirectly by the benchmarks and skipped here for speed.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_traces.py",
    "diagnostics.py",
    "internet2_testbed.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip()


def test_quickstart_reports_accuracy(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "against ground truth" in captured.out


def test_custom_traces_finds_all_three_links(capsys):
    runpy.run_path(str(EXAMPLES / "custom_traces.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "NORDUnet <-> Internet2" in captured.out
    assert "NYSERNet <-> Internet2" in captured.out
    assert "Merit <-> Internet2" in captured.out


def test_all_examples_exist():
    expected = {
        "quickstart.py",
        "custom_traces.py",
        "internet2_verification.py",
        "internet2_testbed.py",
        "tier1_dns_verification.py",
        "artifact_robustness.py",
        "diagnostics.py",
    }
    assert expected <= {path.name for path in EXAMPLES.glob("*.py")}
