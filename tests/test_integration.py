"""Whole-pipeline integration tests and algorithm-level invariants on
the shared small scenario."""

import pytest

from repro import MapItConfig
from repro.core.results import DIRECT, INDIRECT, STUB


@pytest.fixture(scope="module")
def result(experiment):
    return experiment.run_mapit(MapItConfig(f=0.5))


class TestAlgorithmInvariants:
    def test_no_sibling_links(self, experiment, result):
        """Section 4.9: never infer inter-AS links between siblings."""
        org = experiment.scenario.as2org
        for inference in result.inferences:
            assert not org.are_siblings(inference.local_as, inference.remote_as)

    def test_no_inferences_on_private_addresses(self, experiment, result):
        ip2as = experiment.scenario.ip2as
        for inference in result.inferences:
            assert not ip2as.is_private(inference.address)

    def test_confident_and_uncertain_disjoint(self, result):
        confident = {(i.address, i.forward) for i in result.inferences}
        uncertain = {(i.address, i.forward) for i in result.uncertain}
        assert not (confident & uncertain)

    def test_at_most_one_inference_per_half(self, result):
        halves = [(i.address, i.forward) for i in result.inferences]
        assert len(halves) == len(set(halves))

    def test_indirect_inferences_reference_inferred_links(self, result):
        by_half = {(i.address, i.forward): i for i in result.inferences}
        for inference in result.inferences:
            if inference.kind != INDIRECT:
                continue
            # The source half lives on the other side of the link and
            # looks the other way; it must carry the same AS pair.
            source = by_half.get((inference.other_side, not inference.forward))
            if source is not None:
                assert source.pair() == inference.pair()

    def test_kinds_are_known(self, result):
        assert {i.kind for i in result.inferences} <= {DIRECT, INDIRECT, STUB}

    def test_inferred_interfaces_were_observed(self, experiment, result):
        observed = experiment.report.all_addresses
        for inference in result.inferences:
            if inference.kind == INDIRECT:
                continue  # other sides are inferred, not observed
            assert inference.address in observed

    def test_reasonable_overall_quality(self, experiment, result):
        truth = experiment.scenario.ground_truth
        direct_like = [i for i in result.inferences if i.kind != INDIRECT]
        correct = sum(
            1
            for i in direct_like
            if truth.connected_pair(i.address) == i.pair()
        )
        assert correct / max(1, len(direct_like)) > 0.75

    def test_determinism_across_runs(self, experiment):
        first = experiment.run_mapit(MapItConfig(f=0.5))
        second = experiment.run_mapit(MapItConfig(f=0.5))
        assert [str(i) for i in first.inferences] == [
            str(i) for i in second.inferences
        ]
        assert first.diagnostics == second.diagnostics


class TestFParameterMonotonicity:
    def test_first_pass_subset_at_f_one(self, experiment):
        """At f=1 every neighbor must agree, so the first direct pass
        yields a subset of f=0's.  (Later passes are not monotone: an
        early low-f inference can cascade into removals elsewhere.)"""
        loose = experiment.run_mapit(
            MapItConfig(f=0.0, record_checkpoints=True)
        )
        strict = experiment.run_mapit(
            MapItConfig(f=1.0, record_checkpoints=True)
        )
        loose_first = {
            (i.address, i.forward) for i in loose.checkpoints[0].inferences
        }
        strict_first = {
            (i.address, i.forward) for i in strict.checkpoints[0].inferences
        }
        assert strict_first <= loose_first
        assert len(strict_first) < len(loose_first)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_precision_stable_across_seeds(self, seed):
        from repro.eval.experiment import prepare_experiment
        from repro.sim.presets import small_scenario

        experiment = prepare_experiment(small_scenario(seed=seed))
        result = experiment.run_mapit(MapItConfig(f=0.5))
        scores = experiment.score(result.inferences)
        for label, score in scores.items():
            if score.tp + score.fp >= 5:
                assert score.precision > 0.6, f"seed {seed} {label}: {score}"
