"""Tests for MAP-IT configuration validation."""

import pytest

from repro.core.config import MapItConfig, REMOVE_ADD_RULE, REMOVE_MAJORITY


class TestValidation:
    def test_defaults(self):
        config = MapItConfig()
        assert config.f == 0.5
        assert config.min_neighbors == 2
        assert config.remove_rule == REMOVE_MAJORITY
        assert config.enable_stub_heuristic

    @pytest.mark.parametrize("f", [-0.1, 1.1, 2.0])
    def test_f_range(self, f):
        with pytest.raises(ValueError):
            MapItConfig(f=f)

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0])
    def test_f_boundaries_ok(self, f):
        assert MapItConfig(f=f).f == f

    def test_min_neighbors(self):
        with pytest.raises(ValueError):
            MapItConfig(min_neighbors=0)

    def test_remove_rule(self):
        assert MapItConfig(remove_rule=REMOVE_ADD_RULE).remove_rule == REMOVE_ADD_RULE
        with pytest.raises(ValueError):
            MapItConfig(remove_rule="bogus")

    def test_max_iterations(self):
        with pytest.raises(ValueError):
            MapItConfig(max_iterations=0)

    def test_with_f(self):
        config = MapItConfig(f=0.5, min_neighbors=3)
        new = config.with_f(0.8)
        assert new.f == 0.8
        assert new.min_neighbors == 3
        assert config.f == 0.5  # original untouched
