"""End-to-end tests of the MAP-IT algorithm on the paper's worked
examples: the Fig 2 multipass refinement, the Fig 4 dual-inference
resolution, the Fig 5 inverse-inference removal (and its uncertain
variant), the Alg 4 stub heuristic, and the Alg 3 remove step."""

from repro import MapItConfig, run_mapit
from repro.bgp.ip2as import IP2AS
from repro.net.ipv4 import parse_address
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


def run(lines, pairs, f=0.5, org=None, rel=None, **config_kwargs):
    config = MapItConfig(f=f, **config_kwargs)
    return run_mapit(
        list(parse_text_traces(lines)),
        IP2AS.from_pairs(pairs),
        org=org,
        rel=rel,
        config=config,
    )


def inference_on(result, address_text, forward=None):
    matches = [
        inference
        for inference in result.inferences
        if inference.address == addr(address_text)
        and (forward is None or inference.forward == forward)
    ]
    return matches


class TestFig2Multipass:
    """The Fig 2 neighborhood: 199.109.5.1_b is only inferable after
    the mappings of the New York router's ingress interfaces are
    refined to AS11537 (section 4.4.1's worked example)."""

    PAIRS = [
        ("109.105.98.0/24", 2603),
        ("216.249.136.0/24", 237),
        ("198.71.44.0/22", 11537),
        ("199.109.5.0/24", 3754),
    ]
    LINES = [
        "m1|198.71.46.99|109.105.98.10 198.71.46.180",
        "m1|198.71.45.99|109.105.98.10 198.71.45.2",
        "m1|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.99",
        "m2|198.71.46.99|216.249.136.196 198.71.46.180",
        "m2|198.71.45.99|216.249.136.196 198.71.45.2",
        "m2|199.109.5.98|216.249.136.196 199.109.5.1 199.109.5.98",
    ]

    def test_first_pass_infers_ingress_interfaces(self):
        result = run(self.LINES, self.PAIRS)
        (nordunet,) = inference_on(result, "109.105.98.10", forward=True)
        assert nordunet.pair() == (2603, 11537)
        (merit,) = inference_on(result, "216.249.136.196", forward=True)
        assert merit.pair() == (237, 11537)

    def test_second_pass_infers_nyser_link(self):
        """Initially tied (AS2603 vs AS237); after both mappings refine
        to AS11537, the backward inference can be made."""
        result = run(self.LINES, self.PAIRS)
        inferences = inference_on(result, "199.109.5.1", forward=False)
        assert len(inferences) == 1
        assert inferences[0].pair() == (3754, 11537)

    def test_indirect_inference_on_other_sides(self):
        """Section 4.4.2: the other side of each inferred link half is
        inferred indirectly — 109.105.98.9 and 199.109.5.2."""
        result = run(self.LINES, self.PAIRS)
        (other,) = inference_on(result, "109.105.98.9")
        assert other.kind == "indirect"
        assert other.pair() == (2603, 11537)
        (nyser_other,) = inference_on(result, "199.109.5.2")
        assert nyser_other.pair() == (3754, 11537)

    def test_internal_interface_not_inferred(self):
        """198.71.46.180's N_B refines to all-AS11537 — internal."""
        result = run(self.LINES, self.PAIRS)
        assert inference_on(result, "198.71.46.180") == []

    def test_determinism(self):
        first = run(self.LINES, self.PAIRS)
        second = run(self.LINES, self.PAIRS)
        assert [str(i) for i in first.inferences] == [
            str(i) for i in second.inferences
        ]

    def test_convergence_flag(self):
        result = run(self.LINES, self.PAIRS)
        assert result.converged
        assert result.iterations <= 4


class TestFig4DualInference:
    """A third-party address (Fig 4): 212.113.9.210 in AS3356 shows
    AS51159 forward and AS1299 backward; the forward inference is the
    correct one and the backward is discarded."""

    PAIRS = [
        ("212.113.9.0/24", 3356),
        ("62.115.0.0/16", 1299),
        ("91.228.0.0/16", 51159),
    ]
    LINES = [
        "m1|91.228.0.99|62.115.0.1 212.113.9.210 91.228.0.1",
        "m2|91.228.0.98|62.115.0.5 212.113.9.210 91.228.0.5",
    ]

    def test_forward_kept_backward_dropped(self):
        result = run(self.LINES, self.PAIRS)
        forward = inference_on(result, "212.113.9.210", forward=True)
        backward = inference_on(result, "212.113.9.210", forward=False)
        assert len(forward) == 1
        assert forward[0].pair() == (3356, 51159)
        assert backward == []
        assert result.diagnostics["dual_resolved"] >= 1

    def test_same_as_duals_both_kept(self):
        """When both inferences involve the same AS (load balancing or
        outgoing interfaces), both are retained."""
        pairs = [("212.113.9.0/24", 3356), ("62.115.0.0/16", 1299)]
        lines = [
            "m1|62.115.9.99|62.115.0.1 212.113.9.210 62.115.9.1",
            "m2|62.115.9.98|62.115.0.5 212.113.9.210 62.115.9.5",
        ]
        result = run(lines, pairs)
        forward = inference_on(result, "212.113.9.210", forward=True)
        backward = inference_on(result, "212.113.9.210", forward=False)
        assert len(forward) == 1 and len(backward) == 1
        assert result.diagnostics["dual_same_as"] >= 1

    def test_ablation_switch(self):
        result = run(self.LINES, self.PAIRS, fix_dual_inferences=False)
        backward = inference_on(result, "212.113.9.210", forward=False)
        assert len(backward) == 1  # contradiction left in place


class TestFig5InverseInference:
    """Fig 5: mistaken backward inferences one hop past the true border
    are removed in favour of the topologically nearer forward one."""

    PAIRS = [
        ("198.71.44.0/22", 11537),
        ("192.73.48.0/24", 3807),
    ]
    LINES = [
        "m1|192.73.48.99|198.71.45.10 198.71.46.197 192.73.48.120 192.73.48.99",
        "m2|192.73.48.98|198.71.45.14 198.71.46.197 192.73.48.124 192.73.48.98",
        "m3|192.73.48.97|198.71.45.18 198.71.46.217 192.73.48.120 192.73.48.97",
    ]

    def test_forward_kept_backward_removed(self):
        result = run(self.LINES, self.PAIRS)
        (forward,) = inference_on(result, "198.71.46.197", forward=True)
        assert forward.pair() == (3807, 11537)
        assert inference_on(result, "192.73.48.120", forward=False) == []
        assert result.diagnostics["inverse_removed"] >= 1

    def test_uncertain_when_other_side_corroborates(self):
        """When the backward IH's other side also carries a direct
        inference, neither side is nearer: both conflicting inferences
        are classified uncertain (section 4.4.4)."""
        lines = self.LINES + [
            # Traffic leaving AS3807: 192.73.48.121 (other side of
            # .120) sees AS11537 interfaces forward.
            "m4|198.71.45.99|192.73.48.121 198.71.46.198 198.71.45.99",
            "m4|198.71.45.98|192.73.48.121 198.71.46.218 198.71.45.98",
        ]
        result = run(lines, self.PAIRS)
        uncertain_addresses = {i.address for i in result.uncertain}
        assert addr("192.73.48.120") in uncertain_addresses
        assert addr("198.71.46.197") in uncertain_addresses
        confident = {i.address for i in result.inferences}
        assert addr("192.73.48.120") not in confident
        assert result.diagnostics["uncertain_pairs"] >= 1

    def test_ablation_switch(self):
        """With both the inverse fix and the remove step off, the
        mistaken backward inference survives to the output."""
        result = run(
            self.LINES,
            self.PAIRS,
            fix_inverse_inferences=False,
            enable_remove_step=False,
        )
        backward = inference_on(result, "192.73.48.120", forward=False)
        assert len(backward) == 1


class TestStubHeuristic:
    """Alg 4: a NATed stub exposing one address behind the link."""

    PAIRS = [("9.0.0.0/16", 100), ("9.5.0.0/16", 500), ("9.6.0.0/16", 600)]

    def rel(self):
        rel = RelationshipDataset()
        rel.add_p2c(100, 500)  # 500 is a stub customer of 100
        rel.add_p2c(100, 600)
        rel.add_p2c(600, 500)  # 600 has a customer: an ISP, not a stub
        return rel

    LINES = [
        "m1|9.5.0.99|9.0.0.9 9.0.0.33 9.5.0.77",
        "m2|9.5.0.98|9.0.0.13 9.0.0.33 9.5.0.77",
    ]

    def test_stub_link_inferred(self):
        result = run(self.LINES, self.PAIRS, rel=self.rel())
        (inference,) = inference_on(result, "9.0.0.33", forward=True)
        assert inference.kind == "stub"
        assert inference.pair() == (100, 500)

    def test_other_side_updated(self):
        result = run(self.LINES, self.PAIRS, rel=self.rel())
        others = inference_on(result, "9.0.0.34")
        assert len(others) == 1
        assert others[0].kind == "indirect"

    def test_no_inference_for_isp_neighbor(self):
        """A single neighbor belonging to an ISP could be a third-party
        address, so no inference is made (section 4.8 / 5.4)."""
        lines = [
            "m1|9.6.0.99|9.0.0.9 9.0.0.33 9.6.0.77",
            "m2|9.6.0.98|9.0.0.13 9.0.0.33 9.6.0.77",
        ]
        result = run(lines, self.PAIRS, rel=self.rel())
        assert inference_on(result, "9.0.0.33") == []

    def test_no_inference_without_relationships(self):
        """An AS absent from the relationship data is not provably a
        stub, so the heuristic stays quiet."""
        result = run(self.LINES, self.PAIRS, rel=RelationshipDataset())
        assert inference_on(result, "9.0.0.33") == []

    def test_disabled_by_config(self):
        result = run(
            self.LINES, self.PAIRS, rel=self.rel(), enable_stub_heuristic=False
        )
        assert inference_on(result, "9.0.0.33") == []

    def test_same_as_neighbor_no_inference(self):
        lines = [
            "m1|9.0.9.99|9.0.0.9 9.0.0.33 9.0.9.77",
            "m2|9.0.9.98|9.0.0.13 9.0.0.33 9.0.9.77",
        ]
        result = run(lines, self.PAIRS, rel=self.rel())
        assert inference_on(result, "9.0.0.33") == []


class TestRemoveStep:
    """Alg 3: an inference invalidated by refined mappings is demoted
    and discarded, then the half is free to be re-inferred."""

    PAIRS = [
        ("9.0.0.0/16", 100),
        ("9.1.0.0/16", 200),
        ("9.2.0.0/16", 300),
    ]
    # 9.0.0.50's forward set is {9.1.0.1, 9.1.0.5, 9.0.0.60}: initially
    # AS200 dominates, but both 9.1.0.x backward halves are then
    # re-mapped to AS300 (their own backward sets are all-AS300),
    # flipping the verdict.
    LINES = [
        "m1|9.9.0.1|9.0.0.50 9.1.0.1",
        "m2|9.9.0.2|9.0.0.50 9.1.0.5",
        "m3|9.9.0.3|9.0.0.50 9.0.0.60",
        "m4|9.9.0.4|9.2.0.1 9.1.0.1",
        "m4|9.9.0.5|9.2.0.5 9.1.0.1",
        "m5|9.9.0.6|9.2.0.9 9.1.0.5",
        "m5|9.9.0.7|9.2.0.13 9.1.0.5",
    ]

    def test_inference_revised_to_refined_as(self):
        result = run(self.LINES, self.PAIRS)
        inferences = inference_on(result, "9.0.0.50", forward=True)
        assert len(inferences) == 1
        assert inferences[0].remote_as == 300

    def test_without_remove_step_stale_inference_survives(self):
        result = run(self.LINES, self.PAIRS, enable_remove_step=False)
        inferences = inference_on(result, "9.0.0.50", forward=True)
        assert len(inferences) == 1
        assert inferences[0].remote_as == 200

    def test_converges(self):
        result = run(self.LINES, self.PAIRS)
        assert result.converged
