"""Tests for the Simple, Convention, and ITDK-style baselines."""

from repro.baselines.alias import AliasProfile, simulate_alias_resolution
from repro.baselines.convention import convention_heuristic
from repro.baselines.itdk import assign_routers_to_ases, itdk_links, run_itdk
from repro.baselines.simple import simple_heuristic
from repro.bgp.ip2as import IP2AS
from repro.net.ipv4 import parse_address
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


PAIRS = [("9.0.0.0/16", 100), ("9.1.0.0/16", 200), ("9.2.0.0/16", 300)]
IP2AS_SMALL = IP2AS.from_pairs(PAIRS)


class TestSimple:
    def test_first_address_in_new_as(self):
        traces = list(parse_text_traces(["m|9.9.9.9|9.0.0.1 9.1.0.1 9.1.0.5"]))
        inferences = simple_heuristic(traces, IP2AS_SMALL)
        assert len(inferences) == 1
        assert inferences[0].address == addr("9.1.0.1")
        assert inferences[0].pair() == (100, 200)

    def test_dedupes_across_traces(self):
        traces = list(
            parse_text_traces(
                ["m|9.9.9.9|9.0.0.1 9.1.0.1", "m|9.9.9.8|9.0.0.5 9.1.0.1"]
            )
        )
        assert len(simple_heuristic(traces, IP2AS_SMALL)) == 1

    def test_multiple_pairs_per_interface(self):
        """The paper: per-trace methods may infer many links for the
        same interface address."""
        traces = list(
            parse_text_traces(
                ["m|9.9.9.9|9.0.0.1 9.1.0.1", "m|9.9.9.8|9.2.0.1 9.1.0.1"]
            )
        )
        inferences = simple_heuristic(traces, IP2AS_SMALL)
        assert len(inferences) == 2
        assert {i.pair() for i in inferences} == {(100, 200), (200, 300)}

    def test_ignores_unknown_and_gaps(self):
        traces = list(parse_text_traces(["m|9.9.9.9|9.0.0.1 * 9.1.0.1 8.0.0.1"]))
        assert simple_heuristic(traces, IP2AS_SMALL) == []


class TestConvention:
    def rel(self):
        rel = RelationshipDataset()
        rel.add_p2c(100, 200)
        return rel

    def test_provider_side_chosen_when_provider_first(self):
        traces = list(parse_text_traces(["m|9.9.9.9|9.0.0.1 9.1.0.1"]))
        inferences = convention_heuristic(traces, IP2AS_SMALL, self.rel())
        assert len(inferences) == 1
        # 100 transits 200: the provider-side address (9.0.0.1) is taken.
        assert inferences[0].address == addr("9.0.0.1")

    def test_provider_side_chosen_when_provider_second(self):
        traces = list(parse_text_traces(["m|9.9.9.9|9.1.0.1 9.0.0.1"]))
        inferences = convention_heuristic(traces, IP2AS_SMALL, self.rel())
        assert inferences[0].address == addr("9.0.0.1")

    def test_falls_back_to_simple_for_peers(self):
        traces = list(parse_text_traces(["m|9.9.9.9|9.1.0.1 9.2.0.1"]))
        inferences = convention_heuristic(traces, IP2AS_SMALL, self.rel())
        assert inferences[0].address == addr("9.2.0.1")


class TestAliasResolution:
    def test_perfect_profile_recovers_routers(self, scenario):
        profile = AliasProfile(name="perfect", split_probability=0.0, merge_probability=0.0)
        clusters = simulate_alias_resolution(scenario.network, profile, seed=1)
        truth = {}
        for address, (router_id, _) in scenario.network.address_owner.items():
            truth.setdefault(router_id, set()).add(address)
        got = {frozenset(cluster) for cluster in clusters.clusters}
        want = {frozenset(cluster) for cluster in truth.values()}
        assert got == want

    def test_split_heavy_profile_increases_cluster_count(self, scenario):
        perfect = simulate_alias_resolution(
            scenario.network,
            AliasProfile("p", 0.0, 0.0),
            seed=1,
        )
        split = simulate_alias_resolution(
            scenario.network,
            AliasProfile("s", 0.9, 0.0),
            seed=1,
        )
        assert len(split) > len(perfect)

    def test_merge_heavy_profile_decreases_cluster_count(self, scenario):
        perfect = simulate_alias_resolution(
            scenario.network, AliasProfile("p", 0.0, 0.0), seed=1
        )
        merged = simulate_alias_resolution(
            scenario.network, AliasProfile("m", 0.0, 0.9), seed=1
        )
        assert len(merged) < len(perfect)

    def test_observed_filter(self, scenario):
        observed = set(list(scenario.network.address_owner)[:10])
        clusters = simulate_alias_resolution(
            scenario.network, AliasProfile.midar_like(), seed=1, observed=observed
        )
        members = {address for cluster in clusters.clusters for address in cluster}
        assert members <= observed

    def test_profiles(self):
        midar = AliasProfile.midar_like()
        kapar = AliasProfile.kapar_like()
        assert midar.split_probability > kapar.split_probability
        assert kapar.merge_probability > midar.merge_probability


class TestITDK:
    def test_router_to_as_election(self):
        from repro.baselines.alias import AliasClusters

        clusters = AliasClusters(
            clusters=[
                {addr("9.0.0.1"), addr("9.0.0.5"), addr("9.1.0.1")},
                {addr("8.0.0.1")},  # unannounced only
            ]
        )
        assignment = assign_routers_to_ases(clusters, IP2AS_SMALL)
        assert assignment[0] == 100
        assert 1 not in assignment

    def test_election_tie_breaks_low(self):
        from repro.baselines.alias import AliasClusters

        clusters = AliasClusters(clusters=[{addr("9.0.0.1"), addr("9.1.0.1")}])
        assert assign_routers_to_ases(clusters, IP2AS_SMALL)[0] == 100

    def test_link_extraction(self):
        from repro.baselines.alias import AliasClusters

        clusters = AliasClusters(
            clusters=[{addr("9.0.0.1")}, {addr("9.1.0.1")}]
        )
        traces = list(parse_text_traces(["m|9.9.9.9|9.0.0.1 9.1.0.1"]))
        inferences = itdk_links(traces, clusters, IP2AS_SMALL)
        assert len(inferences) == 1
        assert inferences[0].address == addr("9.1.0.1")
        assert inferences[0].pair() == (100, 200)

    def test_merge_error_changes_inferences(self):
        """A false alias merging routers across the border suppresses
        or corrupts the link inference — the ITDK failure mode."""
        from repro.baselines.alias import AliasClusters

        merged = AliasClusters(clusters=[{addr("9.0.0.1"), addr("9.1.0.1")}])
        traces = list(parse_text_traces(["m|9.9.9.9|9.0.0.1 9.1.0.1"]))
        assert itdk_links(traces, merged, IP2AS_SMALL) == []

    def test_run_itdk_end_to_end(self, scenario, experiment):
        inferences = run_itdk(
            experiment.report.traces,
            scenario.network,
            scenario.ip2as,
            seed=1,
        )
        assert inferences
        addresses = {inference.address for inference in inferences}
        # It should find at least some genuine border interfaces...
        truth = scenario.ground_truth
        hits = sum(1 for address in addresses if truth.is_inter_as(address))
        assert hits > 0
