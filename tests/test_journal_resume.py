"""Run journal: durability, torn tails, crash + resume byte-identity.

The contract under test is the acceptance bar of the robustness layer:
a run killed at iteration *k* and resumed with ``--resume`` produces
output byte-for-byte identical to an uninterrupted run, and a journal
failure (full disk, torn tail, corrupt blob) degrades durability but
never the run's result.
"""

import json

import pytest

from repro.cli import main
from repro.io import load_bundle
from repro.obs.metrics import Metrics
from repro.obs.observer import Observability
from repro.robust.faults import ChaosInjector, SimulatedCrash, chaos
from repro.robust.journal import (
    RunJournal,
    journaled_run,
    run_identity,
    run_identity_for,
)


@pytest.fixture(scope="module")
def bundle(tmp_bundle):
    return load_bundle(tmp_bundle(seed=3))


def _metrics_obs():
    metrics = Metrics()
    return Observability(metrics=metrics), metrics


class TestRunIdentity:
    def test_deterministic_and_input_sensitive(self):
        base = run_identity("a" * 64, "cfg", "strict", "text")
        assert base == run_identity("a" * 64, "cfg", "strict", "text")
        assert base != run_identity("b" * 64, "cfg", "strict", "text")
        assert base != run_identity("a" * 64, "cfg2", "strict", "text")
        assert base != run_identity("a" * 64, "cfg", "lenient", "text")
        assert len(base) == 16

    def test_directory_lookup(self, tmp_bundle):
        dataset = tmp_bundle(seed=3)
        first = run_identity_for(dataset, None, "strict")
        assert first == run_identity_for(dataset, None, "strict")
        assert first != run_identity_for(dataset, None, "lenient")

    def test_missing_traces_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_identity_for(tmp_path, None, "strict")


class TestJournalFile:
    def test_append_read_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123")
        assert journal.append("graph", {"blob": "graph"})
        assert journal.append("iteration", {"iteration": 1})
        records = RunJournal(tmp_path, "abc123").read()
        assert [r["unit"] for r in records] == ["graph", "iteration"]
        assert [r["seq"] for r in records] == [0, 1]

    def test_torn_tail_is_dropped(self, tmp_path):
        obs, metrics = _metrics_obs()
        journal = RunJournal(tmp_path, "abc123")
        journal.append("graph", {"blob": "graph"})
        journal.append("iteration", {"iteration": 1})
        # tear the last line mid-record, as a crash mid-append would
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[: len(data) - 20])
        reader = RunJournal(tmp_path, "abc123", obs=obs)
        records = reader.read()
        assert [r["unit"] for r in records] == ["graph"]
        assert metrics.counters["robust.journal.torn_tail"] == 1
        # the torn tail was rewritten away: a second read is clean
        obs2, metrics2 = _metrics_obs()
        again = RunJournal(tmp_path, "abc123", obs=obs2).read()
        assert [r["unit"] for r in again] == ["graph"]
        assert "robust.journal.torn_tail" not in metrics2.counters

    def test_bitflip_detected(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123")
        journal.append("graph", {"blob": "graph"})
        data = bytearray(journal.path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        journal.path.write_bytes(bytes(data))
        assert RunJournal(tmp_path, "abc123").read() == []

    def test_appends_continue_after_read(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123")
        journal.append("graph", {"blob": "graph"})
        resumed = RunJournal(tmp_path, "abc123")
        resumed.read()
        resumed.append("iteration", {"iteration": 1})
        records = RunJournal(tmp_path, "abc123").read()
        assert [r["seq"] for r in records] == [0, 1]

    def test_blob_roundtrip_and_corruption(self, tmp_path):
        obs, metrics = _metrics_obs()
        journal = RunJournal(tmp_path, "abc123", obs=obs)
        sha = journal.store_blob("graph", b"payload-bytes")
        assert journal.load_blob("graph", sha) == b"payload-bytes"
        blob_path = tmp_path / "abc123.graph.blob"
        blob_path.write_bytes(b"tampered")
        assert journal.load_blob("graph", sha) is None
        assert metrics.counters["robust.journal.blob_corrupt"] == 1

    def test_enospc_disables_but_never_raises(self, tmp_path):
        obs, metrics = _metrics_obs()
        journal = RunJournal(tmp_path, "abc123", obs=obs)
        with chaos(ChaosInjector(journal_enospc_seqs={0})):
            assert not journal.append("graph", {"blob": "graph"})
        assert journal.disabled
        assert metrics.counters["robust.journal.write_failed"] == 1
        # once disabled, later appends are silent no-ops
        assert not journal.append("iteration", {"iteration": 1})


class TestJournaledRun:
    def test_matches_unjournaled_run(self, bundle, tmp_path):
        plain = bundle.run_mapit()
        journal = RunJournal(tmp_path, "run1")
        journaled = journaled_run(bundle, journal=journal)
        assert journaled.to_json() == plain.to_json()
        units = [r["unit"] for r in RunJournal(tmp_path, "run1").read()]
        assert units[0] == "graph"
        assert units[-1] == "result"
        assert "iteration" in units

    def test_crash_then_resume_is_byte_identical(self, bundle, tmp_path):
        plain = bundle.run_mapit()
        journal = RunJournal(tmp_path, "run2")
        with chaos(ChaosInjector(crash_at_iteration=1)):
            with pytest.raises(SimulatedCrash):
                journaled_run(bundle, journal=journal)
        # the crashed run journaled the graph and iteration 1, no result
        units = [r["unit"] for r in RunJournal(tmp_path, "run2").read()]
        assert units == ["graph", "iteration"]

        resumed = journaled_run(
            bundle, journal=RunJournal(tmp_path, "run2"), resume=True
        )
        assert resumed.to_json() == plain.to_json()
        # iteration 1 was replayed from the journal, not recomputed:
        # the resumed journal holds one entry per iteration, no dupes
        records = RunJournal(tmp_path, "run2").read()
        iterations = [
            r["payload"]["iteration"]
            for r in records
            if r["unit"] == "iteration"
        ]
        assert iterations == sorted(set(iterations))
        assert iterations[0] == 1
        assert records[-1]["unit"] == "result"

    def test_resume_after_finish_replays_result(self, bundle, tmp_path):
        obs, metrics = _metrics_obs()
        journal = RunJournal(tmp_path, "run3")
        first = journaled_run(bundle, journal=journal)
        replayed = journaled_run(
            bundle,
            obs=obs,
            journal=RunJournal(tmp_path, "run3"),
            resume=True,
        )
        assert replayed.to_json() == first.to_json()
        assert metrics.counters["robust.journal.replayed"] == 1

    def test_torn_journal_resume_still_matches(self, bundle, tmp_path):
        plain = bundle.run_mapit()
        journal = RunJournal(tmp_path, "run4")
        with chaos(ChaosInjector(crash_at_iteration=1)):
            with pytest.raises(SimulatedCrash):
                journaled_run(bundle, journal=journal)
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[: len(data) - 15])
        resumed = journaled_run(
            bundle, journal=RunJournal(tmp_path, "run4"), resume=True
        )
        assert resumed.to_json() == plain.to_json()

    def test_corrupt_graph_blob_is_rebuilt(self, bundle, tmp_path):
        plain = bundle.run_mapit()
        journal = RunJournal(tmp_path, "run5")
        with chaos(ChaosInjector(crash_at_iteration=1)):
            with pytest.raises(SimulatedCrash):
                journaled_run(bundle, journal=journal)
        (tmp_path / "run5.graph.blob").write_bytes(b"not a pickle")
        obs, metrics = _metrics_obs()
        resumed = journaled_run(
            bundle,
            obs=obs,
            journal=RunJournal(tmp_path, "run5", obs=obs),
            resume=True,
        )
        assert resumed.to_json() == plain.to_json()
        assert metrics.counters["robust.journal.blob_corrupt"] >= 1

    def test_enospc_mid_run_still_completes(self, bundle, tmp_path):
        plain = bundle.run_mapit()
        obs, metrics = _metrics_obs()
        journal = RunJournal(tmp_path, "run6", obs=obs)
        with chaos(ChaosInjector(journal_enospc_seqs={1})):
            result = journaled_run(bundle, journal=journal)
        assert result.to_json() == plain.to_json()
        assert journal.disabled
        assert metrics.counters["robust.journal.write_failed"] == 1


class TestCliJournal:
    def test_run_journal_then_resume(self, tmp_bundle, tmp_path, capsys):
        dataset = tmp_bundle(seed=3)
        journal_dir = tmp_path / "journal"
        plain_out = tmp_path / "plain.json"
        first_out = tmp_path / "first.json"
        resumed_out = tmp_path / "resumed.json"
        assert main(
            ["run", str(dataset), "--output", str(plain_out), "--json"]
        ) == 0
        assert main(
            [
                "run", str(dataset), "--output", str(first_out), "--json",
                "--journal", str(journal_dir),
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "journal: run " in err
        run_id = err.split("journal: run ")[1].split()[0]
        assert main(
            [
                "run", str(dataset), "--output", str(resumed_out), "--json",
                "--journal", str(journal_dir), "--resume", run_id,
            ]
        ) == 0
        assert first_out.read_bytes() == plain_out.read_bytes()
        assert resumed_out.read_bytes() == plain_out.read_bytes()
        assert json.loads(resumed_out.read_text())

    def test_resume_without_journal_is_usage_error(self, tmp_bundle, capsys):
        dataset = tmp_bundle(seed=3)
        code = main(["run", str(dataset), "--resume", "deadbeef00000000"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_resume_with_wrong_run_id_is_rejected(
        self, tmp_bundle, tmp_path, capsys
    ):
        dataset = tmp_bundle(seed=3)
        code = main(
            [
                "run", str(dataset), "--journal", str(tmp_path),
                "--resume", "0000000000000000",
            ]
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err
