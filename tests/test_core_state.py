"""Tests for MAP-IT state bookkeeping."""

from repro.core.state import DirectInference, IndirectInference, MapItState
from repro.graph.halves import BACKWARD, FORWARD


def direct(half, local=1, remote=2, **kwargs):
    return DirectInference(half=half, local_as=local, remote_as=remote, **kwargs)


def indirect(half, source, local=1, remote=2, **kwargs):
    return IndirectInference(
        half=half, local_as=local, remote_as=remote, source=source, **kwargs
    )


H1, H2, H3 = (10, FORWARD), (11, BACKWARD), (12, FORWARD)


class TestInferenceBookkeeping:
    def test_add_and_remove_direct(self):
        state = MapItState()
        state.add_direct(direct(H1))
        assert H1 in state.direct
        assert H1 in state.inferred_this_step
        removed = state.remove_direct(H1)
        assert removed is not None
        assert H1 not in state.direct
        # The step marker is intentionally retained: only one direct
        # inference may be attempted per IH per add step.
        assert H1 in state.inferred_this_step

    def test_remove_direct_cascades_to_indirect(self):
        state = MapItState()
        state.add_direct(direct(H1))
        state.add_indirect(indirect(H2, source=H1))
        state.remove_direct(H1)
        assert H2 not in state.indirect

    def test_remove_missing_direct(self):
        assert MapItState().remove_direct(H1) is None

    def test_sweep_unsupported(self):
        state = MapItState()
        state.add_direct(direct(H1))
        state.add_indirect(indirect(H2, source=H1))
        state.add_indirect(indirect(H3, source=(99, FORWARD)))
        swept = state.sweep_unsupported_indirect()
        assert swept == 1
        assert H2 in state.indirect
        assert H3 not in state.indirect


class TestVisibleMappings:
    def test_direct_overrides_indirect(self):
        state = MapItState()
        state.add_direct(direct(H1, remote=5))
        state.add_indirect(indirect(H1, source=H2, remote=7))
        state.refresh_visible()
        assert state.visible_asn(H1, 0) == 5

    def test_detached_indirect_contributes_nothing(self):
        state = MapItState()
        inference = indirect(H1, source=H2, remote=7)
        inference.detached = True
        state.add_indirect(inference)
        state.refresh_visible()
        assert state.visible_asn(H1, 42) == 42

    def test_fallback_to_original(self):
        state = MapItState()
        state.refresh_visible()
        assert state.visible_asn(H1, 1234) == 1234


class TestFingerprint:
    def test_equal_states_equal_fingerprints(self):
        a, b = MapItState(), MapItState()
        for state in (a, b):
            state.add_direct(direct(H1))
            state.add_indirect(indirect(H2, source=H1))
        assert a.fingerprint() == b.fingerprint()

    def test_order_independent(self):
        a, b = MapItState(), MapItState()
        a.add_direct(direct(H1))
        a.add_direct(direct(H3))
        b.add_direct(direct(H3))
        b.add_direct(direct(H1))
        assert a.fingerprint() == b.fingerprint()

    def test_changes_move_fingerprint(self):
        state = MapItState()
        empty = state.fingerprint()
        state.add_direct(direct(H1))
        with_one = state.fingerprint()
        assert empty != with_one
        state.direct[H1].uncertain = True
        assert state.fingerprint() != with_one

    def test_counts(self):
        state = MapItState()
        state.add_direct(direct(H1, uncertain=True))
        state.add_indirect(indirect(H2, source=H1))
        assert state.counts() == {"direct": 1, "indirect": 1, "uncertain": 1}
        assert len(state) == 2
