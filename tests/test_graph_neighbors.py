"""Tests for neighbor-set extraction (paper section 4.3, Fig 3)."""

from repro.graph.halves import BACKWARD, FORWARD, backward_half, forward_half, half_str, opposite
from repro.graph.neighbors import build_interface_graph
from repro.net.ipv4 import parse_address
from repro.traceroute.model import Hop, Trace
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


class TestHalves:
    def test_opposite(self):
        assert opposite((5, FORWARD)) == (5, BACKWARD)
        assert opposite(opposite((5, FORWARD))) == (5, FORWARD)

    def test_constructors(self):
        assert forward_half(9) == (9, True)
        assert backward_half(9) == (9, False)

    def test_half_str_matches_paper_notation(self):
        assert half_str((addr("198.71.46.180"), FORWARD)) == "198.71.46.180_f"
        assert half_str((addr("198.71.46.180"), BACKWARD)) == "198.71.46.180_b"


class TestFig3:
    """The worked example of Fig 3, verbatim."""

    def graph(self):
        lines = [
            "m|9.9.9.1|109.105.98.10 198.71.46.180 205.233.255.36",
            "m|9.9.9.2|109.105.98.10 198.71.46.180 216.249.136.197",
            "m|9.9.9.3|198.71.45.236 198.71.46.180 *",
            "m|9.9.9.4|109.105.98.10 198.71.46.180 199.109.5.1",
        ]
        return build_interface_graph(parse_text_traces(lines))

    def test_forward_set(self):
        graph = self.graph()
        assert graph.n_forward(addr("198.71.46.180")) == {
            addr("205.233.255.36"),
            addr("216.249.136.197"),
            addr("199.109.5.1"),
        }

    def test_backward_set_unique_members(self):
        """109.105.98.10 appears in three traces but is one member."""
        graph = self.graph()
        assert graph.n_backward(addr("198.71.46.180")) == {
            addr("109.105.98.10"),
            addr("198.71.45.236"),
        }

    def test_incomplete_path_contributes(self):
        """Trace 3 ends with *, yet its earlier adjacency counts."""
        graph = self.graph()
        assert addr("198.71.46.180") in graph.n_forward(addr("198.71.45.236"))


class TestGraphConstruction:
    def test_gap_breaks_adjacency(self):
        trace = Trace(
            "m", addr("9.9.9.9"),
            (Hop(addr("9.0.0.1")), Hop(None), Hop(addr("9.0.0.2"))),
        )
        graph = build_interface_graph([trace])
        assert not graph.n_forward(addr("9.0.0.1"))
        assert not graph.n_backward(addr("9.0.0.2"))

    def test_private_addresses_excluded_and_break_adjacency(self):
        trace = Trace(
            "m", addr("9.9.9.9"),
            (Hop(addr("9.0.0.1")), Hop(addr("10.1.1.1")), Hop(addr("9.0.0.2"))),
        )
        graph = build_interface_graph([trace])
        assert addr("10.1.1.1") not in graph.addresses()
        assert not graph.n_forward(addr("9.0.0.1"))
        assert not graph.n_backward(addr("9.0.0.2"))

    def test_other_sides_include_discarded_addresses(self):
        trace = Trace("m", addr("9.9.9.9"), (Hop(addr("9.0.0.1")),))
        graph = build_interface_graph([trace], all_addresses=[addr("9.0.0.0")])
        # The extra observation proves 9.0.0.1 is /31-addressed.
        assert graph.other_side(addr("9.0.0.1")) == addr("9.0.0.0")

    def test_neighbors_accessor(self):
        lines = ["m|9.9.9.1|9.0.0.1 9.0.0.5"]
        graph = build_interface_graph(parse_text_traces(lines))
        assert graph.neighbors(addr("9.0.0.1"), True) == {addr("9.0.0.5")}
        assert graph.neighbors(addr("9.0.0.1"), False) == frozenset()

    def test_count_multi_neighbor(self):
        lines = [
            "m|9.9.9.1|9.0.0.1 9.0.0.5",
            "m|9.9.9.2|9.0.0.1 9.0.0.9",
        ]
        graph = build_interface_graph(parse_text_traces(lines))
        counts = graph.count_multi_neighbor()
        assert counts["forward"] == 1
        assert counts["backward"] == 0

    def test_overlap_fraction_zero_for_clean_data(self):
        lines = ["m|9.9.9.1|9.0.0.1 9.0.0.5 9.0.0.9"]
        graph = build_interface_graph(parse_text_traces(lines))
        assert graph.overlap_fraction() == 0.0

    def test_scenario_overlap_is_small(self, experiment):
        """Paper footnote: only 0.3% of interfaces in both Ns."""
        assert experiment.graph.overlap_fraction() < 0.1
