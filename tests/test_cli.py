"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-dataset")
    code = main(["simulate", str(directory), "--seed", "3", "--scale", "small"])
    assert code == 0
    return directory


class TestSimulate:
    def test_creates_dataset(self, dataset_dir):
        assert (dataset_dir / "traces.txt").exists()
        assert (dataset_dir / "manifest.json").exists()
        assert (dataset_dir / "hostnames.txt").exists()

    def test_no_hostnames_flag(self, tmp_path):
        code = main(
            ["simulate", str(tmp_path / "d"), "--seed", "1", "--no-hostnames"]
        )
        assert code == 0
        assert not (tmp_path / "d" / "hostnames.txt").exists()


class TestRun:
    def test_writes_inferences(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "inferences.txt"
        code = main(["run", str(dataset_dir), "--output", str(out)])
        assert code == 0
        text = out.read_text()
        assert "AS" in text and "<->" in text
        captured = capsys.readouterr()
        assert "inferences" in captured.err

    def test_stdout_mode(self, dataset_dir, capsys):
        assert main(["run", str(dataset_dir)]) == 0
        captured = capsys.readouterr()
        assert "<->" in captured.out

    def test_f_flag_changes_output(self, dataset_dir, tmp_path):
        loose, strict = tmp_path / "loose.txt", tmp_path / "strict.txt"
        main(["run", str(dataset_dir), "--f", "0.0", "--output", str(loose)])
        main(["run", str(dataset_dir), "--f", "1.0", "--output", str(strict)])
        assert len(strict.read_text().splitlines()) <= len(
            loose.read_text().splitlines()
        )


class TestEvaluate:
    def test_scores_manifest_networks(self, dataset_dir, capsys):
        assert main(["evaluate", str(dataset_dir)]) == 0
        captured = capsys.readouterr()
        assert "Precision%" in captured.out
        assert captured.out.count("AS") >= 3

    def test_explicit_asn(self, dataset_dir, capsys):
        import json

        manifest = json.loads((dataset_dir / "manifest.json").read_text())
        asn = manifest["verification_asns"][0]
        assert main(["evaluate", str(dataset_dir), "--asn", str(asn)]) == 0
        captured = capsys.readouterr()
        assert f"AS{asn}" in captured.out

    def test_without_ground_truth(self, tmp_path, capsys):
        (tmp_path / "traces.txt").write_text("m|9.1.0.9|9.0.0.1 9.1.0.1\n")
        (tmp_path / "cymru.txt").write_text("9.0.0.0/16|100\n")
        assert main(["evaluate", str(tmp_path)]) == 2


class TestExperiment:
    def test_stats(self, capsys):
        assert main(["experiment", "stats", "--scale", "small", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "discard fraction" in captured.out

    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "small", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "Stub Transit" in captured.out
        assert "Total" in captured.out

    def test_fig8(self, capsys):
        assert main(["experiment", "fig8", "--scale", "small", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        for method in ("MAP-IT", "Simple", "Convention", "ITDK-MIDAR", "ITDK-Kapar"):
            assert method in captured.out

    def test_fig7(self, capsys):
        assert main(["experiment", "fig7", "--scale", "small", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "stub heuristic" in captured.out


class TestExplain:
    def test_explains_interfaces(self, dataset_dir, capsys):
        import re

        assert main(["run", str(dataset_dir)]) == 0
        captured = capsys.readouterr()
        address = re.match(r"(\S+)_[fb] ", captured.out.splitlines()[0]).group(1)
        assert main(["explain", str(dataset_dir), address]) == 0
        captured = capsys.readouterr()
        assert f"interface {address}" in captured.out
        assert "neighbors" in captured.out
        assert "inference:" in captured.out

    def test_multiple_addresses(self, dataset_dir, capsys):
        assert main(["explain", str(dataset_dir), "1.0.0.1", "1.0.0.2"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("interface ") == 2


class TestReport:
    def test_report(self, dataset_dir, capsys):
        assert main(["report", str(dataset_dir)]) == 0
        captured = capsys.readouterr()
        assert "MAP-IT run report" in captured.out
        assert "AS-level links" in captured.out


class TestJsonOutput:
    def test_run_json(self, dataset_dir, tmp_path):
        import json

        out = tmp_path / "result.json"
        assert main(["run", str(dataset_dir), "--json", "--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["converged"]
        assert data["inferences"]
        assert {"address", "direction", "kind"} <= set(data["inferences"][0])

    def test_json_roundtrips_through_result(self, dataset_dir, tmp_path):
        from repro.core.results import MapItResult

        out = tmp_path / "result.json"
        main(["run", str(dataset_dir), "--json", "--output", str(out)])
        result = MapItResult.from_json(out.read_text())
        assert result.inferences


class TestAspathExperiment:
    def test_aspath(self, capsys):
        assert main(["experiment", "aspath", "--scale", "small", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "corrected_accuracy" in captured.out
