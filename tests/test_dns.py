"""Tests for hostname synthesis and hostname-derived verification."""


from repro.dns.naming import HostnameDataset, generate_hostnames
from repro.dns.verification import (
    EXTERNAL_TAG,
    FABRIC_TAG,
    INTERNAL_TAG,
    UNKNOWN_TAG,
    build_dns_verification,
    classify_hostname,
    tag_table,
)


class TestClassifyHostname:
    def test_external(self):
        kind, tag = classify_hostname("cogent-ic-309423-den-b1.c.telia.net")
        assert kind == EXTERNAL_TAG
        assert tag == "cogent"

    def test_internal(self):
        kind, tag = classify_hostname("ae-41-41.ebr1.berlin1.level3.net")
        assert kind == INTERNAL_TAG
        assert tag is None

    def test_fabric(self):
        kind, _ = classify_hostname("fabric-peering.london.operator.net")
        assert kind == FABRIC_TAG

    def test_unknown(self):
        assert classify_hostname("dialup-99.example.net")[0] == UNKNOWN_TAG
        assert classify_hostname(None)[0] == UNKNOWN_TAG
        assert classify_hostname("")[0] == UNKNOWN_TAG


class TestGeneration:
    def test_covers_operator_space(self, scenario):
        operator = scenario.tier1_asns[0]
        hostnames = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator],
            seed=1, coverage=1.0, stale_probability=0.0,
        )
        assert len(hostnames) > 0
        # Every name is in operator-controlled space.
        for address in hostnames.names:
            # the engine's owner view == plan owner
            assert scenario.engine.owner_as(address) == operator

    def test_external_tags_name_the_connected_network(self, scenario):
        operator = scenario.tier1_asns[0]
        hostnames = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator],
            seed=1, coverage=1.0, stale_probability=0.0,
        )
        tags = tag_table(scenario.network)
        truth = scenario.ground_truth
        checked = 0
        for address, name in hostnames.names.items():
            kind, tag = classify_hostname(name)
            if kind != EXTERNAL_TAG:
                continue
            border = truth.border[address]
            expected = next(asn for asn in border.pair() if asn != operator)
            assert tags[tag] == expected
            checked += 1
        assert checked > 0

    def test_coverage_knob(self, scenario):
        operator = scenario.tier1_asns[0]
        full = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator], seed=1, coverage=1.0
        )
        half = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator], seed=1, coverage=0.4
        )
        assert len(half) < len(full)

    def test_staleness_changes_tags(self, scenario):
        operator = scenario.tier1_asns[0]
        clean = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator],
            seed=1, coverage=1.0, stale_probability=0.0,
        )
        stale = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator],
            seed=1, coverage=1.0, stale_probability=1.0,
        )
        assert any(
            clean.names.get(address) != name for address, name in stale.names.items()
        )

    def test_lines_roundtrip(self, scenario):
        operator = scenario.tier1_asns[0]
        hostnames = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator], seed=1
        )
        parsed = HostnameDataset.from_lines(hostnames.dump_lines())
        assert parsed.names == hostnames.names


class TestDnsVerification:
    def build(self, scenario, experiment, staleness=0.0):
        operator = scenario.tier1_asns[0]
        hostnames = generate_hostnames(
            scenario.network, scenario.ground_truth, [operator],
            seed=1, coverage=1.0, stale_probability=staleness,
        )
        dataset = build_dns_verification(
            operator,
            hostnames,
            experiment.graph,
            experiment.seen,
            scenario.ip2as.asn,
            tag_table(scenario.network),
        )
        return operator, dataset

    def test_dataset_marked_incomplete(self, scenario, experiment):
        _, dataset = self.build(scenario, experiment)
        assert not dataset.complete

    def test_links_match_ground_truth_when_clean(self, scenario, experiment):
        operator, dataset = self.build(scenario, experiment)
        truth = scenario.ground_truth
        for record in set(dataset.link_by_address.values()):
            tagged_address = next(
                a for a in record.addresses if a in truth.border
            )
            assert truth.border[tagged_address].pair() == record.pair

    def test_internal_set_is_really_internal(self, scenario, experiment):
        operator, dataset = self.build(scenario, experiment)
        truth = scenario.ground_truth
        for address in dataset.internal:
            assert not truth.is_inter_as(address)

    def test_staleness_corrupts_pairs(self, scenario, experiment):
        _, clean = self.build(scenario, experiment, staleness=0.0)
        _, noisy = self.build(scenario, experiment, staleness=1.0)
        clean_pairs = {r.pair for r in clean.link_by_address.values()}
        noisy_pairs = {r.pair for r in noisy.link_by_address.values()}
        assert clean_pairs != noisy_pairs
