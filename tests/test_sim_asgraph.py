"""Tests for AS-level topology generation."""

from repro.sim.asgraph import ASGraph, ASGraphConfig, ASNode, Tier, generate_as_graph


def small_graph(seed=1, **kwargs):
    defaults = dict(
        tier1_count=3,
        tier2_count=5,
        regional_count=6,
        stub_count=15,
        re_customer_count=4,
        sibling_group_count=2,
        ixp_count=1,
        seed=seed,
    )
    defaults.update(kwargs)
    return generate_as_graph(ASGraphConfig(**defaults))


class TestGeneration:
    def test_counts(self):
        graph = small_graph()
        assert len(graph.by_tier(Tier.TIER1)) == 3
        assert len(graph.by_tier(Tier.TIER2)) == 5
        assert len(graph.by_tier(Tier.REGIONAL)) == 6
        assert len(graph.by_tier(Tier.RE_NETWORK)) == 1
        # stubs + the R&E customer cone
        assert len(graph.by_tier(Tier.STUB)) == 15 + 4

    def test_tier1_clique(self):
        graph = small_graph()
        tier1s = [node.asn for node in graph.by_tier(Tier.TIER1)]
        for i, first in enumerate(tier1s):
            for second in tier1s[i + 1 :]:
                assert second in graph.peers(first)

    def test_every_nontier1_has_a_provider(self):
        graph = small_graph()
        for node in graph.nodes.values():
            if node.tier == Tier.TIER1:
                continue
            assert graph.providers(node.asn), f"{node.name} has no provider"

    def test_no_duplicate_edges(self):
        graph = small_graph()
        seen = set()
        for edge in graph.edges:
            key = frozenset((edge.a, edge.b))
            assert key not in seen
            seen.add(key)

    def test_deterministic(self):
        a, b = small_graph(seed=9), small_graph(seed=9)
        assert sorted(a.nodes) == sorted(b.nodes)
        assert [(e.a, e.b, e.kind) for e in a.edges] == [
            (e.a, e.b, e.kind) for e in b.edges
        ]

    def test_seed_changes_topology(self):
        a, b = small_graph(seed=1), small_graph(seed=2)
        assert [(e.a, e.b) for e in a.edges] != [(e.a, e.b) for e in b.edges]

    def test_re_network_prefers_customer_space(self):
        graph = small_graph()
        (re_node,) = graph.by_tier(Tier.RE_NETWORK)
        assert re_node.customer_space_bias > 0.5

    def test_sibling_groups(self):
        graph = small_graph()
        assert len(graph.sibling_groups) == 2
        for group in graph.sibling_groups:
            assert len(group) == 2

    def test_ixps_have_sessions_between_members(self):
        graph = small_graph()
        for ixp in graph.ixps:
            for a, b in ixp.sessions:
                assert a in ixp.members
                assert b in ixp.members

    def test_nat_fraction_controls_nat_stubs(self):
        graph = small_graph(nat_stub_fraction=0.0)
        assert not any(node.natted for node in graph.nodes.values())


class TestQueries:
    def test_add_transit_and_peering(self):
        graph = ASGraph()
        graph.add_node(ASNode(1, Tier.TIER1, "a"))
        graph.add_node(ASNode(2, Tier.TIER2, "b"))
        graph.add_transit(1, 2)
        graph.add_peering(1, 2)  # duplicate edge ignored
        assert len(graph.edges) == 1
        assert graph.customers(1) == [2]
        assert graph.providers(2) == [1]
        assert graph.neighbors(1) == [2]
