"""Supervised shard execution: deadlines, retries, degradation, signals.

Workers here are module-level (the fork pool pickles them by
reference) and deliberately tiny; the fault paths are driven through
:class:`~repro.robust.faults.ChaosInjector`, whose pid guard keeps
faults inside forked workers — the parent (this test process) never
kills or hangs itself.
"""

import os
import signal
import time

import pytest

from repro.cli import main
from repro.obs.metrics import Metrics
from repro.obs.observer import Observability
from repro.perf.pool import _graceful_sigterm, fork_available, fork_map
from repro.perf import pool as pool_mod
from repro.robust.errors import ErrorBudget, ErrorBudgetExceeded
from repro.robust.faults import ChaosInjector, chaos
from repro.robust.supervise import (
    ShardDeadlineExhausted,
    SuperviseConfig,
    default_shard_timeout,
    supervised_pool_map,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="supervision tests need the fork start method"
)


def _sum_shard(shard):
    from repro.perf.pool import shared_payload

    values = shared_payload()
    start, end = shard
    return sum(values[start:end])


def _identity_shard(shard):
    return shard


def _sleep_shard(shard):
    time.sleep(5.0)
    return shard


def _raise_shard(shard):
    raise ValueError(f"poisoned shard {shard}")


def _metrics_obs():
    metrics = Metrics()
    return Observability(metrics=metrics), metrics


QUICK = SuperviseConfig(timeout=30.0, backoff_base=0.01, backoff_cap=0.05)


class TestEquivalence:
    def test_pooled_matches_serial(self):
        values = list(range(200))
        serial = fork_map(_sum_shard, values, len(values), 1)
        pooled = fork_map(_sum_shard, values, len(values), 4)
        assert sum(pooled) == sum(serial) == sum(values)
        assert len(pooled) == 4

    def test_results_come_back_in_shard_order(self):
        ranges = [(0, 5), (5, 9), (9, 20)]
        out = supervised_pool_map(_identity_shard, ranges, 3, config=QUICK)
        assert out == ranges


class TestFaultRecovery:
    def test_killed_worker_is_retried(self):
        obs, metrics = _metrics_obs()
        values = list(range(100))
        with chaos(ChaosInjector(kill_shards={(0, 1)})):
            pooled = fork_map(_sum_shard, values, len(values), 4, obs=obs)
        assert sum(pooled) == sum(values)
        assert metrics.counters["robust.supervise.worker_deaths"] == 1
        assert metrics.counters["robust.supervise.retries"] == 1

    def test_every_pooled_attempt_killed_degrades_inline(self):
        obs, metrics = _metrics_obs()
        values = list(range(40))
        # attempts 1 and 2 die in the pool; attempt 3 is the in-parent
        # fallback, which the injector's pid guard leaves untouched
        with chaos(ChaosInjector(kill_shards={(1, 1), (1, 2)})):
            pooled = fork_map(_sum_shard, values, len(values), 4, obs=obs)
        assert sum(pooled) == sum(values)
        assert metrics.counters["robust.supervise.degraded_inline"] == 1
        assert metrics.counters["robust.supervise.worker_deaths"] == 2

    def test_hung_worker_times_out_and_retries(self):
        obs, metrics = _metrics_obs()
        values = list(range(60))
        with chaos(ChaosInjector(hang_shards={(2, 1)}, hang_seconds=30.0)):
            pooled = fork_map(
                _sum_shard, values, len(values), 4, timeout=0.75, obs=obs
            )
        assert sum(pooled) == sum(values)
        assert metrics.counters["robust.supervise.timeouts"] == 1
        assert metrics.counters["robust.supervise.retries"] == 1

    def test_worker_exception_retried_then_raised(self):
        obs, metrics = _metrics_obs()
        config = SuperviseConfig(max_attempts=2, backoff_base=0.01)
        with pytest.raises(ValueError, match="poisoned shard"):
            supervised_pool_map(
                _raise_shard, [(0, 1), (1, 2)], 2, config=config, obs=obs
            )
        assert metrics.counters["robust.supervise.worker_errors"] >= 1

    def test_deadline_exhausted_raises_124_material(self):
        config = SuperviseConfig(
            timeout=0.4, max_attempts=2, backoff_base=0.01
        )
        with pytest.raises(ShardDeadlineExhausted) as excinfo:
            supervised_pool_map(_sleep_shard, [(0, 1), (1, 2)], 2, config=config)
        assert excinfo.value.timeout == 0.4
        assert "deadline" in str(excinfo.value)

    def test_budget_counts_rescued_shards(self):
        budget = ErrorBudget(max_error_rate=0.1, min_records=1)
        values = list(range(80))
        with chaos(ChaosInjector(kill_shards={(0, 1)})):
            with pytest.raises(ErrorBudgetExceeded):
                fork_map(
                    _sum_shard, values, len(values), 4, budget=budget
                )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SuperviseConfig(max_attempts=0)
        with pytest.raises(ValueError):
            SuperviseConfig(timeout=0.0)

    def test_default_shard_timeout_env(self, monkeypatch):
        monkeypatch.delenv("MAPIT_SHARD_TIMEOUT", raising=False)
        assert default_shard_timeout() is None
        monkeypatch.setenv("MAPIT_SHARD_TIMEOUT", "2.5")
        assert default_shard_timeout() == 2.5
        monkeypatch.setenv("MAPIT_SHARD_TIMEOUT", "not-a-number")
        assert default_shard_timeout() is None
        monkeypatch.setenv("MAPIT_SHARD_TIMEOUT", "-3")
        assert default_shard_timeout() is None


class TestSignals:
    def test_sigterm_becomes_keyboard_interrupt(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with _graceful_sigterm():
                os.kill(os.getpid(), signal.SIGTERM)
                for _ in range(100):
                    time.sleep(0.01)
        assert signal.getsignal(signal.SIGTERM) is before

    def test_cli_maps_interrupt_to_130(self, monkeypatch, tmp_path, capsys):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.load_bundle", interrupted)
        code = main(["run", str(tmp_path)])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_cli_maps_deadline_exhausted_to_124(self, monkeypatch, tmp_path, capsys):
        def timed_out(*args, **kwargs):
            raise ShardDeadlineExhausted((0, 10), 3, 0.5)

        monkeypatch.setattr("repro.cli.load_bundle", timed_out)
        code = main(["run", str(tmp_path)])
        assert code == 124
        assert "deadline" in capsys.readouterr().err


class TestDegradedPath:
    def test_no_fork_support_is_byte_identical(self, tmp_bundle, tmp_path, monkeypatch):
        """The forkless fallback must equal the parallel (and serial) run."""
        dataset = tmp_bundle(seed=3)
        parallel_out = tmp_path / "parallel.txt"
        degraded_out = tmp_path / "degraded.txt"
        assert main(
            ["run", str(dataset), "--output", str(parallel_out), "--jobs", "4"]
        ) == 0
        monkeypatch.setattr(pool_mod, "fork_available", lambda: False)
        assert main(
            ["run", str(dataset), "--output", str(degraded_out), "--jobs", "4"]
        ) == 0
        assert degraded_out.read_bytes() == parallel_out.read_bytes()
