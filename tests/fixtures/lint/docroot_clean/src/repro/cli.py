"""CLI001 clean fixture: every subcommand and flag is documented."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="mapit")
    sub = parser.add_subparsers(dest="command")
    frobnicate = sub.add_parser("frobnicate", help="frobnicate a dataset")
    frobnicate.add_argument("dataset")
    frobnicate.add_argument("--depth", type=int, default=2)
    frobnicate.add_argument("--dry-run", action="store_true")
    return parser
