"""OBS001 clean fixture: every emitted name is documented."""


def instrumented(obs, records):
    obs.event("app.started", records=len(records))
    with obs.span("load"):
        for record in records:
            obs.inc("records.loaded")
    obs.gauge("records.resident", len(records))
