"""Seeded RACE001/RACE002 violations: shared state crossing thread
roles with neither the snapshot-swap pattern nor a mutual lock."""

import threading


class Pipeline:
    def __init__(self) -> None:
        self.stats = {"folds": 0}
        self.snapshot: dict = {}

    def pump(self) -> None:
        # in-place mutation from the main role, unlocked
        self.stats["folds"] += 1

    def report(self) -> dict:
        # read from the reader role, unlocked, and not via a snapshot
        return dict(self.stats)


def reader_loop(pipeline: Pipeline) -> None:
    pipeline.report()


def bump_loop(pipeline: Pipeline) -> None:
    # unlocked read-modify-write from a multi-instance thread role
    pipeline.stats["folds"] += 1


def start(pipeline: Pipeline) -> None:
    threading.Thread(target=reader_loop, args=(pipeline,), daemon=True).start()
    for _ in range(4):
        threading.Thread(target=bump_loop, args=(pipeline,), daemon=True).start()
    pipeline.pump()
