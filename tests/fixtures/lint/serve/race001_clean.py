"""The sanctioned patterns RACE001/RACE002 must not flag: locked
counters on both sides and single-reference snapshot publication."""

import threading


class Pipeline:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stats = {"folds": 0}
        self.snapshot: dict = {}

    def pump(self) -> None:
        with self._lock:
            self.stats["folds"] += 1

    def publish(self) -> None:
        with self._lock:
            view = dict(self.stats)
        # single reference assignment: the sanctioned swap
        self.snapshot = view

    def report(self) -> dict:
        # readers only touch the immutable published snapshot
        snapshot = self.snapshot
        return snapshot

    def bump(self) -> None:
        with self._lock:
            self.stats["folds"] += 1


def reader_loop(pipeline: Pipeline) -> None:
    pipeline.report()


def bump_loop(pipeline: Pipeline) -> None:
    pipeline.bump()


def start(pipeline: Pipeline) -> None:
    threading.Thread(target=reader_loop, args=(pipeline,), daemon=True).start()
    for _ in range(4):
        threading.Thread(target=bump_loop, args=(pipeline,), daemon=True).start()
    pipeline.pump()
    pipeline.publish()
