"""ERR001 violating fixture: bare and swallowed-broad handlers."""


def bare_handler(work):
    try:
        return work()
    except:
        return None


def swallowed_broad(work):
    try:
        return work()
    except Exception:
        return None


def swallowed_base(work):
    try:
        return work()
    except (ValueError, BaseException):
        pass
