"""DET001 violating fixture: four distinct unordered-iteration hazards."""

import glob
import os
import random


def arbitrary_members(items):
    return [item for item in set(items)]


def arbitrary_listing(path):
    return os.listdir(path)


def arbitrary_matches(pattern):
    for name in glob.glob(pattern):
        yield name


def unseeded_pick(items):
    return random.choice(items)
