"""DET002 clean fixture: timing via perf_counter, time passed in."""

import time


def measure(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def stamp_record(record, timestamp):
    record["ts"] = timestamp
    return record
