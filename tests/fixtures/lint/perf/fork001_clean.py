"""FORK001 clean fixture: module-level worker, ordered pool map."""

from repro.perf.pool import fork_map, shared_payload


def _shard_worker(shard):
    start, end = shard
    payload = shared_payload()
    return [payload[index] for index in range(start, end)]


def run(items, jobs):
    return fork_map(_shard_worker, items, len(items), jobs)
