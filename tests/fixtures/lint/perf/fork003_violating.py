"""Seeded FORK003 violations: unpacked objects crossing the fork
boundary — the exact shape of the pickling regression."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class ParsedHop:
    address: int
    ttl: int


@dataclass
class ShardOutcome:
    parsed: int = 0
    hops: List[ParsedHop] = field(default_factory=list)


def dict_worker(shard):
    # an unpacked dict return: pickle cost scales with entries
    return {"lines": list(shard), "count": len(shard)}


def object_worker(shard) -> ShardOutcome:
    outcome = ShardOutcome()
    outcome.parsed = len(shard)
    return outcome


def ingest(shards, fork_map):
    totals = fork_map(dict_worker, shards)
    outcomes = fork_map(object_worker, shards)
    return totals, outcomes
