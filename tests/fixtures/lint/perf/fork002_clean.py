"""FORK002 clean fixture: sharding via fork_map, no direct pool use."""

from repro.perf.pool import fork_map, shared_payload


def _count_shard(shard):
    lines = shared_payload()
    start, end = shard
    return sum(1 for offset in range(start, end) if lines[offset])


def count_parallel(lines, jobs):
    results = fork_map(_count_shard, lines, len(lines), jobs)
    return sum(results)


def suppressed_legacy_dispatch(pool, items):
    # A reviewed exception stays expressible through the pragma.
    return pool.map(len, items)  # mapitlint: disable=FORK002 -- test shim
