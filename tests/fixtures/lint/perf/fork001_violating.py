"""FORK001 violating fixture: every fork-safety hazard in one file."""

from repro.perf.pool import fork_map

_RESULTS = []


class Runner:
    def _work(self, shard):
        return shard

    def run_bound(self, items, jobs):
        return fork_map(self._work, items, len(items), jobs)


def run_lambda(pool, items):
    return pool.map(lambda item: item + 1, items)


def run_unordered(pool, worker, items):
    return list(pool.imap_unordered(worker, items))


def run_closure(items, jobs):
    def closure_worker(shard):
        return shard

    return fork_map(closure_worker, items, len(items), jobs)


def mutate_global(shard):
    global _RESULTS
    _RESULTS = list(shard)
    return _RESULTS
