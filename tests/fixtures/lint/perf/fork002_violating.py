"""FORK002 violating fixture: unsupervised pool construction and dispatch."""

import multiprocessing


def module_level_worker(item):
    return item * 2


def unsupervised_map(items):
    pool = multiprocessing.Pool(4)
    return pool.map(module_level_worker, items)


def unsupervised_async(pool, items):
    task = pool.apply_async(module_level_worker, (items[0],))
    return task.get()


def unsupervised_unordered(worker_pool, items):
    return list(worker_pool.imap_unordered(module_level_worker, items))


def unsupervised_starmap(the_pool, pairs):
    return the_pool.starmap(module_level_worker, pairs)
