"""Fork-boundary returns FORK003 must accept: primitives, tuples of
primitives, and packed columnar types."""

from dataclasses import dataclass
from typing import Optional, Tuple


class FlatTraces:
    """Stand-in for the packed columnar type (name is the allowlist)."""

    def __init__(self, block: bytes) -> None:
        self.block = block

    def __len__(self) -> int:
        return len(self.block)


@dataclass
class ShardCounts:
    parsed: int = 0
    malformed: int = 0
    block: Optional[bytes] = None


def packed_worker(shard) -> FlatTraces:
    return FlatTraces(bytes(shard))


def tuple_worker(shard) -> Tuple[int, bytes]:
    return len(shard), bytes(shard)


def counts_worker(shard) -> ShardCounts:
    return ShardCounts(parsed=len(shard))


def ingest(shards, fork_map):
    packed = fork_map(packed_worker, shards)
    pairs = fork_map(tuple_worker, shards)
    counts = fork_map(counts_worker, shards)
    return packed, pairs, counts
