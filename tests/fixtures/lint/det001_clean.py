"""DET001 clean fixture: every unordered source is sorted or seeded."""

import os
import random


def ordered_members(items):
    return [item for item in sorted(set(items))]


def ordered_listing(path):
    return sorted(os.listdir(path))


def ordered_union(left, right):
    for member in sorted(left.union(right)):
        yield member


def seeded_pick(items, seed):
    rng = random.Random(seed)
    return rng.choice(sorted(items))
