"""ERR001 clean fixture: narrow handlers, accounted broad handlers."""


def narrow_control_flow(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None


def broad_but_reraised(work):
    try:
        return work()
    except Exception:
        raise


def broad_but_recorded(work, health):
    try:
        return work()
    except Exception as exc:
        health.record("work", "degraded", str(exc))
        return None
