"""DET002 violating fixture: wall-clock and entropy reads."""

import os
import time
import uuid
from datetime import datetime


def stamp_record(record):
    record["ts"] = time.time()
    return record


def label_run():
    return f"{datetime.now()}-{uuid.uuid4()}"


def salt():
    return os.urandom(8)
