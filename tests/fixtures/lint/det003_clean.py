"""Deterministic producers DET003 must accept: fingerprints and cache
keys derived purely from input data; timers used only for timing."""

import hashlib
import time


def state_fingerprint(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def make_cache_key(path: str, size: int) -> str:
    return hashlib.sha256(f"{path}:{size}".encode()).hexdigest()


def timed_parse(payload: bytes, obs) -> str:
    started = time.perf_counter()
    fingerprint = state_fingerprint(payload)
    # timing is observability, not output: never enters the artifact
    obs.gauge("parse.seconds", time.perf_counter() - started)
    return fingerprint
