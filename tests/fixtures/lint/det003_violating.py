"""Seeded DET003 violations: wall-clock values flowing two calls deep
into fingerprint and cache-key producers."""

import hashlib
import time


def _now() -> float:
    return time.time()


def _salt() -> str:
    # one hop: the nondeterminism rides through this helper
    return str(_now())


def state_fingerprint(payload: bytes) -> str:
    # two calls deep: time.time() -> _now -> _salt -> this digest
    digest = hashlib.sha256(payload + _salt().encode())
    return digest.hexdigest()


def make_cache_key(payload: bytes, salt: str) -> str:
    return hashlib.sha256(payload + salt.encode()).hexdigest()


def refresh(payload: bytes) -> str:
    # tainted argument into a cache-key sink call
    return make_cache_key(payload, _salt())
