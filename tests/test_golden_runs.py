"""End-to-end golden regression runs over frozen on-disk bundles.

``tests/fixtures/golden/`` holds three committed dataset directories —
two simulated small worlds (one text-format, one JSON-lines) and the
hand-built Fig 2 neighborhood — each with the expected ``run --json``
output frozen next to it as ``expected.json``.  Any change to parsing,
sanitization, graph construction, the inference passes, or output
serialization that alters results for *real files on disk* fails here
byte-for-byte, under the serial and the sharded execution paths alike.

Regenerating an expectation after an intentional behavior change::

    PYTHONPATH=src python -m repro.cli run tests/fixtures/golden/<name> \
        --json --output tests/fixtures/golden/<name>/expected.json
"""

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_ROOT = Path(__file__).parent / "fixtures" / "golden"
BUNDLES = sorted(path.name for path in GOLDEN_ROOT.iterdir() if path.is_dir())


def test_fixtures_present():
    assert BUNDLES == ["fig2", "small-seed11-jsonl", "small-seed3"]


@pytest.mark.parametrize("name", BUNDLES)
@pytest.mark.parametrize("jobs", [1, 2])
def test_golden_run_byte_exact(name, jobs, tmp_path, capsys):
    bundle = GOLDEN_ROOT / name
    out = tmp_path / "out.json"
    code = main(
        ["run", str(bundle), "--json", "--jobs", str(jobs), "--output", str(out)]
    )
    assert code == 0
    assert out.read_bytes() == (bundle / "expected.json").read_bytes()


@pytest.mark.parametrize("name", BUNDLES)
def test_golden_run_cached_byte_exact(name, tmp_path, capsys):
    bundle = GOLDEN_ROOT / name
    cache = tmp_path / "cache"
    for attempt in ("cold", "warm"):
        out = tmp_path / f"{attempt}.json"
        args = ["run", str(bundle), "--json", "--cache", str(cache), "--output", str(out)]
        assert main(args) == 0
        assert out.read_bytes() == (bundle / "expected.json").read_bytes()


def test_fig2_inference_is_the_papers(capsys):
    """The frozen Fig 2 case keeps inferring the NORDUnet-numbered
    ingress on the Internet2 router (AS2603 -> AS11537)."""
    assert main(["run", str(GOLDEN_ROOT / "fig2")]) == 0
    out = capsys.readouterr().out
    assert "109.105.98.10" in out
    assert "2603" in out and "11537" in out
