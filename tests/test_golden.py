"""Golden regression test.

The exact inference output for ``small_scenario(seed=42)`` at f = 0.5
is frozen in ``tests/data/golden_small_seed42.txt``.  Any change to
the simulator, the sanitizer, the neighbor-set construction, or the
algorithm that alters the output — intentionally or not — fails here
and forces a conscious snapshot update:

    python -c "import tests.test_golden as g; g.regenerate()"
"""

from pathlib import Path

from repro import MapItConfig
from repro.eval.experiment import prepare_experiment
from repro.sim.presets import small_scenario

GOLDEN = Path(__file__).parent / "data" / "golden_small_seed42.txt"


def current_lines():
    experiment = prepare_experiment(small_scenario(seed=42))
    result = experiment.run_mapit(MapItConfig(f=0.5))
    lines = [str(inference) for inference in result.inferences]
    lines += [f"UNCERTAIN {inference}" for inference in result.uncertain]
    return lines


def regenerate() -> None:
    """Rewrite the snapshot after a deliberate behaviour change."""
    lines = current_lines()
    with open(GOLDEN, "w") as handle:
        handle.write("# MAP-IT inferences, small_scenario(seed=42), f=0.5\n")
        for line in lines:
            handle.write(line + "\n")


def test_output_matches_golden_snapshot():
    expected = [
        line
        for line in GOLDEN.read_text().splitlines()
        if line and not line.startswith("#")
    ]
    assert current_lines() == expected
