"""Dirty-region property tests: sweeps, fault injection, shrinking.

Two directions:

* a healthy incremental engine never diverges from batch across a
  seeded world sweep (the CI job runs the big version of this);
* a *broken* one — :func:`dirty_tracking_fault` drops a fraction of
  dirty-half invalidations, the canonical incremental bug — is caught
  by the differential layer, ddmin-shrunk, and written out as a
  replayable regression bundle that still reproduces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.diff.worlds import world_from_bundle, world_from_preset
from repro.serve.verify import (
    check_sweep,
    check_world,
    dirty_tracking_fault,
    serve_world_diverges,
    shrink_serve_divergence,
)


def test_sweep_of_seeded_worlds_never_diverges():
    outcome = check_sweep("tiny", 3, seed=11, check_every=16)
    assert outcome.ok, "\n".join(outcome.lines())
    assert outcome.prefixes_checked > 0


def test_sweep_reports_world_and_prefix_on_divergence():
    """Under an injected dirty-tracking bug the sweep names the
    diverging world and the first bad prefix."""
    with dirty_tracking_fault(rate=0.9, seed=2):
        outcome = check_sweep("tiny", 2, seed=0, check_every=8)
    assert not outcome.ok
    divergence = outcome.divergences[0]
    assert divergence.prefix >= 1
    assert divergence.batch_fingerprint != divergence.serve_fingerprint
    assert "divergence at prefix" in divergence.summary()


def test_fault_is_scoped_to_the_context():
    """The fault patch restores the engine on exit: the same world
    that diverged inside the context is clean outside it."""
    world = world_from_preset("tiny", 0)
    with dirty_tracking_fault(rate=0.9, seed=2):
        assert serve_world_diverges(world, check_every=8)
    assert not serve_world_diverges(world, check_every=8)


def test_shrink_writes_replayable_regression(tmp_path):
    """A diverging world shrinks and the written bundle still
    reproduces the divergence under the same fault."""
    world = world_from_preset("tiny", 0)
    with dirty_tracking_fault(rate=0.9, seed=2):
        divergence, _ = check_world(world, check_every=1000)
        assert divergence is not None
        shrunk, report, written = shrink_serve_divergence(
            world, directory=tmp_path, check_every=1000
        )
        assert written is not None
        assert len(shrunk.traces) <= len(world.traces)
        assert report.tests_run >= 1
        replayed = world_from_bundle(written)
        assert serve_world_diverges(replayed, check_every=1000)
    # manifest records which layer the regression belongs to
    manifest = json.loads((Path(written) / "manifest.json").read_text())
    assert manifest["diff"]["layer"] == "serve-incremental"


@pytest.mark.parametrize("seed", [0, 1])
def test_check_world_counts_every_prefix(seed):
    world = world_from_preset("tiny", seed)
    divergence, checked = check_world(world, check_every=len(world.traces))
    assert divergence is None
    # cadence of N over N traces still always compares the final prefix
    assert checked >= 1
