"""Tests for dataset-directory persistence."""

import pytest

from repro import MapItConfig
from repro.dns.naming import generate_hostnames
from repro.io import load_bundle, load_ground_truth, save_ground_truth, save_scenario
from repro.io.truth import ground_truth_lines, parse_ground_truth


@pytest.fixture(scope="module")
def saved(tmp_path_factory, scenario):
    hostnames = generate_hostnames(
        scenario.network, scenario.ground_truth, scenario.tier1_asns[:1], seed=1
    )
    directory = tmp_path_factory.mktemp("dataset")
    save_scenario(scenario, directory, hostnames=hostnames)
    return directory


class TestGroundTruthRoundtrip:
    def test_roundtrip(self, scenario):
        truth = scenario.ground_truth
        parsed = parse_ground_truth(ground_truth_lines(truth))
        assert parsed.border == truth.border
        assert parsed.internal == truth.internal
        assert parsed.ixp == truth.ixp

    def test_file_roundtrip(self, tmp_path, scenario):
        path = tmp_path / "gt.txt"
        save_ground_truth(scenario.ground_truth, path)
        parsed = load_ground_truth(path)
        assert parsed.border == scenario.ground_truth.border

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            parse_ground_truth(["bogus|1.2.3.4|1"])


class TestSaveLoad:
    def test_layout(self, saved):
        for name in (
            "manifest.json",
            "traces.txt",
            "cymru.txt",
            "ixp.txt",
            "as2org.txt",
            "relationships.txt",
            "groundtruth.txt",
            "hostnames.txt",
        ):
            assert (saved / name).exists(), name
        assert list((saved / "bgp").glob("*.txt"))

    def test_bundle_contents(self, saved, scenario):
        bundle = load_bundle(saved)
        assert len(bundle.traces) == len(scenario.traces)
        assert bundle.ground_truth is not None
        assert bundle.hostnames is not None
        assert bundle.manifest["seed"] == scenario.config.seed
        assert bundle.manifest["verification_asns"] == scenario.verification_asns()

    def test_ip2as_equivalent(self, saved, scenario):
        bundle = load_bundle(saved)
        addresses = set()
        for trace in scenario.traces[:300]:
            addresses.update(trace.addresses())
        for address in addresses:
            assert bundle.ip2as.asn(address) == scenario.ip2as.asn(address)

    def test_mapit_results_identical(self, saved, scenario):
        """The full pipeline over the reloaded dataset reproduces the
        in-memory result, inference for inference."""
        from repro import run_mapit

        bundle = load_bundle(saved)
        on_disk = bundle.run_mapit(MapItConfig(f=0.5))
        in_memory = run_mapit(
            scenario.traces,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        )
        assert [str(i) for i in on_disk.inferences] == [
            str(i) for i in in_memory.inferences
        ]

    def test_missing_traces_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path)

    def test_missing_ip2as_raises(self, tmp_path):
        (tmp_path / "traces.txt").write_text("m|9.0.0.1|9.0.0.1 9.0.0.2\n")
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path)

    def test_minimal_bundle(self, tmp_path):
        (tmp_path / "traces.txt").write_text("m|9.1.0.9|9.0.0.1 9.1.0.1\n")
        (tmp_path / "cymru.txt").write_text("9.0.0.0/16|100\n9.1.0.0/16|200\n")
        bundle = load_bundle(tmp_path)
        assert len(bundle.traces) == 1
        assert bundle.ip2as.asn(bundle.traces[0].hops[0].address) == 100
        assert bundle.ground_truth is None


class TestJsonlTraces:
    def test_jsonl_roundtrip(self, tmp_path, scenario):
        save_scenario(scenario, tmp_path, trace_format="jsonl")
        assert (tmp_path / "traces.jsonl").exists()
        assert not (tmp_path / "traces.txt").exists()
        bundle = load_bundle(tmp_path)
        assert len(bundle.traces) == len(scenario.traces)
        original = [h.address for h in scenario.traces[0].hops]
        loaded = [h.address for h in bundle.traces[0].hops]
        assert loaded == original

    def test_unknown_format_rejected(self, tmp_path, scenario):
        with pytest.raises(ValueError):
            save_scenario(scenario, tmp_path, trace_format="pcap")
