"""Tests for the simplified bdrmap-like baseline."""


from repro.baselines.bdrmap_like import bdrmap_like
from repro.bgp.ip2as import IP2AS
from repro.net.ipv4 import parse_address
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


PAIRS = [
    ("9.0.0.0/16", 100),  # host
    ("9.1.0.0/16", 200),
    ("9.2.0.0/16", 300),
]
IP2AS_SMALL = IP2AS.from_pairs(PAIRS)


def rel():
    dataset = RelationshipDataset()
    dataset.add_p2c(200, 100)
    dataset.add_p2p(100, 300)
    return dataset


class TestExitDetection:
    def test_simple_exit(self):
        traces = list(
            parse_text_traces(
                [
                    "m|9.1.9.9|9.0.0.1 9.0.0.5 9.1.0.1 9.1.0.9",
                    "m|9.1.9.8|9.0.0.1 9.0.0.5 9.1.0.1 9.1.0.13",
                ]
            )
        )
        inferences = bdrmap_like(traces, 100, IP2AS_SMALL, rel())
        assert len(inferences) == 1
        assert inferences[0].address == addr("9.1.0.1")
        assert inferences[0].pair() == (100, 200)

    def test_neighbor_numbered_border_not_an_exit(self):
        """A foreign-announced hop followed by host space again stays
        inside (border links numbered from the neighbor)."""
        traces = list(
            parse_text_traces(
                [
                    "m|9.2.9.9|9.0.0.1 9.1.0.33 9.0.0.9 9.2.0.1 9.2.0.9",
                    "m|9.2.9.8|9.0.0.1 9.1.0.33 9.0.0.9 9.2.0.1 9.2.0.13",
                ]
            )
        )
        inferences = bdrmap_like(traces, 100, IP2AS_SMALL, rel())
        assert len(inferences) == 1
        assert inferences[0].address == addr("9.2.0.1")
        assert inferences[0].pair() == (100, 300)

    def test_host_numbered_border_peeks_past(self):
        """When the first outside hop is in host space (host-numbered
        link far side), the vote comes from the hop beyond it."""
        traces = list(
            parse_text_traces(
                [
                    # exit via a host-numbered link: far side 9.0.0.77
                    # is host space but its successor is AS200.
                    "m|9.1.9.9|9.0.0.1 9.0.0.77 9.1.0.9 9.1.0.1",
                ]
            )
        )
        inferences = bdrmap_like(traces, 100, IP2AS_SMALL, rel(), min_votes=1)
        # 9.0.0.77 is treated as still-inside; the border interface is
        # then 9.1.0.9 with neighbor 200.
        assert any(i.pair() == (100, 200) for i in inferences)

    def test_requires_monitor_inside_host(self):
        traces = list(parse_text_traces(["m|9.0.9.9|9.1.0.1 9.0.0.1 9.0.0.9"]))
        assert bdrmap_like(traces, 100, IP2AS_SMALL, rel()) == []

    def test_min_votes_gate_for_unknown_neighbors(self):
        """A single observation of an AS that is not a known BGP
        neighbor is not enough (possible third-party address)."""
        no_rel = RelationshipDataset()
        traces = list(parse_text_traces(["m|9.1.9.9|9.0.0.1 9.1.0.1 9.1.0.9"]))
        assert bdrmap_like(traces, 100, IP2AS_SMALL, no_rel, min_votes=2) == []
        # ...but a known neighbor is trusted at one vote.
        assert bdrmap_like(traces, 100, IP2AS_SMALL, rel(), min_votes=2)


class TestOnScenario:
    def test_finds_borders_but_loses_to_mapit(self, experiment):
        """bdrmap-like finds real borders of the monitor-hosting R&E
        network, but off-by-one exits (host-numbered border links) cap
        its precision well below MAP-IT's — the comparison the paper
        proposes as future work."""
        from repro import MapItConfig
        from repro.eval.verify import score_inferences

        scenario = experiment.scenario
        host = scenario.re_asn
        inferences = bdrmap_like(
            experiment.report.traces,
            host,
            scenario.ip2as,
            scenario.relationships,
        )
        assert inferences
        truth = scenario.ground_truth
        correct = sum(
            1
            for inference in inferences
            if truth.connected_pair(inference.address) is not None
            and host in truth.connected_pair(inference.address)
        )
        assert correct > 0
        dataset = experiment.datasets["I2"]
        bdrmap_score = score_inferences(
            inferences, dataset, scenario.as2org, experiment.graph
        )
        mapit = experiment.run_mapit(MapItConfig(f=0.5))
        mapit_score = score_inferences(
            mapit.inferences, dataset, scenario.as2org, experiment.graph
        )
        assert mapit_score.precision > bdrmap_score.precision
