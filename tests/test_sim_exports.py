"""Tests for dataset exports (BGP dumps, relationships, AS2ORG, IXP,
Cymru, the composite IP2AS build)."""

import random

from repro.sim.asgraph import ASGraphConfig, Tier, generate_as_graph
from repro.sim.exports import (
    build_ip2as,
    export_as2org,
    export_bgp_dumps,
    export_cymru,
    export_ixp_dataset,
    export_relationships,
)
from repro.sim.network import NetworkConfig, build_network
from repro.sim.routing import ASRoutes


def world(seed=3):
    graph = generate_as_graph(
        ASGraphConfig(
            tier1_count=2, tier2_count=4, regional_count=5, stub_count=10,
            re_customer_count=3, ixp_count=1, sibling_group_count=2, seed=seed,
        )
    )
    network = build_network(graph, NetworkConfig(seed=seed))
    return graph, network, ASRoutes(graph)


class TestRelationships:
    def test_edges_exported(self):
        graph, _, _ = world()
        rel = export_relationships(graph)
        for edge in graph.edges:
            if edge.kind == "transit":
                assert edge.b in rel.customers(edge.a)
            else:
                assert edge.b in rel.peers(edge.a)

    def test_ixp_sessions_are_peerings(self):
        graph, _, _ = world()
        rel = export_relationships(graph)
        for ixp in graph.ixps:
            for a, b in ixp.sessions:
                assert b in rel.peers(a)


class TestAS2Org:
    def test_full_completeness(self):
        graph, _, _ = world()
        org = export_as2org(graph, random.Random(0), completeness=1.0)
        for group in graph.sibling_groups:
            members = sorted(group)
            assert org.are_siblings(members[0], members[1])

    def test_zero_completeness(self):
        graph, _, _ = world()
        org = export_as2org(graph, random.Random(0), completeness=0.0)
        assert not list(org.groups())


class TestBGPDumps:
    def test_collectors_hold_announced_prefixes(self):
        graph, network, routes = world()
        tier1 = graph.by_tier(Tier.TIER1)[0].asn
        (dump,) = export_bgp_dumps(network, routes, [tier1])
        prefixes = dump.prefixes()
        for asn, announced in network.plan.announced.items():
            if not routes.knows(asn):
                continue
            for prefix in announced:
                assert prefix in prefixes

    def test_paths_end_at_origin(self):
        graph, network, routes = world()
        tier1 = graph.by_tier(Tier.TIER1)[0].asn
        (dump,) = export_bgp_dumps(network, routes, [tier1])
        owner = {}
        for asn, announced in network.plan.announced.items():
            for prefix in announced:
                owner[prefix] = asn
        for announcement in dump:
            assert announcement.origin == owner[announcement.prefix]
            assert announcement.as_path[0] == tier1

    def test_unannounced_prefixes_absent(self):
        graph, network, routes = world()
        tier1 = graph.by_tier(Tier.TIER1)[0].asn
        (dump,) = export_bgp_dumps(network, routes, [tier1])
        prefixes = dump.prefixes()
        for asn, unannounced in network.plan.unannounced.items():
            for prefix in unannounced:
                assert prefix not in prefixes


class TestIP2ASBuild:
    def test_interfaces_resolve_to_owner(self):
        graph, network, routes = world()
        collectors = [node.asn for node in graph.by_tier(Tier.TIER1)]
        ip2as, _, _, _ = build_ip2as(network, routes, collectors, random.Random(0))
        checked = 0
        for link in network.links.values():
            if link.kind != "external":
                continue
            asn = ip2as.asn(link.endpoints[0][1])
            if asn > 0:
                assert asn == link.owner_as
                checked += 1
        assert checked > 0

    def test_cymru_covers_some_unannounced(self):
        graph, network, routes = world()
        cymru = export_cymru(network, random.Random(0), unannounced_coverage=1.0)
        unannounced = [
            prefix
            for prefixes in network.plan.unannounced.values()
            for prefix in prefixes
        ]
        if unannounced:
            assert len(cymru) == len(unannounced)

    def test_ixp_completeness(self):
        graph, network, routes = world()
        full = export_ixp_dataset(network, random.Random(0), completeness=1.0)
        none = export_ixp_dataset(network, random.Random(0), completeness=0.0)
        assert len(full) == len(network.ixp_links)
        assert len(none) == 0
