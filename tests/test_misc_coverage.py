"""Focused tests for smaller code paths not covered elsewhere."""


from repro import MapItConfig
from repro.core.engine import Engine
from repro.bgp.ip2as import IP2AS
from repro.graph.halves import FORWARD
from repro.graph.neighbors import build_interface_graph
from repro.net.ipv4 import parse_address
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


class TestEngineDominance:
    def engine(self):
        lines = [
            "m|9.9.9.1|9.0.0.1 9.1.0.1",
            "m|9.9.9.2|9.0.0.1 9.1.0.5",
            "m|9.9.9.3|9.0.0.1 9.2.0.1",
        ]
        graph = build_interface_graph(parse_text_traces(lines))
        ip2as = IP2AS.from_pairs([("9.0.0.0/16", 100), ("9.1.0.0/16", 200), ("9.2.0.0/16", 300)])
        engine = Engine(graph, ip2as)
        engine.state.refresh_visible()
        return engine

    def test_dominance_counts_target_group(self):
        engine = self.engine()
        tally = engine.dominance((addr("9.0.0.1"), FORWARD), 200)
        assert tally.count == 2
        assert tally.total == 3
        assert tally.is_majority()

    def test_dominance_absent_group(self):
        engine = self.engine()
        tally = engine.dominance((addr("9.0.0.1"), FORWARD), 999)
        assert tally.count == 0
        assert not tally.is_majority()


class TestFSweepDefaults:
    def test_default_grid(self):
        from repro.eval.fsweep import DEFAULT_F_VALUES

        assert DEFAULT_F_VALUES == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class TestTagTable:
    def test_names_map_to_asns(self, scenario):
        from repro.dns.verification import tag_table

        table = tag_table(scenario.network)
        for asn, node in scenario.graph.nodes.items():
            assert table[node.name.replace("_", "-")] == asn


class TestTestbedTrace:
    def test_string_destination(self):
        from repro.sim.internet2 import internet2_testbed

        testbed = internet2_testbed()
        trace = testbed.trace("mon-nord", "199.109.5.99")
        assert trace.dst == addr("199.109.5.99")
        assert len(trace.hops) >= 2

    def test_names_exposed(self):
        from repro.sim.internet2 import INTERNET2, internet2_testbed

        testbed = internet2_testbed()
        assert testbed.names[INTERNET2] == "internet2"


class TestAtlasDefaults:
    def test_missing_af_treated_as_ipv4(self):
        from repro.traceroute.atlas import parse_atlas_measurement

        record = {
            "dst_addr": "9.9.9.9",
            "result": [{"hop": 1, "result": [{"from": "9.0.0.1"}]}],
        }
        trace = parse_atlas_measurement(record)
        assert trace is not None
        assert trace.monitor == "prb-unknown"


class TestCliRemoveRule:
    def test_add_rule_flag(self, tmp_bundle, capsys):
        from repro.cli import main

        directory = tmp_bundle(seed=4, hostnames=False)
        assert main(["run", str(directory), "--remove-rule", "add_rule"]) == 0
        captured = capsys.readouterr()
        assert "<->" in captured.out


class TestUncertainOutput:
    def test_uncertain_surfaces_in_some_seed(self):
        """Across a few paper-scale seeds, the uncertain mechanism
        produces output at least once (seed 23 does at the time of
        writing), and uncertain records are flagged."""
        from repro.eval.experiment import prepare_experiment
        from repro.sim.presets import paper_scenario

        found = False
        for seed in (23, 7, 11):
            experiment = prepare_experiment(paper_scenario(seed=seed))
            result = experiment.run_mapit(MapItConfig(f=0.5))
            if result.uncertain:
                assert all(inference.uncertain for inference in result.uncertain)
                found = True
                break
        assert found
