"""Shared fixtures: a small deterministic scenario and the paper's
worked examples (Fig 2/3 neighborhood of Internet2)."""

from __future__ import annotations

import pytest

from repro.bgp.ip2as import IP2AS
from repro.eval.experiment import Experiment, prepare_experiment
from repro.sim.presets import small_scenario
from repro.sim.scenario import Scenario
from repro.traceroute.parse import parse_text_traces


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """One small synthetic world shared by integration-style tests."""
    return small_scenario(seed=42)


@pytest.fixture(scope="session")
def experiment(scenario) -> Experiment:
    """The prepared experiment over the shared scenario."""
    return prepare_experiment(scenario)


@pytest.fixture()
def fig2_ip2as() -> IP2AS:
    """IP-to-AS mappings for the paper's Fig 2 neighborhood."""
    return IP2AS.from_pairs(
        [
            ("109.105.98.0/24", 2603),   # NORDUnet
            ("198.71.44.0/22", 11537),   # Internet2
            ("199.109.5.0/24", 3754),    # NYSERNet
            ("205.233.255.0/24", 10466), # MAGPI-ish
            ("216.249.136.0/24", 237),   # Merit-ish
            ("192.73.48.0/24", 3807),    # U. Montana
        ]
    )


@pytest.fixture()
def fig2_traces():
    """Traces reproducing the interface neighborhoods of Fig 2/3.

    109.105.98.10 is a NORDUnet-numbered ingress on an Internet2
    router; its forward neighbors are dominated by AS11537, with
    199.109.5.1 (NYSERNet-numbered, on the AS3754 side of another
    Internet2 link) also appearing after it.
    """
    lines = [
        "m1|205.233.255.99|109.105.98.10 198.71.46.180 205.233.255.36",
        "m1|216.249.136.99|109.105.98.10 198.71.46.180 216.249.136.197",
        "m2|205.233.255.99|198.71.45.236 198.71.46.180 205.233.255.36",
        "m1|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.99",
        "m2|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.88",
        "m1|199.109.5.77|109.105.98.10 198.71.45.2",
    ]
    return list(parse_text_traces(lines))
