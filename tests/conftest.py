"""Shared fixtures: a small deterministic scenario, an on-disk bundle
factory, and the paper's worked examples (Fig 2/3 neighborhood of
Internet2)."""

from __future__ import annotations

import shutil

import pytest

from repro.bgp.ip2as import IP2AS
from repro.eval.experiment import Experiment, prepare_experiment
from repro.sim.presets import dense_config, paper_config, small_config, small_scenario
from repro.sim.scenario import Scenario, build_scenario
from repro.traceroute.parse import parse_text_traces

_PRESET_CONFIGS = {"small": small_config, "paper": paper_config, "dense": dense_config}


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """One small synthetic world shared by integration-style tests."""
    return small_scenario(seed=42)


@pytest.fixture(scope="session")
def tmp_bundle(tmp_path_factory):
    """Factory for on-disk dataset bundles: ``tmp_bundle(seed=3)``.

    Builds what ``mapit simulate`` would write (scenario + hostnames +
    manifest) and memoizes it per ``(seed, scale, hostnames)`` for the
    whole session — simulation dominates the cost, so tests needing the
    same dataset share one build.  Tests that *mutate* the dataset must
    pass ``copy=True`` to get a private copy of the cached original.
    """
    built = {}

    def factory(seed=3, scale="small", hostnames=True, copy=False):
        key = (seed, scale, hostnames)
        if key not in built:
            from repro.io import save_scenario

            scn = build_scenario(_PRESET_CONFIGS[scale](seed))
            names = None
            if hostnames:
                from repro.dns.naming import generate_hostnames

                names = generate_hostnames(
                    scn.network, scn.ground_truth, scn.tier1_asns[:2], seed=seed
                )
            root = tmp_path_factory.mktemp(f"bundle-{scale}-{seed}") / "ds"
            built[key] = save_scenario(scn, root, hostnames=names)
        if copy:
            dest = tmp_path_factory.mktemp("bundle-copy") / "ds"
            shutil.copytree(built[key], dest)
            return dest
        return built[key]

    return factory


@pytest.fixture(scope="session")
def experiment(scenario) -> Experiment:
    """The prepared experiment over the shared scenario."""
    return prepare_experiment(scenario)


@pytest.fixture()
def fig2_ip2as() -> IP2AS:
    """IP-to-AS mappings for the paper's Fig 2 neighborhood."""
    return IP2AS.from_pairs(
        [
            ("109.105.98.0/24", 2603),   # NORDUnet
            ("198.71.44.0/22", 11537),   # Internet2
            ("199.109.5.0/24", 3754),    # NYSERNet
            ("205.233.255.0/24", 10466), # MAGPI-ish
            ("216.249.136.0/24", 237),   # Merit-ish
            ("192.73.48.0/24", 3807),    # U. Montana
        ]
    )


@pytest.fixture()
def fig2_traces():
    """Traces reproducing the interface neighborhoods of Fig 2/3.

    109.105.98.10 is a NORDUnet-numbered ingress on an Internet2
    router; its forward neighbors are dominated by AS11537, with
    199.109.5.1 (NYSERNet-numbered, on the AS3754 side of another
    Internet2 link) also appearing after it.
    """
    lines = [
        "m1|205.233.255.99|109.105.98.10 198.71.46.180 205.233.255.36",
        "m1|216.249.136.99|109.105.98.10 198.71.46.180 216.249.136.197",
        "m2|205.233.255.99|198.71.45.236 198.71.46.180 205.233.255.36",
        "m1|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.99",
        "m2|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.88",
        "m1|199.109.5.77|109.105.98.10 198.71.45.2",
    ]
    return list(parse_text_traces(lines))
