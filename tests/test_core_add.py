"""Focused tests for add-step mechanics not covered by the worked
examples: divergent other sides, IXP special-casing, unannounced
addresses, and the per-add-step single-inference rule."""

from repro import MapItConfig, run_mapit
from repro.bgp.ip2as import IP2AS
from repro.ixp.dataset import IXPDataset, IXPRecord
from repro.net.ipv4 import parse_address
from repro.net.prefix import Prefix
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


def run(lines, pairs, ixp=None, f=0.5, **config_kwargs):
    ip2as = IP2AS.from_pairs(pairs, ixp=ixp)
    return run_mapit(
        list(parse_text_traces(lines)),
        ip2as,
        config=MapItConfig(f=f, **config_kwargs),
    )


def on(result, address_text, forward=None):
    return [
        inference
        for inference in result.inferences
        if inference.address == addr(address_text)
        and (forward is None or inference.forward == forward)
    ]


class TestDivergentOtherSides:
    """Both endpoints of one /31 get direct inferences toward
    *different* ASes: the paper assumes the other-side pairing is
    wrong and keeps both, but the cross-updates must be dropped."""

    PAIRS = [
        ("9.0.0.0/16", 100),
        ("9.1.0.0/16", 200),
        ("9.2.0.0/16", 300),
    ]
    # 9.0.0.100/31: .100's N_F dominated by AS200, .101's N_B dominated
    # by AS300 — mutually inconsistent other-side updates.
    LINES = [
        "m1|9.1.9.1|9.0.0.100 9.1.0.1",
        "m1|9.1.9.2|9.0.0.100 9.1.0.5",
        "m2|9.9.9.1|9.2.0.1 9.0.0.101 9.9.0.1",
        "m2|9.9.9.2|9.2.0.5 9.0.0.101 9.9.0.1",
        # make 9.0.0.100/101 recognizably a /31 (reserved /30 sibling
        # appears in the dataset)
        "m3|9.9.9.3|9.0.0.102 9.0.0.103",
    ]

    def test_both_directs_kept_and_counted(self):
        result = run(self.LINES, self.PAIRS)
        forward = on(result, "9.0.0.100", forward=True)
        backward = on(result, "9.0.0.101", forward=False)
        assert len(forward) == 1 and forward[0].remote_as == 200
        assert len(backward) == 1 and backward[0].remote_as == 300

    def test_cross_indirects_detached(self):
        """Neither half's record should claim the other's AS via the
        suspect other-side pairing."""
        result = run(self.LINES, self.PAIRS)
        # indirect records on the two halves would collide with the
        # directs; the directs win and the indirect updates are
        # detached, so only the two direct records surface.
        records = on(result, "9.0.0.100") + on(result, "9.0.0.101")
        assert len(records) == 2
        assert all(record.kind == "direct" for record in records)


class TestIXPInterfaces:
    """Known IXP interfaces get no other-side updates: IXP LANs are
    multipoint, so the /30-/31 arithmetic does not apply."""

    PAIRS = [("9.0.0.0/16", 100), ("9.1.0.0/16", 200)]

    def ixp(self):
        return IXPDataset([IXPRecord(Prefix.parse("80.81.0.0/21"), None, "ix")])

    LINES = [
        "m1|9.1.9.1|80.81.0.10 9.1.0.1",
        "m1|9.1.9.2|80.81.0.10 9.1.0.5",
    ]

    def test_inference_made_but_no_other_side(self):
        result = run(self.LINES, self.PAIRS, ixp=self.ixp())
        (inference,) = on(result, "80.81.0.10", forward=True)
        assert inference.remote_as == 200
        # No indirect inference on the /30-/31 "partner" of an IXP LAN
        # address.
        assert on(result, "80.81.0.9") == []
        assert on(result, "80.81.0.11") == []


class TestUnannouncedAddresses:
    PAIRS = [("9.0.0.0/16", 100), ("9.1.0.0/16", 200)]

    def test_unknown_dominated_set_yields_nothing(self):
        lines = [
            "m1|9.9.9.1|9.0.0.1 8.0.0.1",
            "m1|9.9.9.2|9.0.0.1 8.0.1.1",
            "m1|9.9.9.3|9.0.0.1 8.0.2.1",
        ]
        result = run(lines, self.PAIRS)
        assert on(result, "9.0.0.1") == []

    def test_inference_on_unannounced_interface(self):
        """The interface itself being unannounced does not block the
        inference — the paper deliberately updates unannounced
        addresses because that enables further inferences."""
        lines = [
            "m1|9.1.9.1|8.0.0.1 9.1.0.1",
            "m1|9.1.9.2|8.0.0.1 9.1.0.5",
        ]
        result = run(lines, self.PAIRS)
        (inference,) = on(result, "8.0.0.1", forward=True)
        assert inference.remote_as == 200
        assert inference.local_as == 0  # UNKNOWN


class TestRemoveRuleVariant:
    PAIRS = [
        ("9.0.0.0/16", 100),
        ("9.1.0.0/16", 200),
        ("9.2.0.0/16", 300),
    ]
    # 9.0.0.50's forward set {200, 200, 300, 100-ish}: after updates the
    # AS200 halves flip to 300, leaving AS200 with 0 of 4 — removed
    # under either rule.  (See TestRemoveStep in test_core_mapit for
    # the majority-rule case.)
    LINES = [
        "m1|9.9.0.1|9.0.0.50 9.1.0.1",
        "m2|9.9.0.2|9.0.0.50 9.1.0.5",
        "m3|9.9.0.3|9.0.0.50 9.0.0.60",
        "m4|9.9.0.4|9.2.0.1 9.1.0.1",
        "m4|9.9.0.5|9.2.0.5 9.1.0.1",
        "m5|9.9.0.6|9.2.0.9 9.1.0.5",
        "m5|9.9.0.7|9.2.0.13 9.1.0.5",
    ]

    def test_add_rule_also_revises(self):
        result = run(self.LINES, self.PAIRS, remove_rule="add_rule")
        (inference,) = on(result, "9.0.0.50", forward=True)
        assert inference.remote_as == 300


class TestSingleInferencePerStep:
    def test_dual_resolution_not_thrashed_within_step(self):
        """A half whose inference was discarded by a contradiction fix
        is not re-inferred within the same add step (section 4.4.2),
        and the terminal state is stable across the outer cycle."""
        pairs = [
            ("212.113.9.0/24", 3356),
            ("62.115.0.0/16", 1299),
            ("91.228.0.0/16", 51159),
        ]
        lines = [
            "m1|91.228.0.99|62.115.0.1 212.113.9.210 91.228.0.1",
            "m2|91.228.0.98|62.115.0.5 212.113.9.210 91.228.0.5",
        ]
        result = run(lines, pairs)
        assert result.converged
        backward = on(result, "212.113.9.210", forward=False)
        assert backward == []


class TestInverseFixAllPredecessors:
    """Section 4.4.4 with *two* predecessors carrying the inverse
    forward inference: the fix must consider every matching
    predecessor, not stop at the first in address order."""

    PAIRS = [
        ("198.71.44.0/22", 11537),
        ("192.73.48.0/24", 3807),
    ]
    # Both 198.71.46.197 and 198.71.46.217 carry the forward inference
    # AS11537 -> AS3807; 192.73.48.120 carries the inverse backward
    # inference; 192.73.48.121 (its other side) corroborates, so the
    # whole conflicting family must be kept but flagged uncertain.
    LINES = [
        "m1|192.73.48.99|198.71.45.10 198.71.46.197 192.73.48.120 192.73.48.99",
        "m2|192.73.48.98|198.71.45.14 198.71.46.197 192.73.48.124 192.73.48.98",
        "m3|192.73.48.97|198.71.45.18 198.71.46.217 192.73.48.120 192.73.48.97",
        "m3|192.73.48.96|198.71.45.22 198.71.46.217 192.73.48.124 192.73.48.96",
        "m4|198.71.45.99|192.73.48.121 198.71.46.198 198.71.45.99",
        "m4|198.71.45.98|192.73.48.121 198.71.46.218 198.71.45.98",
    ]

    def test_every_matching_forward_flagged_uncertain(self):
        result = run(self.LINES, self.PAIRS)
        uncertain_addresses = {i.address for i in result.uncertain}
        assert addr("192.73.48.120") in uncertain_addresses
        assert addr("198.71.46.197") in uncertain_addresses
        # The regression: the second predecessor used to be skipped,
        # leaving its forward inference confidently wrong.
        assert addr("198.71.46.217") in uncertain_addresses
        confident = {i.address for i in result.inferences}
        assert addr("198.71.46.217") not in confident

    def test_outcome_matches_oracle(self):
        """The paper-literal oracle agrees on the whole record set."""
        from repro.graph.neighbors import build_interface_graph
        from repro.org.as2org import AS2Org
        from repro.oracle import oracle_run
        from repro.rel.relationships import RelationshipDataset
        from repro.traceroute.sanitize import sanitize_traces

        traces = list(parse_text_traces(self.LINES))
        ip2as = IP2AS.from_pairs(self.PAIRS)
        core = run_mapit(traces, ip2as, config=MapItConfig(f=0.5))
        graph = build_interface_graph(sanitize_traces(traces).traces)
        oracle = oracle_run(graph, ip2as, AS2Org(), RelationshipDataset(), None)

        def core_map(result):
            return {
                (i.address, i.forward): (i.local_as, i.remote_as, i.kind, i.uncertain)
                for i in result.inferences + result.uncertain
            }

        def oracle_map(result):
            return {
                record.half: (
                    record.local_as,
                    record.remote_as,
                    record.kind,
                    record.uncertain,
                )
                for record in result.confident + result.uncertain
            }

        assert core_map(core) == oracle_map(oracle)
