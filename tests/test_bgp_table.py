"""Tests for BGP announcement records and collector dumps."""

import pytest

from repro.bgp.table import Announcement, CollectorDump
from repro.net.prefix import Prefix


class TestAnnouncement:
    def test_origin_is_last_hop(self):
        announcement = Announcement(Prefix.parse("10.0.0.0/8"), (100, 200, 300))
        assert announcement.origin == 300

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Announcement(Prefix.parse("10.0.0.0/8"), ())

    def test_line_roundtrip(self):
        announcement = Announcement(Prefix.parse("192.0.2.0/24"), (64500, 64501))
        assert Announcement.from_line(announcement.to_line()) == announcement

    def test_from_line_malformed(self):
        with pytest.raises(ValueError):
            Announcement.from_line("192.0.2.0/24")


class TestCollectorDump:
    def test_add_route(self):
        dump = CollectorDump(name="rv", location="ams")
        dump.add_route(Prefix.parse("10.0.0.0/8"), [1, 2, 3])
        assert len(dump) == 1
        assert next(iter(dump)).origin == 3

    def test_prefixes(self):
        dump = CollectorDump(name="rv")
        dump.add_route(Prefix.parse("10.0.0.0/8"), [1])
        dump.add_route(Prefix.parse("10.0.0.0/8"), [2, 1])
        dump.add_route(Prefix.parse("11.0.0.0/8"), [2])
        assert dump.prefixes() == {Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")}

    def test_dump_lines_roundtrip(self):
        dump = CollectorDump(name="rrc00", location="Amsterdam NL")
        dump.add_route(Prefix.parse("10.0.0.0/8"), [10, 20])
        dump.add_route(Prefix.parse("192.0.2.0/24"), [10, 30, 40])
        parsed = CollectorDump.from_lines(dump.dump_lines())
        assert parsed.name == "rrc00"
        assert parsed.location == "Amsterdam NL"
        assert parsed.announcements == dump.announcements

    def test_from_lines_skips_blanks(self):
        parsed = CollectorDump.from_lines(["", "#collector x", "10.0.0.0/8|5"])
        assert parsed.name == "x"
        assert len(parsed) == 1
