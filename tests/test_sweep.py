"""Sweep orchestration: grids, jobs resolution, kill+resume, stress tier.

The acceptance bars under test:

* a sweep killed mid-cell and resumed with ``--resume`` produces
  byte-identical per-cell result files to an uninterrupted run;
* a cache-warm second sweep re-parses nothing;
* ``--jobs 0`` means all cores and negative jobs is a usage error;
* the newline-aligned shard splitter never emits degenerate shards;
* a stress-tier world streams shard-by-shard — the fold's resident
  footprint stays below holding the traces outright.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import MapItConfig
from repro.obs.metrics import Metrics
from repro.obs.observer import Observability
from repro.perf.ingest import _shard_spans, fold_graph_from_blocks
from repro.perf.pool import default_jobs, resolve_jobs, shard_ranges
from repro.sim.presets import stress_smoke_config
from repro.sim.stress import StressConfig, stress_blocks
from repro.sweep import (
    SCENARIO_PRESETS,
    STRESS_PRESETS,
    SweepGrid,
    SweepMismatchError,
    SweepPlan,
    run_sweep,
    sweep_identity,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return env


class TestJobsResolution:
    def test_explicit_positive_passes_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_none_uses_default(self, monkeypatch):
        monkeypatch.delenv("MAPIT_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv("MAPIT_JOBS", "0")
        assert default_jobs() == (os.cpu_count() or 1)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-3)

    def test_cli_negative_jobs_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", str(tmp_path), "--jobs", "-2"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err


class TestShardSpans:
    def test_zero_count_has_no_shards(self):
        assert shard_ranges(0, 4) == []
        assert shard_ranges(-1, 4) == []

    def test_small_file_many_jobs_collapses_empty_spans(self):
        text = "a 1.2.3.4\nb 5.6.7.8\n"
        spans, _ = _shard_spans(text, 16)
        # Exact, contiguous coverage with no degenerate shards.
        assert spans[0][0] == 0 and spans[-1][1] == len(text)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start
        for start, end in spans:
            assert text[start:end].strip(), (start, end)

    def test_whitespace_only_text_is_single_span(self):
        spans, _ = _shard_spans("\n\n\n", 4)
        assert spans == [(0, 3)]

    def test_large_text_still_splits(self):
        text = "".join(f"line {index} 1.2.3.{index % 250}\n" for index in range(2000))
        spans, _ = _shard_spans(text, 4)
        assert len(spans) > 1
        assert spans[0][0] == 0 and spans[-1][1] == len(text)


class TestSweepGrid:
    def test_axes_are_canonicalized(self):
        a = SweepGrid.build(["small", "tiny"], [2, 0, 2], [0.5, 0.1])
        b = SweepGrid.build(["tiny", "small", "tiny"], [0, 2], [0.1, 0.5, 0.5])
        assert a == b
        config = MapItConfig(f=0.0)
        assert sweep_identity(a, config) == sweep_identity(b, config)

    def test_cells_in_canonical_order(self):
        grid = SweepGrid.build(["tiny"], [1, 0], [0.5, 0.1])
        assert [cell.cell_id for cell in grid.cells()] == [
            "tiny-s0000-f0.1",
            "tiny-s0000-f0.5",
            "tiny-s0001-f0.1",
            "tiny-s0001-f0.5",
        ]

    def test_identity_sensitive_to_every_axis_and_config(self):
        config = MapItConfig(f=0.0)
        base = sweep_identity(SweepGrid.build(["tiny"], [0], [0.5]), config)
        assert base != sweep_identity(SweepGrid.build(["small"], [0], [0.5]), config)
        assert base != sweep_identity(SweepGrid.build(["tiny"], [1], [0.5]), config)
        assert base != sweep_identity(SweepGrid.build(["tiny"], [0], [0.4]), config)
        assert base != sweep_identity(
            SweepGrid.build(["tiny"], [0], [0.5], "experiment"), config
        )
        assert base != sweep_identity(
            SweepGrid.build(["tiny"], [0], [0.5]),
            MapItConfig(f=0.0, remove_rule="add_rule"),
        )

    def test_unknown_preset_and_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            SweepGrid.build(["nope"], [0], [0.5])
        with pytest.raises(ValueError, match="unknown sweep kind"):
            SweepGrid.build(["tiny"], [0], [0.5], "bogus")

    def test_stress_presets_are_dataset_only(self):
        with pytest.raises(ValueError, match="dataset"):
            SweepGrid.build(["stress-smoke"], [0], [0.5], "experiment")

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepGrid.build(["tiny"], [], [0.5])

    def test_colliding_f_names_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            SweepGrid.build(["tiny"], [0], [0.1, 0.1000000001])

    def test_cli_preset_list_matches_registries(self):
        from repro.cli import _SWEEP_PRESETS

        assert sorted(_SWEEP_PRESETS) == sorted(
            list(SCENARIO_PRESETS) + list(STRESS_PRESETS)
        )


class TestSweepInProcess:
    @pytest.fixture(scope="class")
    def swept(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sweep")
        grid = SweepGrid.build(["tiny"], [0], [0.3, 0.5])
        plan = SweepPlan(
            grid=grid,
            workdir=root / "work",
            out_dir=root / "out",
            journal_dir=root / "journal",
            cache_dir=root / "cache",
            jobs=1,
        )
        outcome = run_sweep(plan)
        return root, grid, plan, outcome

    def test_all_cells_written(self, swept):
        root, grid, plan, outcome = swept
        assert outcome.completed == 2 and outcome.skipped == 0
        for cell in grid.cells():
            document = json.loads(
                (plan.out_dir / "cells" / f"{cell.cell_id}.json").read_text()
            )
            assert document["cell"] == cell.cell_id
            assert document["f"] == cell.f
            assert document["scores"]
        aggregate = json.loads((plan.out_dir / "sweep.json").read_text())
        assert [c["cell"] for c in aggregate["cells"]] == [
            cell.cell_id for cell in grid.cells()
        ]

    def test_resume_of_finished_sweep_skips_everything(self, swept):
        root, grid, plan, outcome = swept
        before = {
            path.name: path.read_bytes()
            for path in (plan.out_dir / "cells").glob("*.json")
        }
        from dataclasses import replace

        again = run_sweep(replace(plan, resume=outcome.sweep_id))
        assert again.completed == 0 and again.skipped == 2
        after = {
            path.name: path.read_bytes()
            for path in (plan.out_dir / "cells").glob("*.json")
        }
        assert before == after

    def test_resume_sweeps_stale_atomic_write_temps(self, swept):
        """A SIGKILL mid-rename strands `<cell>.json.tmp.<pid>`; resume
        must remove it so the output directory byte-matches an
        uninterrupted run (the CI job `diff -r`s the two)."""
        root, grid, plan, outcome = swept
        from dataclasses import replace

        stale = plan.out_dir / "cells" / "tiny-s0000-f0.5.json.tmp.12345"
        stale.write_bytes(b"{torn")
        run_sweep(replace(plan, resume=outcome.sweep_id))
        assert not stale.exists()
        assert sorted(
            path.name for path in (plan.out_dir / "cells").iterdir()
        ) == [f"{cell.cell_id}.json" for cell in grid.cells()]

    def test_resume_with_changed_grid_names_the_mismatch(self, swept):
        root, grid, plan, outcome = swept
        from dataclasses import replace

        bad = SweepPlan(
            grid=SweepGrid.build(["tiny"], [0], [0.3, 0.9]),
            workdir=plan.workdir,
            out_dir=plan.out_dir,
            journal_dir=plan.journal_dir,
            jobs=1,
            resume=outcome.sweep_id,
        )
        with pytest.raises(SweepMismatchError, match="f_values"):
            run_sweep(bad)
        bad_config = replace(plan, remove_rule="add_rule", resume=outcome.sweep_id)
        with pytest.raises(SweepMismatchError, match="config"):
            run_sweep(bad_config)

    def test_resume_with_unknown_id_fails_loudly(self, swept):
        root, grid, plan, outcome = swept
        from dataclasses import replace

        with pytest.raises(SweepMismatchError, match="unknown sweep id"):
            run_sweep(replace(plan, resume="feedfacedeadbeef"))

    def test_cache_warm_second_sweep_reparses_nothing(self, swept):
        root, grid, plan, outcome = swept
        metrics = Metrics()
        obs = Observability(metrics=metrics)
        second = SweepPlan(
            grid=grid,
            workdir=plan.workdir,
            out_dir=root / "out2",
            journal_dir=root / "journal2",
            cache_dir=plan.cache_dir,
            jobs=1,
        )
        outcome2 = run_sweep(second, obs=obs)
        assert outcome2.worlds_reused == 1 and outcome2.worlds_built == 0
        assert metrics.counter("sweep.cache.misses") == 0
        assert metrics.counter("sweep.cache.hits") == 2
        # And the warm results are bytes-for-bytes the cold ones.
        for cell in grid.cells():
            name = f"{cell.cell_id}.json"
            assert (second.out_dir / "cells" / name).read_bytes() == (
                plan.out_dir / "cells" / name
            ).read_bytes()

    def test_experiment_kind_scores_per_f(self, tmp_path):
        grid = SweepGrid.build(["tiny"], [0], [0.1, 1.0], "experiment")
        plan = SweepPlan(
            grid=grid,
            workdir=tmp_path / "work",
            out_dir=tmp_path / "out",
            journal_dir=tmp_path / "journal",
            jobs=1,
        )
        outcome = run_sweep(plan)
        assert outcome.completed == 2
        documents = [
            json.loads(
                (plan.out_dir / "cells" / f"{cell.cell_id}.json").read_text()
            )
            for cell in grid.cells()
        ]
        for document in documents:
            assert document["kind"] == "experiment"
            assert document["scores"]
        # The paper's f=1.0 collapse: TP at high f never beats low f.
        low, high = documents
        for label, score in high["scores"].items():
            assert score["tp"] <= low["scores"][label]["tp"], label


class TestKillResume:
    GRID_FLAGS = [
        "--preset", "tiny", "--seed", "0", "--seed", "1",
        "--f", "0.2", "--f", "0.35", "--f", "0.5",
        "--f", "0.65", "--f", "0.8", "--f", "0.95",
        "--jobs", "2",
    ]

    def _sweep(self, workdir, extra=(), check=True):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep", str(workdir)]
            + self.GRID_FLAGS
            + list(extra),
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            check=check,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        golden_dir = tmp_path / "golden"
        self._sweep(golden_dir)
        golden = {
            path.name: path.read_bytes()
            for path in (golden_dir / "results" / "cells").glob("*.json")
        }
        assert len(golden) == 12

        interrupted = tmp_path / "interrupted"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "sweep", str(interrupted)]
            + self.GRID_FLAGS,
            env=_subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal_dir = interrupted / "journal"
        deadline = time.time() + 120
        killed = False
        while time.time() < deadline and proc.poll() is None:
            journals = list(journal_dir.glob("*.jsonl"))
            if journals and '"unit":"cell"' in journals[0].read_text():
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.02)
        proc.wait()
        if not killed:  # pragma: no cover - the box outran the poll
            pytest.skip("sweep finished before the kill landed")

        sweep_id = list(journal_dir.glob("*.jsonl"))[0].name.split(".")[0]
        partial = set(
            path.name
            for path in (interrupted / "results" / "cells").glob("*.json")
        )
        assert partial != set(golden), "kill landed after completion"
        resumed = self._sweep(interrupted, extra=["--resume", sweep_id])
        assert "resumed" in resumed.stderr
        results = {
            path.name: path.read_bytes()
            for path in (interrupted / "results" / "cells").glob("*.json")
        }
        assert results == golden
        assert (golden_dir / "results" / "sweep.json").read_bytes() == (
            interrupted / "results" / "sweep.json"
        ).read_bytes()


class TestStressTier:
    def test_streamed_fold_is_deterministic_and_chunked(self):
        config = StressConfig(
            seed=5, as_count=600, monitor_count=4, trace_count=4000, shard_size=256
        )
        graph, stats = fold_graph_from_blocks(stress_blocks(config))
        graph2, stats2 = fold_graph_from_blocks(stress_blocks(config))
        assert stats == stats2
        assert stats.traces == 4000
        assert stats.shards == 16
        # Streaming proof: no single resident block approaches the
        # whole stream.
        assert stats.peak_block_bytes * 4 < stats.stream_bytes
        assert sorted(graph.forward) == sorted(graph2.forward)

    def test_stress_sweep_cell_reports_stream_accounting(self, tmp_path):
        grid = SweepGrid.build(["stress-smoke"], [0], [0.5])
        metrics = Metrics()
        plan = SweepPlan(
            grid=grid,
            workdir=tmp_path / "work",
            out_dir=tmp_path / "out",
            journal_dir=tmp_path / "journal",
            jobs=1,
            shard_size=1024,
        )
        outcome = run_sweep(plan, obs=Observability(metrics=metrics))
        assert outcome.completed == 1
        document = json.loads(
            (plan.out_dir / "cells" / "stress-smoke-s0000-f0.5.json").read_text()
        )
        stream = document["stream"]
        assert stream["traces"] == stress_smoke_config(0).trace_count
        assert stream["shards"] >= 8
        assert stream["peak_block_bytes"] * 4 < stream["stream_bytes"]
        assert document["world"]["ases"] >= 2000
        assert metrics.counter("sweep.stress.shards") == stream["shards"]
        assert metrics.gauges["sweep.stress.peak_block_bytes"] == stream[
            "peak_block_bytes"
        ]
        assert metrics.gauges["sweep.rss.peak_kb"] >= metrics.gauges[
            "sweep.rss.start_kb"
        ]

    def test_streamed_fold_beats_full_residency(self):
        """The tentpole memory claim, measured in fresh interpreters.

        Two subprocesses generate the same stress world; one folds the
        generated blocks streaming, the other materializes every Trace
        object first.  The streamed fold's peak RSS must stay below the
        full-resident build's.  Absolute ``ru_maxrss`` peaks are
        compared (not growth deltas): interpreter-startup baselines
        shift with allocator and hugepage behavior, but both processes
        pay the same baseline.

        Each measurement is double-spawned: a fork/vfork child inherits
        the parent's resident size as its ``ru_maxrss`` floor (the
        high-water mark survives exec), so a child launched directly
        from a large pytest process would report the *parent's* RSS for
        both variants.  A lean intermediate interpreter resets the
        floor before the real measurement forks.
        """
        world = (
            "from repro.sim.stress import StressConfig\n"
            "config = StressConfig(seed=0, as_count=2000, monitor_count=4,"
            " trace_count=30000, shard_size=1024)\n"
        )
        streamed = (
            "import resource\n"
            "from repro.perf.ingest import fold_graph_from_blocks\n"
            "from repro.sim.stress import stress_blocks\n"
            + world
            + "fold_graph_from_blocks(stress_blocks(config))\n"
            "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)\n"
        )
        resident = (
            "import resource\n"
            "from repro.sim.stress import stress_traces\n"
            + world
            + "traces = [t for shard in stress_traces(config) for t in shard]\n"
            "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)\n"
        )

        def peak_kb(code):
            trampoline = (
                "import subprocess, sys\n"
                "result = subprocess.run(\n"
                "    [sys.executable, '-c', sys.argv[1]],\n"
                "    capture_output=True, text=True, check=True,\n"
                ")\n"
                "print(result.stdout.strip())\n"
            )
            result = subprocess.run(
                [sys.executable, "-c", trampoline, code],
                env=_subprocess_env(),
                capture_output=True,
                text=True,
                check=True,
            )
            return int(result.stdout.strip())

        assert peak_kb(streamed) < peak_kb(resident)
