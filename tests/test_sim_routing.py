"""Tests for valley-free AS routing and the per-AS IGP."""

from repro.sim.asgraph import ASGraph, ASGraphConfig, ASNode, Tier, generate_as_graph
from repro.sim.network import NetworkConfig, build_network
from repro.sim.routing import ASRoutes, CUSTOMER, IGP, PEER, PROVIDER


def triangle_graph():
    """p1 -- p2 tier-1 peers; c customer of p1; d customer of c."""
    graph = ASGraph()
    for asn, tier in ((1, Tier.TIER1), (2, Tier.TIER1), (3, Tier.TIER2), (4, Tier.STUB)):
        graph.add_node(ASNode(asn, tier, f"as{asn}"))
    graph.add_peering(1, 2)
    graph.add_transit(1, 3)
    graph.add_transit(3, 4)
    return graph


class TestASRoutes:
    def test_self_route(self):
        routes = ASRoutes(triangle_graph())
        assert routes.next_hop(4, 4) == 4

    def test_customer_route_preferred(self):
        routes = ASRoutes(triangle_graph())
        # AS1 reaches stub 4 down the customer chain via 3.
        table = routes.table_for(4)
        assert table[1][0] == CUSTOMER
        assert table[1][2] == 3

    def test_provider_route(self):
        routes = ASRoutes(triangle_graph())
        table = routes.table_for(2)
        assert table[4][0] == PROVIDER
        assert routes.as_path(4, 2) == [4, 3, 1, 2]

    def test_peer_route(self):
        routes = ASRoutes(triangle_graph())
        # AS2 reaches 4 through its peer 1 (customer cone of 1).
        table = routes.table_for(4)
        assert table[2][0] == PEER
        assert table[2][2] == 1

    def test_valley_freeness(self):
        """No AS path goes down (to a customer) and then up again."""
        graph = generate_as_graph(ASGraphConfig(seed=2))
        routes = ASRoutes(graph)
        providers = {asn: set(graph.providers(asn)) for asn in graph.nodes}
        asns = sorted(graph.nodes)
        for dst in asns[:25]:
            for src in asns[:25]:
                path = routes.as_path(src, dst)
                if path is None or len(path) < 3:
                    continue
                went_down = False
                for previous, current in zip(path, path[1:]):
                    going_down = previous in providers[current]
                    if went_down and not going_down:
                        raise AssertionError(f"valley in {path}")
                    went_down = went_down or going_down

    def test_all_pairs_reachable_in_connected_hierarchy(self):
        graph = generate_as_graph(ASGraphConfig(seed=2))
        routes = ASRoutes(graph)
        asns = sorted(graph.nodes)
        for dst in asns[:10]:
            for src in asns:
                assert routes.as_path(src, dst) is not None

    def test_unknown_as(self):
        routes = ASRoutes(triangle_graph())
        assert not routes.knows(999)
        assert routes.next_hop(1, 999) is None
        assert routes.as_path(999, 1) is None

    def test_alternate_next_hop_differs_from_best(self):
        graph = triangle_graph()
        graph.add_transit(2, 3)  # 3 is now multihomed to 1 and 2
        routes = ASRoutes(graph)
        best = routes.next_hop(3, 2)
        alternate = routes.alternate_next_hop(3, 2)
        assert alternate is not None
        assert alternate != best

    def test_alternate_is_valley_free(self):
        """A peer without a customer route is never an alternate."""
        graph = triangle_graph()
        routes = ASRoutes(graph)
        # AS2's only route to 4 is via peer 1; there is no alternate
        # (no second valley-free option).
        assert routes.alternate_next_hop(2, 4) is None


class TestIGP:
    def network(self):
        graph = generate_as_graph(
            ASGraphConfig(tier1_count=2, tier2_count=3, regional_count=3,
                          stub_count=5, seed=4)
        )
        return build_network(graph, NetworkConfig(seed=4))

    def test_distance_zero_to_self(self):
        network = self.network()
        igp = IGP(network)
        router = next(iter(network.routers))
        assert igp.distance(router, router) == 0

    def test_distances_symmetric(self):
        network = self.network()
        igp = IGP(network)
        for routers in network.routers_by_as.values():
            if len(routers) < 2:
                continue
            a, b = routers[0], routers[1]
            assert igp.distance(a, b) == igp.distance(b, a)

    def test_next_hops_decrease_distance(self):
        network = self.network()
        igp = IGP(network)
        for routers in network.routers_by_as.values():
            if len(routers) < 3:
                continue
            src, dst = routers[0], routers[-1]
            for _, neighbor in igp.next_hops(src, dst):
                assert igp.distance(neighbor, dst) == igp.distance(src, dst) - 1

    def test_cross_as_distance_is_none(self):
        network = self.network()
        igp = IGP(network)
        as_list = sorted(network.routers_by_as)
        a = network.routers_by_as[as_list[0]][0]
        b = network.routers_by_as[as_list[1]][0]
        assert igp.distance(a, b) is None


class TestValleyFreeProperty:
    """Hypothesis-driven: valley-freeness holds on random hierarchies."""

    def test_random_graphs_are_valley_free(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=10, deadline=None)
        @given(seed=st.integers(min_value=0, max_value=10_000))
        def check(seed):
            graph = generate_as_graph(
                ASGraphConfig(
                    tier1_count=2, tier2_count=4, regional_count=4,
                    stub_count=8, seed=seed,
                )
            )
            routes = ASRoutes(graph)
            providers = {asn: set(graph.providers(asn)) for asn in graph.nodes}
            asns = sorted(graph.nodes)
            for dst in asns[:8]:
                for src in asns[:12]:
                    path = routes.as_path(src, dst)
                    if path is None or len(path) < 3:
                        continue
                    went_down = False
                    for previous, current in zip(path, path[1:]):
                        going_down = previous in providers[current]
                        assert not (went_down and not going_down), path
                        went_down = went_down or going_down

        check()
