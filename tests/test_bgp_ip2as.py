"""Tests for the composite IP2AS mapper and the Cymru fallback."""

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS, IP2ASBuilder, IXP_AS, PRIVATE_AS, UNKNOWN_AS
from repro.bgp.origins import OriginTable
from repro.ixp.dataset import IXPDataset, IXPRecord
from repro.net.ipv4 import parse_address
from repro.net.prefix import Prefix


def addr(text: str) -> int:
    return parse_address(text)


class TestCymruTable:
    def test_lookup(self):
        table = CymruTable()
        table.add(Prefix.parse("10.0.0.0/8"), 64500)
        assert table.lookup(addr("10.1.1.1")) == 64500
        assert table.lookup(addr("11.1.1.1")) is None

    def test_roundtrip(self):
        table = CymruTable()
        table.add(Prefix.parse("10.0.0.0/8"), 1)
        table.add(Prefix.parse("192.0.2.0/24"), 2)
        parsed = CymruTable.from_lines(table.dump_lines())
        assert parsed.lookup(addr("10.0.0.1")) == 1
        assert parsed.lookup(addr("192.0.2.1")) == 2
        assert len(parsed) == 2


class TestFromPairs:
    def test_longest_match(self):
        ip2as = IP2AS.from_pairs([("20.0.0.0/8", 1), ("20.5.0.0/16", 2)])
        assert ip2as.asn(addr("20.5.0.1")) == 2
        assert ip2as.asn(addr("20.6.0.1")) == 1

    def test_unknown(self):
        ip2as = IP2AS.from_pairs([("10.0.0.0/8", 1)])
        assert ip2as.asn(addr("11.0.0.1")) == UNKNOWN_AS
        assert not ip2as.is_mapped(addr("11.0.0.1"))

    def test_private(self):
        ip2as = IP2AS.from_pairs([("10.0.0.0/8", 1)])
        # RFC 1918 space is special-purpose even when a pair covers it.
        assert ip2as.asn(addr("10.0.0.1")) == PRIVATE_AS
        assert ip2as.is_private(addr("10.0.0.1"))
        assert ip2as.asn(addr("192.168.1.1")) == PRIVATE_AS


class TestIXPLayer:
    def test_ixp_without_asn(self):
        ixp = IXPDataset([IXPRecord(Prefix.parse("80.81.192.0/24"), None, "decix")])
        ip2as = IP2AS.from_pairs([("80.0.0.0/8", 5)], ixp=ixp)
        assert ip2as.asn(addr("80.81.192.10")) == IXP_AS
        assert ip2as.is_ixp(addr("80.81.192.10"))
        assert ip2as.asn(addr("80.82.0.1")) == 5

    def test_ixp_with_asn(self):
        ixp = IXPDataset([IXPRecord(Prefix.parse("80.81.192.0/24"), 6695, "decix")])
        ip2as = IP2AS.from_pairs([], ixp=ixp)
        assert ip2as.asn(addr("80.81.192.10")) == 6695


class TestBuilder:
    def _origins(self):
        table = OriginTable()
        table.record(Prefix.parse("11.0.0.0/8"), 100)
        table.record(Prefix.parse("20.0.0.0/8"), 200)
        return table

    def test_bgp_layer(self):
        ip2as = IP2ASBuilder().add_bgp(self._origins()).build()
        assert ip2as.asn(addr("20.1.1.1")) == 200
        assert ip2as.source(addr("20.1.1.1")) == "bgp"

    def test_cymru_only_fills_gaps(self):
        cymru = CymruTable()
        cymru.add(Prefix.parse("11.0.0.0/8"), 999)   # conflicts with BGP
        cymru.add(Prefix.parse("30.0.0.0/8"), 300)   # new
        ip2as = IP2ASBuilder().add_bgp(self._origins()).add_cymru(cymru).build()
        assert ip2as.asn(addr("11.1.1.1")) == 100  # BGP wins
        assert ip2as.asn(addr("30.1.1.1")) == 300  # Cymru fills
        assert ip2as.source(addr("30.1.1.1")) == "cymru"

    def test_coverage(self):
        ip2as = IP2ASBuilder().add_bgp(self._origins()).build()
        addresses = [addr("11.0.0.1"), addr("20.0.0.1"), addr("30.0.0.1")]
        assert abs(ip2as.coverage(addresses) - 2 / 3) < 1e-9

    def test_source_unknown(self):
        ip2as = IP2ASBuilder().build()
        assert ip2as.source(addr("8.8.8.8")) == "unknown"
