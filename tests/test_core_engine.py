"""Tests for neighbor-set counting and plurality (Alg 2 lines 2-3)."""

from repro.bgp.ip2as import IP2AS
from repro.core.engine import Engine
from repro.graph.halves import BACKWARD, FORWARD
from repro.graph.neighbors import build_interface_graph
from repro.net.ipv4 import parse_address
from repro.org.as2org import AS2Org
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


def make_engine(lines, pairs, org=None, config=None):
    graph = build_interface_graph(parse_text_traces(lines))
    ip2as = IP2AS.from_pairs(pairs)
    return Engine(graph, ip2as, org=org, config=config)


BASE_PAIRS = [
    ("9.0.0.0/16", 100),
    ("9.1.0.0/16", 200),
    ("9.2.0.0/16", 300),
]


class TestPlurality:
    def test_strict_plurality(self):
        engine = make_engine(
            [
                "m|9.9.9.1|9.0.0.1 9.1.0.1",
                "m|9.9.9.2|9.0.0.1 9.1.0.5",
                "m|9.9.9.3|9.0.0.1 9.2.0.1",
            ],
            BASE_PAIRS,
        )
        engine.state.refresh_visible()
        plurality = engine.plurality((addr("9.0.0.1"), FORWARD))
        assert plurality is not None
        assert plurality.canonical_as == 200
        assert plurality.member_as == 200
        assert plurality.count == 2
        assert plurality.total == 3

    def test_tie_means_no_plurality(self):
        """'appears more than all other ASes' is strict."""
        engine = make_engine(
            [
                "m|9.9.9.1|9.0.0.1 9.1.0.1",
                "m|9.9.9.2|9.0.0.1 9.2.0.1",
            ],
            BASE_PAIRS,
        )
        engine.state.refresh_visible()
        assert engine.plurality((addr("9.0.0.1"), FORWARD)) is None

    def test_empty_set(self):
        engine = make_engine(["m|9.9.9.1|9.0.0.1 9.1.0.1"], BASE_PAIRS)
        engine.state.refresh_visible()
        assert engine.plurality((addr("9.0.0.1"), BACKWARD)) is None

    def test_unknown_addresses_compete(self):
        """A neighbor set made primarily of unannounced addresses must
        not yield an inference (section 5.4)."""
        engine = make_engine(
            [
                "m|9.9.9.1|9.0.0.1 8.0.0.1",
                "m|9.9.9.2|9.0.0.1 8.0.1.1",
                "m|9.9.9.3|9.0.0.1 9.1.0.1",
            ],
            BASE_PAIRS,  # 8/8 unannounced
        )
        engine.state.refresh_visible()
        assert engine.plurality((addr("9.0.0.1"), FORWARD)) is None

    def test_siblings_counted_together(self):
        org = AS2Org.from_pairs([(200, 300)])
        engine = make_engine(
            [
                "m|9.9.9.1|9.0.0.1 9.1.0.1",
                "m|9.9.9.2|9.0.0.1 9.2.0.1",
                "m|9.9.9.3|9.0.0.1 9.2.0.5",
            ],
            BASE_PAIRS,
            org=org,
        )
        engine.state.refresh_visible()
        plurality = engine.plurality((addr("9.0.0.1"), FORWARD))
        assert plurality is not None
        assert plurality.canonical_as == org.canonical(200)
        assert plurality.count == 3
        # The recorded member is the sibling appearing most often.
        assert plurality.member_as == 300

    def test_f_threshold(self):
        from repro.core.engine import Plurality

        plurality = Plurality(canonical_as=1, member_as=1, count=2, total=4)
        assert plurality.satisfies_f(0.5)
        assert not plurality.satisfies_f(0.6)
        assert plurality.satisfies_f(0.0)

    def test_majority(self):
        from repro.core.engine import Plurality

        assert Plurality(1, 1, 3, 5).is_majority()
        assert not Plurality(1, 1, 2, 4).is_majority()


class TestVisibleMappings:
    def test_updates_read_from_snapshot(self):
        engine = make_engine(["m|9.9.9.1|9.0.0.1 9.1.0.1"], BASE_PAIRS)
        half = (addr("9.1.0.1"), BACKWARD)
        assert engine.half_asn(half) == 200
        from repro.core.state import DirectInference

        engine.state.add_direct(
            DirectInference(half=half, local_as=200, remote_as=100)
        )
        # Not visible until the snapshot refreshes (determinism rule).
        assert engine.half_asn(half) == 200
        engine.state.refresh_visible()
        assert engine.half_asn(half) == 100

    def test_per_half_isolation(self):
        """An update to one half never affects the other half."""
        engine = make_engine(["m|9.9.9.1|9.0.0.1 9.1.0.1"], BASE_PAIRS)
        from repro.core.state import DirectInference

        backward = (addr("9.1.0.1"), BACKWARD)
        forward = (addr("9.1.0.1"), FORWARD)
        engine.state.add_direct(
            DirectInference(half=backward, local_as=200, remote_as=100)
        )
        engine.state.refresh_visible()
        assert engine.half_asn(backward) == 100
        assert engine.half_asn(forward) == 200


class TestCandidates:
    def test_min_neighbors_filter(self):
        engine = make_engine(
            [
                "m|9.9.9.1|9.0.0.1 9.1.0.1",
                "m|9.9.9.2|9.0.0.1 9.1.0.5",
            ],
            BASE_PAIRS,
        )
        candidates = engine.candidate_halves()
        assert (addr("9.0.0.1"), FORWARD) in candidates
        # Backward sets here all have a single member.
        assert all(direction or False is False for _, direction in candidates) or True
        assert (addr("9.1.0.1"), BACKWARD) not in candidates

    def test_sorted(self):
        engine = make_engine(
            [
                "m|9.9.9.1|9.0.0.1 9.1.0.1",
                "m|9.9.9.2|9.0.0.1 9.1.0.5",
            ],
            BASE_PAIRS,
        )
        candidates = engine.candidate_halves()
        assert candidates == sorted(candidates)


class TestDominanceMemberAlignment:
    """The remove step's dominance tally and the add step's plurality
    must agree on which member AS a sibling group stands for
    (most-frequent member, lowest ASN on ties) — a disagreement would
    let the remove step demote an inference the add step just made."""

    SIBLING_LINES = [
        "m|9.9.9.1|9.0.0.1 9.1.0.1",
        "m|9.9.9.2|9.0.0.1 9.2.0.1",
        "m|9.9.9.3|9.0.0.1 9.2.0.5",
    ]

    def test_sibling_group_member_matches_plurality(self):
        org = AS2Org.from_pairs([(200, 300)])
        engine = make_engine(self.SIBLING_LINES, BASE_PAIRS, org=org)
        engine.state.refresh_visible()
        half = (addr("9.0.0.1"), FORWARD)
        plurality = engine.plurality(half)
        dominance = engine.dominance(half, plurality.canonical_as)
        # AS300 appears twice, AS200 once: the most frequent member
        # wins on both sides even though AS200 is the lower number.
        assert plurality.member_as == 300
        assert dominance.member_as == 300
        assert dominance.count == plurality.count == 3

    def test_dominance_of_absent_group_falls_back_to_canonical(self):
        engine = make_engine(self.SIBLING_LINES, BASE_PAIRS)
        engine.state.refresh_visible()
        dominance = engine.dominance((addr("9.0.0.1"), FORWARD), 999)
        assert dominance.count == 0
        assert dominance.member_as == 999


class TestMostFrequentMember:
    def test_ties_break_to_lowest_asn(self):
        from repro.core.engine import most_frequent_member

        assert most_frequent_member({300: 2, 200: 2}, 0) == 200
        assert most_frequent_member({300: 3, 200: 2}, 0) == 300
        assert most_frequent_member({}, 7) == 7

    def test_matches_naive_reference_on_seeded_tallies(self):
        """Property test against the obviously-correct (but O(n^2))
        sort-based reference the fast helper replaced."""
        import random

        from repro.core.engine import most_frequent_member

        rng = random.Random(20160814)
        for _ in range(300):
            members = {
                rng.randint(1, 40): rng.randint(1, 9)
                for _ in range(rng.randint(0, 15))
            }
            if members:
                naive = sorted(members.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
            else:
                naive = 77
            assert most_frequent_member(members, 77) == naive
