"""Tests for MAP-IT-corrected AS-level paths."""

import pytest

from repro import MapItConfig
from repro.analysis.paths import as_path, path_accuracy, raw_as_path
from repro.bgp.ip2as import IP2AS
from repro.core.mapit import MapIt
from repro.graph.neighbors import build_interface_graph
from repro.net.ipv4 import parse_address
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


class TestFig2Paths:
    """On the paper's Fig 2 data, the raw AS path through the New York
    router wrongly inserts AS2603 (the ingress is NORDUnet-numbered);
    the corrected path attributes it to AS11537."""

    PAIRS = [
        ("109.105.98.0/24", 2603),
        ("216.249.136.0/24", 237),
        ("198.71.44.0/22", 11537),
        ("199.109.5.0/24", 3754),
    ]
    LINES = [
        "m1|198.71.46.99|109.105.98.10 198.71.46.180",
        "m1|198.71.45.99|109.105.98.10 198.71.45.2",
        "m1|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.99",
        "m2|198.71.46.99|216.249.136.196 198.71.46.180",
        "m2|198.71.45.99|216.249.136.196 198.71.45.2",
        "m2|199.109.5.98|216.249.136.196 199.109.5.1 199.109.5.98",
    ]

    @pytest.fixture()
    def mapit(self):
        traces = list(parse_text_traces(self.LINES))
        graph = build_interface_graph(traces)
        mapit = MapIt(graph, IP2AS.from_pairs(self.PAIRS), config=MapItConfig(f=0.5))
        mapit.run()
        return mapit, traces

    def test_raw_path_has_false_as(self, mapit):
        runner, traces = mapit
        raw = raw_as_path(runner, traces[0])
        assert raw == [2603, 11537]

    def test_corrected_path_removes_false_as(self, mapit):
        runner, traces = mapit
        corrected = as_path(runner, traces[0])
        assert corrected == [11537]

    def test_nyser_trace_corrected(self, mapit):
        runner, traces = mapit
        # 109.105.98.10 (AS11537 router) -> 199.109.5.1 (AS3754 router)
        # -> destination host in AS3754.
        assert as_path(runner, traces[2]) == [11537, 3754]
        assert raw_as_path(runner, traces[2]) == [2603, 3754]

    def test_no_collapse(self, mapit):
        runner, traces = mapit
        labels = as_path(runner, traces[2], collapse=False)
        assert labels == [11537, 3754, 3754]


class TestPathAccuracyOnScenario:
    def test_correction_improves_hop_attribution(self, experiment):
        mapit = experiment.new_mapit(MapItConfig(f=0.5))
        mapit.run()
        truth = experiment.scenario.ground_truth.router_as
        accuracy = path_accuracy(mapit, experiment.report.traces, truth)
        assert accuracy.hops > 1000
        assert accuracy.corrected_accuracy >= accuracy.raw_accuracy
        assert accuracy.corrected_accuracy > 0.9

    def test_summary_fields(self, experiment):
        mapit = experiment.new_mapit(MapItConfig(f=0.5))
        mapit.run()
        truth = experiment.scenario.ground_truth.router_as
        summary = path_accuracy(
            mapit, experiment.report.traces[:100], truth
        ).summary()
        assert set(summary) == {"hops", "raw_accuracy", "corrected_accuracy", "improvement"}
