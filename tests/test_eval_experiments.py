"""Tests for the experiment runner and the table/figure machinery on a
small scenario (integration level)."""

import pytest

from repro import MapItConfig
from repro.eval.breakdown import breakdown_by_relationship
from repro.eval.compare import (
    ALL_METHODS,
    CONVENTION,
    ITDK_KAPAR,
    ITDK_MIDAR,
    MAPIT,
    SIMPLE,
    compare_methods,
)
from repro.eval.fsweep import sweep_f
from repro.eval.stats import pipeline_stats
from repro.eval.steps import step_impact


class TestExperiment:
    def test_datasets_for_three_networks(self, experiment):
        assert set(experiment.datasets) == {"I2", "T1-A", "T1-B"}
        assert experiment.datasets["I2"].complete
        assert not experiment.datasets["T1-A"].complete

    def test_mapit_scores_reasonably(self, experiment):
        result = experiment.run_mapit(MapItConfig(f=0.5))
        scores = experiment.score(result.inferences)
        for label, score in scores.items():
            assert score.precision > 0.6, f"{label}: {score}"

    def test_convergence_within_paper_range(self, experiment):
        result = experiment.run_mapit(MapItConfig(f=0.5))
        assert result.converged
        assert result.iterations <= 6


class TestPipelineStats:
    def test_rows_complete(self, experiment):
        stats = pipeline_stats(experiment)
        rows = stats.rows()
        assert rows["traces (retained)"] > 0
        assert 0 <= stats.discard_fraction < 0.2
        assert 0.2 < stats.fraction_31 < 0.65
        assert stats.ip2as_coverage > 0.9
        assert stats.multi_neighbor_backward > 0


class TestFSweep:
    @pytest.fixture(scope="class")
    def sweep(self, experiment):
        return sweep_f(experiment, f_values=(0.0, 0.5, 1.0))

    def test_all_networks_scored(self, sweep, experiment):
        for f in (0.0, 0.5, 1.0):
            assert set(sweep.scores[f]) == set(experiment.datasets)

    def test_recall_collapses_at_high_f(self, sweep):
        """Fig 6 shape: f=1 requires unanimous neighbor sets."""
        for label in ("I2",):
            low = sweep.scores[0.5][label]
            high = sweep.scores[1.0][label]
            assert high.tp <= low.tp

    def test_series_and_rows(self, sweep):
        series = sweep.series("I2", "precision")
        assert [f for f, _ in series] == [0.0, 0.5, 1.0]
        rows = sweep.rows()
        assert len(rows) == 9


class TestStepImpact:
    @pytest.fixture(scope="class")
    def impact(self, experiment):
        return step_impact(experiment, MapItConfig(f=0.5))

    def test_stage_order(self, impact):
        assert impact.stages[0] == "add 1: direct"
        assert impact.stages[-1] == "stub heuristic"
        assert any(stage.startswith("iteration") for stage in impact.stages)

    def test_inverse_removal_does_not_hurt_precision(self, impact):
        for label in ("I2", "T1-A", "T1-B"):
            before = dict(impact.series(label, "precision"))
            assert before["add 1: inverse"] >= before["add 1: contradictions"] - 1e-9

    def test_rows(self, impact):
        rows = impact.rows()
        assert {row["network"] for row in rows} == {"I2", "T1-A", "T1-B"}


class TestBreakdown:
    def test_totals_match_plain_scoring(self, experiment):
        result = experiment.run_mapit(MapItConfig(f=0.5))
        scenario = experiment.scenario
        for label, dataset in experiment.datasets.items():
            breakdown = breakdown_by_relationship(
                result.inferences,
                dataset,
                scenario.relationships,
                scenario.as2org,
                experiment.graph,
            )
            plain = experiment.score(result.inferences)[label]
            total = breakdown.total()
            assert total.tp == plain.tp
            assert total.fp == plain.fp
            assert total.fn == plain.fn

    def test_rows_have_total(self, experiment):
        result = experiment.run_mapit(MapItConfig(f=0.5))
        dataset = experiment.datasets["I2"]
        breakdown = breakdown_by_relationship(
            result.inferences,
            dataset,
            experiment.scenario.relationships,
            experiment.scenario.as2org,
            experiment.graph,
        )
        rows = breakdown.rows()
        assert rows[-1]["class"] == "Total"


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self, experiment):
        return compare_methods(experiment)

    def test_all_methods_run(self, comparison):
        assert set(comparison.scores) == set(ALL_METHODS)

    def test_mapit_beats_per_trace_heuristics(self, comparison):
        """Fig 8 headline: MAP-IT precision dominates Simple and
        Convention on every network."""
        for label in ("I2", "T1-A", "T1-B"):
            mapit = comparison.scores[MAPIT][label].precision
            assert mapit > comparison.scores[SIMPLE][label].precision
            assert mapit >= comparison.scores[CONVENTION][label].precision
        # On the R&E network, whose transit links are often numbered
        # from the customer's space, Convention must lose outright.
        assert (
            comparison.scores[MAPIT]["I2"].precision
            > comparison.scores[CONVENTION]["I2"].precision
        )

    def test_mapit_beats_itdk_on_re_network(self, comparison):
        mapit = comparison.scores[MAPIT]["I2"].precision
        assert mapit > comparison.scores[ITDK_MIDAR]["I2"].precision
        assert mapit > comparison.scores[ITDK_KAPAR]["I2"].precision

    def test_rows(self, comparison):
        rows = comparison.rows()
        assert len(rows) == len(ALL_METHODS) * 3
