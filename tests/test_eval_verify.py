"""Tests for the section 5.2 verification methodology."""

from repro.core.results import DIRECT, LinkInference
from repro.eval.verify import (
    LinkRecord,
    VerificationDataset,
    build_verification,
    score_inferences,
)
from repro.graph.neighbors import build_interface_graph
from repro.net.ipv4 import parse_address
from repro.org.as2org import AS2Org
from repro.sim.groundtruth import BorderInterface, GroundTruth
from repro.traceroute.parse import parse_text_traces


def addr(text: str) -> int:
    return parse_address(text)


TARGET = 100

# Link L1 (owner 100): 9.0.0.1 on an AS100 router <-> 9.0.0.2 on AS200.
# Link L2 (owner 300): 9.2.0.1 on an AS300 router <-> 9.2.0.2 on AS100.
A1, A2 = addr("9.0.0.1"), addr("9.0.0.2")
B1, B2 = addr("9.2.0.1"), addr("9.2.0.2")
INTERNAL = addr("9.0.5.1")


def ground_truth() -> GroundTruth:
    truth = GroundTruth()
    truth.border[A1] = BorderInterface(A1, 100, 200, A2, 100)
    truth.border[A2] = BorderInterface(A2, 200, 100, A1, 100)
    truth.border[B1] = BorderInterface(B1, 300, 100, B2, 300)
    truth.border[B2] = BorderInterface(B2, 100, 300, B1, 300)
    truth.internal.add(INTERNAL)
    truth.router_as.update({A1: 100, A2: 200, B1: 300, B2: 100, INTERNAL: 100})
    return truth


def address_as(address: int) -> int:
    """BGP-style origin: owner of the /16."""
    second_octet = (address >> 16) & 0xFF
    return {0: 100, 1: 200, 2: 300}.get(second_octet, 0)


def make_graph(lines):
    return build_interface_graph(parse_text_traces(lines))


def infer(address, local, remote, forward=True, kind=DIRECT):
    return LinkInference(
        address=address, forward=forward, local_as=local, remote_as=remote, kind=kind
    )


DEFAULT_LINES = [
    # a1 is seen with an AS200 successor (eligibility via adjacency),
    # internal and the second link are seen too.
    "m|9.1.9.9|9.0.5.1 9.0.0.1 9.1.0.7",
    "m|9.0.9.9|9.2.0.1 9.2.0.2 9.0.5.1",
]


def build(lines=None, complete=True):
    graph = make_graph(lines or DEFAULT_LINES)
    seen = set(graph.addresses())
    return (
        build_verification(
            ground_truth(), TARGET, graph, seen, address_as, complete=complete
        ),
        graph,
    )


class TestBuildVerification:
    def test_links_indexed_by_both_addresses(self):
        dataset, _ = build()
        assert dataset.link_by_address[A1] is dataset.link_by_address[A2]
        assert dataset.link_by_address[A1].pair == (100, 200)

    def test_internal_interfaces(self):
        dataset, _ = build()
        assert INTERNAL in dataset.internal

    def test_eligibility_by_owner(self):
        """L2 is numbered from the connected AS (300) — eligible even
        without adjacency evidence."""
        dataset, _ = build()
        assert (min(B1, B2), max(B1, B2)) in dataset.eligible

    def test_eligibility_by_adjacency(self):
        """L1 is numbered from the target, so it needs an adjacent
        AS200 address — which trace 1 provides."""
        dataset, _ = build()
        assert (A1, A2) in dataset.eligible

    def test_exclusion_without_adjacency(self):
        """Without the AS200 successor, L1 drops out of the recall set
        (the paper excluded 4 such Internet2 links)."""
        dataset, _ = build(lines=["m|9.0.9.9|9.0.5.1 9.0.0.1", "m|9.0.9.8|9.2.0.1 9.2.0.2"])
        assert (A1, A2) not in dataset.eligible
        assert dataset.excluded == 1

    def test_unseen_link_not_eligible(self):
        dataset, _ = build(lines=["m|9.0.9.9|9.0.5.1 9.0.0.1 9.1.0.7"])
        assert (min(B1, B2), max(B1, B2)) not in dataset.eligible


class TestScoring:
    def test_true_positive(self):
        dataset, graph = build()
        score = score_inferences([infer(A1, 200, 100)], dataset, graph=graph)
        assert score.tp == 1
        assert score.fp == 0

    def test_one_tp_per_link(self):
        """Inferences on both sides of one link count once."""
        dataset, graph = build()
        score = score_inferences(
            [infer(A1, 200, 100), infer(A2, 200, 100, forward=False)],
            dataset,
            graph=graph,
        )
        assert score.tp == 1

    def test_wrong_pair(self):
        dataset, graph = build()
        score = score_inferences([infer(A1, 300, 100)], dataset, graph=graph)
        assert score.fp_reasons == {"wrong_pair": 1}
        assert score.tp == 0

    def test_internal_error(self):
        dataset, graph = build()
        score = score_inferences([infer(INTERNAL, 100, 200)], dataset, graph=graph)
        assert score.fp_reasons == {"internal": 1}

    def test_unlisted_error_in_complete_mode(self):
        """Internet2 rule: inferences involving the target elsewhere
        are errors."""
        dataset, graph = build()
        stray = infer(addr("9.1.0.7"), 200, 100)
        score = score_inferences([stray], dataset, graph=graph)
        assert score.fp_reasons == {"unlisted": 1}

    def test_unlisted_ignored_in_incomplete_mode(self):
        dataset, graph = build(complete=False)
        stray = infer(addr("9.9.0.7"), 200, 100)
        score = score_inferences([stray], dataset, graph=graph)
        assert score.fp == 0

    def test_adjacent_duplicate_in_incomplete_mode(self):
        """Level3/TeliaSonera rule: duplicating a dataset link's pair
        on an adjacent interface is an error."""
        dataset, graph = build(complete=False)
        adjacent = infer(addr("9.1.0.7"), 200, 100)  # next hop after A1
        score = score_inferences([adjacent], dataset, graph=graph)
        assert score.fp_reasons == {"adjacent_beyond_link": 1}

    def test_non_involving_inferences_ignored(self):
        dataset, graph = build()
        other = infer(addr("9.1.0.7"), 200, 300)
        score = score_inferences([other], dataset, graph=graph)
        assert score.fp == 0

    def test_false_negatives(self):
        dataset, graph = build()
        score = score_inferences([], dataset, graph=graph)
        assert score.fn == len(dataset.eligible)
        assert score.recall == 0.0

    def test_sibling_pairs_match(self):
        dataset, graph = build()
        org = AS2Org.from_pairs([(200, 250)])
        score = score_inferences([infer(A1, 250, 100)], dataset, org=org, graph=graph)
        assert score.tp == 1

    def test_tp_on_ineligible_link_not_counted_as_fn(self):
        """An inference on a link excluded from the recall set is still
        correct; eligibility only governs FN."""
        dataset, graph = build(
            lines=["m|9.0.9.9|9.0.5.1 9.0.0.1", "m|9.0.9.8|9.2.0.1 9.2.0.2"]
        )
        assert (A1, A2) not in dataset.eligible
        score = score_inferences([infer(A1, 200, 100)], dataset, graph=graph)
        assert score.tp == 1
        assert score.fp == 0
