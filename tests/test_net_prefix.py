"""Tests for prefixes and point-to-point link arithmetic."""

import pytest

from repro.net.ipv4 import parse_address
from repro.net.prefix import (
    Prefix,
    host_addresses,
    is_reserved_in_30,
    p2p_other_side_30,
    p2p_other_side_31,
    prefix_of,
)


def addr(text: str) -> int:
    return parse_address(text)


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.address == addr("192.0.2.0")
        assert prefix.length == 24

    def test_parse_requires_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("192.0.2.0")

    def test_canonicalizes_host_bits(self):
        assert Prefix.parse("192.0.2.77/24") == Prefix.parse("192.0.2.0/24")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_mask(self):
        assert Prefix.parse("0.0.0.0/0").mask == 0
        assert Prefix.parse("128.0.0.0/1").mask == 0x80000000
        assert Prefix.parse("1.2.3.4/32").mask == 0xFFFFFFFF

    def test_broadcast_and_size(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert prefix.broadcast == addr("10.0.0.3")
        assert prefix.size == 4

    def test_contains(self):
        prefix = Prefix.parse("198.71.44.0/22")
        assert prefix.contains(addr("198.71.46.180"))
        assert not prefix.contains(addr("198.71.48.1"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/30").subnets(31))
        assert subs == [Prefix.parse("10.0.0.0/31"), Prefix.parse("10.0.0.2/31")]

    def test_subnets_shorter_raises(self):
        with pytest.raises(ValueError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))

    def test_str(self):
        assert str(Prefix.parse("192.0.2.0/24")) == "192.0.2.0/24"

    def test_iteration(self):
        assert list(Prefix.parse("10.0.0.0/31")) == [addr("10.0.0.0"), addr("10.0.0.1")]

    def test_ordering_is_deterministic(self):
        prefixes = sorted([Prefix.parse("10.1.0.0/16"), Prefix.parse("10.0.0.0/8")])
        assert prefixes[0] == Prefix.parse("10.0.0.0/8")

    def test_prefix_of(self):
        assert prefix_of(addr("198.71.46.181"), 31) == Prefix.parse("198.71.46.180/31")


class TestHostAddresses:
    def test_slash_30_excludes_reserved(self):
        hosts = list(host_addresses(Prefix.parse("10.0.0.0/30")))
        assert hosts == [addr("10.0.0.1"), addr("10.0.0.2")]

    def test_slash_31_both_hosts(self):
        """RFC 3021: both /31 addresses are usable hosts."""
        hosts = list(host_addresses(Prefix.parse("10.0.0.0/31")))
        assert hosts == [addr("10.0.0.0"), addr("10.0.0.1")]

    def test_slash_32(self):
        assert list(host_addresses(Prefix.parse("10.0.0.1/32"))) == [addr("10.0.0.1")]


class TestOtherSide:
    def test_31_pairs(self):
        assert p2p_other_side_31(addr("10.0.0.0")) == addr("10.0.0.1")
        assert p2p_other_side_31(addr("10.0.0.1")) == addr("10.0.0.0")

    def test_31_involution(self):
        address = addr("198.71.46.180")
        assert p2p_other_side_31(p2p_other_side_31(address)) == address

    def test_30_pairs(self):
        assert p2p_other_side_30(addr("10.0.0.1")) == addr("10.0.0.2")
        assert p2p_other_side_30(addr("10.0.0.2")) == addr("10.0.0.1")

    def test_30_rejects_reserved(self):
        with pytest.raises(ValueError):
            p2p_other_side_30(addr("10.0.0.0"))
        with pytest.raises(ValueError):
            p2p_other_side_30(addr("10.0.0.3"))

    def test_paper_example(self):
        """Section 3.1: the other side of 109.105.98.10 is 109.105.98.9."""
        assert p2p_other_side_30(addr("109.105.98.10")) == addr("109.105.98.9")

    def test_is_reserved(self):
        assert is_reserved_in_30(addr("10.0.0.0"))
        assert is_reserved_in_30(addr("10.0.0.3"))
        assert not is_reserved_in_30(addr("10.0.0.1"))
        assert not is_reserved_in_30(addr("10.0.0.2"))
