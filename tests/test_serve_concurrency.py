"""Snapshot isolation and deterministic shedding under concurrency.

The serve consistency contract (docs/SERVE.md): readers are lock-free
and must never observe a torn state — every response is assembled from
exactly one published snapshot, so its (seq, fingerprint, counts)
always match some quiesce that actually happened.  Shedding is
deterministic drop-newest with the dropped count charged to the same
ErrorBudget batch ingest uses.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import MapItConfig
from repro.diff.worlds import world_from_preset
from repro.obs.metrics import Metrics
from repro.obs.observer import Observability
from repro.robust.errors import ErrorBudget, ErrorBudgetExceeded
from repro.serve.api import QueryAPI
from repro.serve.daemon import ServeDaemon
from repro.serve.incremental import IncrementalIndex
from repro.traceroute.parse import traces_to_text_lines


def _daemon(world, **kwargs) -> ServeDaemon:
    index = IncrementalIndex(
        world.ip2as(), org=world.as2org, rel=world.relationships,
        config=MapItConfig(),
    )
    return ServeDaemon(index, format="text", **kwargs)


def test_no_torn_reads_under_concurrent_queries():
    """Readers hammer the API while the pump folds and quiesces; every
    response must match a snapshot the daemon actually published."""
    world = world_from_preset("tiny", 0)
    lines = list(traces_to_text_lines(world.traces))
    daemon = _daemon(world, quiesce_every=3)
    api = QueryAPI(daemon)

    published = {}  # seq -> (fingerprint, inference count); seqs never reuse
    publish_lock = threading.Lock()
    original_quiesce = daemon.quiesce

    def recording_quiesce():
        snapshot = original_quiesce()
        with publish_lock:
            published[snapshot.seq] = (
                snapshot.fingerprint,
                len(snapshot.result.inferences),
            )
        return snapshot

    daemon.quiesce = recording_quiesce

    observations = []
    errors = []
    done = threading.Event()

    def reader():
        while not done.is_set():
            try:
                health = api.health()
                fingerprint = api.fingerprint()
                if health["seq"]:
                    observations.append(
                        (health["fingerprint"], health["seq"], health["inferences"])
                    )
                if fingerprint["seq"]:
                    observations.append(
                        (fingerprint["fingerprint"], fingerprint["seq"], None)
                    )
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)
                return

    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers:
        thread.start()
    offset = 0
    for line in lines:
        offset += len(line) + 1
        daemon.ingest_entry(line, "stream", offset)
    daemon.finalize()
    done.set()
    for thread in readers:
        thread.join(timeout=10)
    assert not errors, errors
    assert observations, "readers never observed a snapshot"
    for fingerprint, seq, inferences in observations:
        assert seq in published, "reader saw an unpublished seq"
        known_fingerprint, known_count = published[seq]
        assert fingerprint == known_fingerprint, (
            "seq and fingerprint from different snapshots"
        )
        if inferences is not None:
            assert inferences == known_count, (
                "summary counts and fingerprint from different snapshots"
            )


def test_shed_is_deterministic_drop_newest():
    """With a full queue and no pump, exactly the overflow is shed —
    the oldest queued lines survive."""
    world = world_from_preset("tiny", 0)
    lines = list(traces_to_text_lines(world.traces))[:30]
    metrics = Metrics()
    obs = Observability(metrics=metrics)
    daemon = _daemon(world, queue_limit=4, obs=obs)
    accepted = [daemon.offer(line, "stream") for line in lines]
    assert accepted == [True] * 4 + [False] * 26
    assert daemon.stats["shed"] == 26
    assert daemon.stats["ingested"] == 4
    assert metrics.counters["serve.shed"] == 26
    # the queue still holds the first four lines, in arrival order
    assert daemon.pump() == 4
    assert daemon.stats["folds"] == 4


def test_shed_charges_the_error_budget():
    """Shed lines count against the same budget malformed lines do;
    the quiesce after crossing the threshold raises."""
    world = world_from_preset("tiny", 0)
    lines = list(traces_to_text_lines(world.traces))[:30]
    daemon = _daemon(
        world, queue_limit=4, budget=ErrorBudget(max_error_rate=0.1, min_records=20)
    )
    for line in lines:
        daemon.offer(line, "stream")
    daemon.pump()
    with pytest.raises(ErrorBudgetExceeded) as excinfo:
        daemon.quiesce()
    assert excinfo.value.source == "serve"
    assert excinfo.value.malformed == 26  # all shed, none malformed
    assert excinfo.value.total == 30


def test_queue_depth_is_thread_safe_gauge():
    world = world_from_preset("tiny", 0)
    lines = list(traces_to_text_lines(world.traces))[:10]
    daemon = _daemon(world, queue_limit=64)
    for line in lines:
        daemon.offer(line, "stream")
    assert daemon.queue_depth == 10
    daemon.pump(max_records=4)
    assert daemon.queue_depth == 6
