"""Tests for multi-seed aggregation and topology descriptions."""

import pytest

from repro import MapItConfig
from repro.eval.aggregate import MetricSummary, SeedAggregate, aggregate_over_seeds
from repro.eval.metrics import Score
from repro.sim.describe import describe_as_graph, describe_lines, describe_network
from repro.sim.presets import small_scenario


class TestMetricSummary:
    def test_statistics(self):
        summary = MetricSummary()
        for value in (0.8, 0.9, 1.0):
            summary.add(value)
        assert summary.mean == pytest.approx(0.9)
        assert summary.minimum == 0.8
        assert summary.maximum == 1.0
        assert summary.spread == pytest.approx(0.2)

    def test_empty(self):
        summary = MetricSummary()
        assert summary.mean == 0.0
        assert summary.spread == 0.0


class TestSeedAggregate:
    def test_record_and_rows(self):
        aggregate = SeedAggregate()
        aggregate.record(1, {"I2": Score(tp=9, fp=1, fn=0)})
        aggregate.record(2, {"I2": Score(tp=8, fp=2, fn=2)})
        rows = aggregate.rows()
        assert rows[0]["network"] == "I2"
        assert rows[0]["seeds"] == 2
        assert rows[0]["precision_mean"] == pytest.approx(0.85)
        pooled = rows[-1]
        assert pooled["network"] == "pooled"
        assert pooled["precision_mean"] == pytest.approx(17 / 20)

    def test_aggregate_over_seeds(self):
        aggregate = aggregate_over_seeds(
            small_scenario, seeds=(1, 2), config=MapItConfig(f=0.5)
        )
        assert aggregate.seeds == [1, 2]
        assert aggregate.pooled.tp > 0
        rows = aggregate.rows()
        assert {row["network"] for row in rows} >= {"I2", "pooled"}
        # Precision stays high across seeds for every network.
        for label, summary in aggregate.precision.items():
            assert summary.minimum > 0.5, label


class TestDescribe:
    def test_as_graph_summary(self, scenario):
        summary = describe_as_graph(scenario.graph)
        assert summary["ases"] == len(scenario.graph)
        assert summary["transit_edges"] > 0
        assert summary["by_tier"]["tier1"] == 2

    def test_network_summary(self, scenario):
        summary = describe_network(scenario.network)
        assert summary["routers"] == len(scenario.network.routers)
        assert summary["interfaces"] == len(scenario.network.address_owner)
        assert summary["external_links"] > 0
        assert summary["monitor_lans"] == len(scenario.monitors)

    def test_lines(self, scenario):
        lines = describe_lines(scenario.graph, scenario.network)
        assert any(line.startswith("ases:") for line in lines)
        assert any(line.startswith("routers:") for line in lines)
