"""Tests for the Fig 7 checkpoint instrumentation."""

import pytest

from repro import MapItConfig


@pytest.fixture(scope="module")
def checkpointed(experiment):
    return experiment.run_mapit(MapItConfig(f=0.5, record_checkpoints=True))


class TestCheckpoints:
    def test_disabled_by_default(self, experiment):
        result = experiment.run_mapit(MapItConfig(f=0.5))
        assert result.checkpoints == []

    def test_stage_labels_and_order(self, checkpointed):
        labels = [checkpoint.label for checkpoint in checkpointed.checkpoints]
        assert labels[0] == "add 1: direct"
        assert labels[1] == "add 1: contradictions"
        assert labels[2] == "add 1: inverse"
        assert labels[3] == "add 1: all passes"
        assert labels[4] == "iteration 1"
        assert labels[-1] == "stub heuristic"

    def test_one_iteration_checkpoint_per_iteration(self, checkpointed):
        labels = [checkpoint.label for checkpoint in checkpointed.checkpoints]
        iteration_labels = [l for l in labels if l.startswith("iteration")]
        assert len(iteration_labels) == checkpointed.iterations

    def test_final_checkpoint_matches_output(self, checkpointed):
        final = checkpointed.checkpoints[-1]
        final_halves = {(i.address, i.forward) for i in final.inferences}
        output_halves = {
            (i.address, i.forward)
            for i in checkpointed.inferences + checkpointed.uncertain
        }
        assert final_halves == output_halves

    def test_multipass_grows_first_add_step(self, checkpointed):
        by_label = {c.label: c for c in checkpointed.checkpoints}
        assert len(by_label["add 1: all passes"]) >= len(by_label["add 1: inverse"])

    def test_checkpoints_do_not_change_outcome(self, experiment, checkpointed):
        plain = experiment.run_mapit(MapItConfig(f=0.5))
        assert [str(i) for i in plain.inferences] == [
            str(i) for i in checkpointed.inferences
        ]
