"""Property-based tests (hypothesis) on core data structures and
algorithm invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.neighbors import build_interface_graph
from repro.graph.othersides import infer_other_sides
from repro.net.ipv4 import MAX_ADDRESS, format_address, parse_address
from repro.net.prefix import (
    Prefix,
    host_addresses,
    is_reserved_in_30,
    p2p_other_side_31,
    prefix_of,
)
from repro.net.trie import PrefixTrie
from repro.traceroute.model import Hop, Trace
from repro.traceroute.parse import (
    parse_json_traces,
    parse_text_traces,
    traces_to_json_lines,
    traces_to_text_lines,
)
from repro.traceroute.sanitize import find_cycle, sanitize_traces, strip_buggy_hops

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
lengths = st.integers(min_value=0, max_value=32)


class TestAddressProperties:
    @given(addresses)
    def test_format_parse_roundtrip(self, address):
        assert parse_address(format_address(address)) == address


class TestPrefixProperties:
    @given(addresses, lengths)
    def test_prefix_contains_own_range(self, address, length):
        prefix = prefix_of(address, length)
        assert prefix.contains(prefix.address)
        assert prefix.contains(prefix.broadcast)
        assert prefix.contains(address)

    @given(addresses, lengths)
    def test_parse_str_roundtrip(self, address, length):
        prefix = prefix_of(address, length)
        assert Prefix.parse(str(prefix)) == prefix

    @given(addresses, st.integers(min_value=1, max_value=32))
    def test_outside_neighbors_not_contained(self, address, length):
        prefix = prefix_of(address, length)
        if prefix.address > 0:
            assert not prefix.contains(prefix.address - 1)
        if prefix.broadcast < MAX_ADDRESS:
            assert not prefix.contains(prefix.broadcast + 1)

    @given(addresses, st.integers(min_value=24, max_value=31))
    def test_host_addresses_inside(self, address, length):
        prefix = prefix_of(address, length)
        hosts = list(host_addresses(prefix))
        assert hosts
        assert all(prefix.contains(host) for host in hosts)
        if length < 31:
            assert prefix.address not in hosts
            assert prefix.broadcast not in hosts

    @given(addresses)
    def test_p2p_31_involution(self, address):
        assert p2p_other_side_31(p2p_other_side_31(address)) == address
        assert prefix_of(address, 31) == prefix_of(p2p_other_side_31(address), 31)


class TestTrieProperties:
    @given(
        st.lists(
            st.tuples(addresses, st.integers(min_value=1, max_value=32)),
            min_size=1,
            max_size=60,
        ),
        st.lists(addresses, min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_lpm(self, entries, queries):
        trie = PrefixTrie()
        table = {}
        for index, (address, length) in enumerate(entries):
            prefix = prefix_of(address, length)
            trie.insert(prefix, index)
            table[prefix] = index
        for query in queries:
            best = None
            for prefix, value in table.items():
                if prefix.contains(query):
                    if best is None or prefix.length > best[0].length:
                        best = (prefix, value)
            got = trie.lookup(query)
            assert got == best

    @given(st.lists(st.tuples(addresses, lengths), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_items_roundtrip(self, entries):
        trie = PrefixTrie()
        table = {}
        for index, (address, length) in enumerate(entries):
            prefix = prefix_of(address, length)
            trie.insert(prefix, index)
            table[prefix] = index
        assert dict(trie.items()) == table
        assert len(trie) == len(table)


class TestOtherSideProperties:
    @given(st.sets(addresses, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_complete_and_consistent(self, observed):
        table = infer_other_sides(observed)
        assert set(table.other_side) == observed
        for address, other in table.other_side.items():
            # Other side shares the /30; distinct from the address.
            assert other != address
            assert prefix_of(address, 30) == prefix_of(other, 30)
            if address in table.from_31:
                assert other == address ^ 1
            else:
                assert not is_reserved_in_30(address)
                assert not is_reserved_in_30(other)

    @given(st.sets(addresses, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_31_judgement_monotone_in_evidence(self, observed):
        """Adding the /30-reserved sibling can only move an address
        from /30 to /31, never the reverse."""
        base = infer_other_sides(observed)
        extra = set(observed)
        for address in observed:
            extra.add(address & ~3)
        more = infer_other_sides(extra)
        for address in observed:
            if address in base.from_31:
                assert address in more.from_31


def traces_strategy():
    hop = st.one_of(
        st.none(),
        st.integers(min_value=1 << 24, max_value=(99 << 24)),
    )
    return st.lists(
        st.tuples(
            st.lists(hop, min_size=1, max_size=12),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=10,
    )


def build_traces(raw):
    traces = []
    for hops, flow in raw:
        traces.append(
            Trace(
                "mon",
                parse_address("203.0.114.1"),
                tuple(Hop(address) for address in hops),
                flow,
            )
        )
    return traces


class TestSanitizeProperties:
    @given(traces_strategy())
    @settings(max_examples=60, deadline=None)
    def test_retained_traces_are_cycle_free(self, raw):
        report = sanitize_traces(build_traces(raw))
        for trace in report.traces:
            assert find_cycle(trace) is None

    @given(traces_strategy())
    @settings(max_examples=60, deadline=None)
    def test_counts_add_up(self, raw):
        traces = build_traces(raw)
        report = sanitize_traces(traces)
        assert len(report.traces) + report.discarded == len(traces)
        assert report.retained_addresses <= report.all_addresses

    @given(traces_strategy())
    @settings(max_examples=40, deadline=None)
    def test_strip_buggy_never_adds_addresses(self, raw):
        for trace in build_traces(raw):
            cleaned = strip_buggy_hops(trace)
            before = set(trace.addresses())
            after = set(cleaned.addresses())
            assert after <= before


class TestParseProperties:
    @given(traces_strategy())
    @settings(max_examples=50, deadline=None)
    def test_text_roundtrip(self, raw):
        traces = build_traces(raw)
        parsed = list(parse_text_traces(traces_to_text_lines(traces)))
        assert len(parsed) == len(traces)
        for original, back in zip(traces, parsed):
            assert [h.address for h in original.hops] == [
                h.address for h in back.hops
            ]

    @given(traces_strategy())
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip(self, raw):
        traces = build_traces(raw)
        parsed = list(parse_json_traces(traces_to_json_lines(traces)))
        for original, back in zip(traces, parsed):
            assert [h.address for h in original.hops] == [
                h.address for h in back.hops
            ]


class TestNeighborSetProperties:
    @given(traces_strategy())
    @settings(max_examples=50, deadline=None)
    def test_forward_backward_duality(self, raw):
        """b in N_F(a) if and only if a in N_B(b)."""
        graph = build_interface_graph(build_traces(raw))
        for address in graph.addresses():
            for successor in graph.n_forward(address):
                assert address in graph.n_backward(successor)
            for predecessor in graph.n_backward(address):
                assert address in graph.n_forward(predecessor)
