"""Property-based tests on core data structures and algorithm
invariants: hypothesis strategies for the structured generators, plus
seeded stdlib-``random`` fuzzers for the raw string parsers (no extra
dependency, fully reproducible from the hard-coded seeds)."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.neighbors import build_interface_graph
from repro.graph.othersides import infer_other_sides
from repro.net.ipv4 import (
    MAX_ADDRESS,
    AddressError,
    format_address,
    is_valid_address,
    parse_address,
)
from repro.net.prefix import (
    Prefix,
    host_addresses,
    is_reserved_in_30,
    p2p_other_side_31,
    prefix_of,
)
from repro.net.trie import PrefixTrie
from repro.traceroute.model import Hop, Trace
from repro.traceroute.parse import (
    TraceParseError,
    parse_json_trace,
    parse_json_traces,
    parse_text_trace,
    parse_text_traces,
    traces_to_json_lines,
    traces_to_text_lines,
)
from repro.traceroute.sanitize import find_cycle, sanitize_traces, strip_buggy_hops

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
lengths = st.integers(min_value=0, max_value=32)


class TestAddressProperties:
    @given(addresses)
    def test_format_parse_roundtrip(self, address):
        assert parse_address(format_address(address)) == address


class TestPrefixProperties:
    @given(addresses, lengths)
    def test_prefix_contains_own_range(self, address, length):
        prefix = prefix_of(address, length)
        assert prefix.contains(prefix.address)
        assert prefix.contains(prefix.broadcast)
        assert prefix.contains(address)

    @given(addresses, lengths)
    def test_parse_str_roundtrip(self, address, length):
        prefix = prefix_of(address, length)
        assert Prefix.parse(str(prefix)) == prefix

    @given(addresses, st.integers(min_value=1, max_value=32))
    def test_outside_neighbors_not_contained(self, address, length):
        prefix = prefix_of(address, length)
        if prefix.address > 0:
            assert not prefix.contains(prefix.address - 1)
        if prefix.broadcast < MAX_ADDRESS:
            assert not prefix.contains(prefix.broadcast + 1)

    @given(addresses, st.integers(min_value=24, max_value=31))
    def test_host_addresses_inside(self, address, length):
        prefix = prefix_of(address, length)
        hosts = list(host_addresses(prefix))
        assert hosts
        assert all(prefix.contains(host) for host in hosts)
        if length < 31:
            assert prefix.address not in hosts
            assert prefix.broadcast not in hosts

    @given(addresses)
    def test_p2p_31_involution(self, address):
        assert p2p_other_side_31(p2p_other_side_31(address)) == address
        assert prefix_of(address, 31) == prefix_of(p2p_other_side_31(address), 31)


class TestTrieProperties:
    @given(
        st.lists(
            st.tuples(addresses, st.integers(min_value=1, max_value=32)),
            min_size=1,
            max_size=60,
        ),
        st.lists(addresses, min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_lpm(self, entries, queries):
        trie = PrefixTrie()
        table = {}
        for index, (address, length) in enumerate(entries):
            prefix = prefix_of(address, length)
            trie.insert(prefix, index)
            table[prefix] = index
        for query in queries:
            best = None
            for prefix, value in table.items():
                if prefix.contains(query):
                    if best is None or prefix.length > best[0].length:
                        best = (prefix, value)
            got = trie.lookup(query)
            assert got == best

    @given(st.lists(st.tuples(addresses, lengths), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_items_roundtrip(self, entries):
        trie = PrefixTrie()
        table = {}
        for index, (address, length) in enumerate(entries):
            prefix = prefix_of(address, length)
            trie.insert(prefix, index)
            table[prefix] = index
        assert dict(trie.items()) == table
        assert len(trie) == len(table)


class TestOtherSideProperties:
    @given(st.sets(addresses, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_complete_and_consistent(self, observed):
        table = infer_other_sides(observed)
        assert set(table.other_side) == observed
        for address, other in table.other_side.items():
            # Other side shares the /30; distinct from the address.
            assert other != address
            assert prefix_of(address, 30) == prefix_of(other, 30)
            if address in table.from_31:
                assert other == address ^ 1
            else:
                assert not is_reserved_in_30(address)
                assert not is_reserved_in_30(other)

    @given(st.sets(addresses, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_31_judgement_monotone_in_evidence(self, observed):
        """Adding the /30-reserved sibling can only move an address
        from /30 to /31, never the reverse."""
        base = infer_other_sides(observed)
        extra = set(observed)
        for address in observed:
            extra.add(address & ~3)
        more = infer_other_sides(extra)
        for address in observed:
            if address in base.from_31:
                assert address in more.from_31


def traces_strategy():
    hop = st.one_of(
        st.none(),
        st.integers(min_value=1 << 24, max_value=(99 << 24)),
    )
    return st.lists(
        st.tuples(
            st.lists(hop, min_size=1, max_size=12),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=10,
    )


def build_traces(raw):
    traces = []
    for hops, flow in raw:
        traces.append(
            Trace(
                "mon",
                parse_address("203.0.114.1"),
                tuple(Hop(address) for address in hops),
                flow,
            )
        )
    return traces


class TestSanitizeProperties:
    @given(traces_strategy())
    @settings(max_examples=60, deadline=None)
    def test_retained_traces_are_cycle_free(self, raw):
        report = sanitize_traces(build_traces(raw))
        for trace in report.traces:
            assert find_cycle(trace) is None

    @given(traces_strategy())
    @settings(max_examples=60, deadline=None)
    def test_counts_add_up(self, raw):
        traces = build_traces(raw)
        report = sanitize_traces(traces)
        assert len(report.traces) + report.discarded == len(traces)
        assert report.retained_addresses <= report.all_addresses

    @given(traces_strategy())
    @settings(max_examples=40, deadline=None)
    def test_strip_buggy_never_adds_addresses(self, raw):
        for trace in build_traces(raw):
            cleaned = strip_buggy_hops(trace)
            before = set(trace.addresses())
            after = set(cleaned.addresses())
            assert after <= before


class TestParseProperties:
    @given(traces_strategy())
    @settings(max_examples=50, deadline=None)
    def test_text_roundtrip(self, raw):
        traces = build_traces(raw)
        parsed = list(parse_text_traces(traces_to_text_lines(traces)))
        assert len(parsed) == len(traces)
        for original, back in zip(traces, parsed):
            assert [h.address for h in original.hops] == [
                h.address for h in back.hops
            ]

    @given(traces_strategy())
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip(self, raw):
        traces = build_traces(raw)
        parsed = list(parse_json_traces(traces_to_json_lines(traces)))
        for original, back in zip(traces, parsed):
            assert [h.address for h in original.hops] == [
                h.address for h in back.hops
            ]


def _mutate_line(rng, line):
    """One random edit: delete, insert, replace, splice, or truncate."""
    kind = rng.randrange(5)
    if not line or kind == 4:
        return line[: rng.randrange(len(line) + 1)]
    position = rng.randrange(len(line))
    junk = rng.choice(string.printable.strip() + "|@*. ")
    if kind == 0:
        return line[:position] + line[position + 1 :]
    if kind == 1:
        return line[:position] + junk + line[position:]
    if kind == 2:
        return line[:position] + junk + line[position + 1 :]
    return line[:position] + line[: rng.randrange(len(line) + 1)]


class TestSeededAddressFuzz:
    """Stdlib-``random`` fuzzers for the dotted-quad parser: any string
    either parses (and then round-trips) or raises AddressError —
    nothing else escapes, under fixed seeds."""

    def test_octet_shaped_garbage(self):
        rng = random.Random(0xA11C)
        pieces = ["0", "1", "9", "10", "99", "255", "256", "999", "00", "01",
                  "-1", "+1", "1e1", " 1", "1 ", "", "x", "³", "0x10"]
        for _ in range(3000):
            text = ".".join(rng.choice(pieces) for _ in range(rng.randrange(1, 6)))
            try:
                value = parse_address(text)
            except AddressError:
                assert not is_valid_address(text)
                continue
            assert 0 <= value <= MAX_ADDRESS
            canonical = format_address(value)
            assert parse_address(canonical) == value

    def test_printable_garbage_only_raises_address_error(self):
        rng = random.Random(0xF00D)
        alphabet = string.printable
        for _ in range(2000):
            text = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 24))
            )
            if is_valid_address(text):
                assert format_address(parse_address(text)).count(".") == 3
            else:
                with pytest.raises(AddressError):
                    parse_address(text)

    def test_mutated_valid_addresses(self):
        rng = random.Random(0xCAFE)
        for _ in range(2000):
            address = rng.randrange(MAX_ADDRESS + 1)
            text = _mutate_line(rng, format_address(address))
            try:
                parse_address(text)
            except AddressError:
                pass  # the only acceptable failure mode


class TestSeededTraceLineFuzz:
    """Mutation fuzzers for the trace-record parsers: a damaged line
    either still parses or raises TraceParseError (a ValueError) with
    the caller's line number attached — never any other exception."""

    def _valid_text_lines(self, rng, count):
        lines = []
        for _ in range(count):
            hops = []
            for _ in range(rng.randrange(1, 6)):
                if rng.random() < 0.2:
                    hops.append("*")
                else:
                    addr = format_address(rng.randrange(1 << 24, 99 << 24))
                    if rng.random() < 0.3:
                        addr += f"@{rng.randrange(0, 4)}"
                    hops.append(addr)
            dst = format_address(rng.randrange(1 << 24, 99 << 24))
            lines.append(f"m{rng.randrange(4)}|{dst}|{' '.join(hops)}")
        return lines

    def test_mutated_text_lines(self):
        rng = random.Random(0xBEEF)
        for line in self._valid_text_lines(rng, 600):
            damaged = _mutate_line(rng, line)
            if not damaged.strip() or damaged.lstrip().startswith("#"):
                continue
            try:
                trace = parse_text_trace(damaged, line_number=11)
            except TraceParseError as exc:
                assert exc.line_number == 11
                assert isinstance(exc, ValueError)
            else:
                assert trace.hops is not None

    def test_mutated_json_lines(self):
        rng = random.Random(0xD00D)
        source = list(
            traces_to_json_lines(
                parse_text_traces(self._valid_text_lines(rng, 300))
            )
        )
        for line in source:
            damaged = _mutate_line(rng, line)
            if not damaged.strip():
                continue
            try:
                parse_json_trace(damaged, line_number=7)
            except TraceParseError as exc:
                assert exc.line_number == 7

    def test_lenient_ingest_accounts_for_every_record(self):
        """Over a fuzzed corpus, lenient ingest never raises and its
        counts partition the non-blank, non-comment lines exactly —
        under the serial and the sharded ingester alike."""
        from repro.perf.ingest import ingest_traces_parallel
        from repro.robust.ingest import ingest_traces

        rng = random.Random(0x5EED)
        lines = []
        for line in self._valid_text_lines(rng, 400):
            lines.append(_mutate_line(rng, line) if rng.random() < 0.5 else line)
        records = sum(
            1 for line in lines if line.strip() and not line.strip().startswith("#")
        )
        traces, report = ingest_traces(lines, mode="lenient")
        assert report.parsed + report.malformed == records
        assert report.parsed == len(traces)
        par_traces, par_report = ingest_traces_parallel(lines, 4, mode="lenient")
        assert par_traces == traces
        assert (par_report.parsed, par_report.malformed) == (
            report.parsed,
            report.malformed,
        )


class TestNeighborSetProperties:
    @given(traces_strategy())
    @settings(max_examples=50, deadline=None)
    def test_forward_backward_duality(self, raw):
        """b in N_F(a) if and only if a in N_B(b)."""
        graph = build_interface_graph(build_traces(raw))
        for address in graph.addresses():
            for successor in graph.n_forward(address):
                assert address in graph.n_backward(successor)
            for predecessor in graph.n_backward(address):
                assert address in graph.n_forward(predecessor)
