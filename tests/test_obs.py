"""Tests for the observability layer (repro.obs)."""

import io
import json

import pytest

from repro import MapItConfig, run_mapit
from repro.cli import main
from repro.obs import (
    NULL_OBS,
    Metrics,
    NullObservability,
    NullTracer,
    Observability,
    TimerStats,
    Tracer,
    canonical_event,
    encode_event,
    read_trace,
    summarize,
)
from repro.obs.inspect import convergence_rows, pass_table, rule_rows, slowest_spans
from repro.obs.trace import iter_events
from repro.sim.presets import small_scenario


def _observed_run(scenario, profile=False, timestamps=False, metrics=True):
    sink = io.StringIO()
    obs = Observability(
        tracer=Tracer(sink=sink, timestamps=timestamps),
        metrics=Metrics() if metrics else None,
        profile=profile,
    )
    result = run_mapit(
        scenario.traces,
        scenario.ip2as,
        org=scenario.as2org,
        rel=scenario.relationships,
        config=MapItConfig(f=0.5),
        obs=obs,
    )
    return result, obs, sink.getvalue()


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(seed=3)


@pytest.fixture(scope="module")
def observed(scenario):
    return _observed_run(scenario, profile=True)


class TestTracer:
    def test_ring_keeps_only_last_events(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            tracer.emit("tick", i=i)
        assert len(tracer.events) == 4
        assert [event["i"] for event in tracer.events] == [6, 7, 8, 9]

    def test_seq_is_monotonic_and_global(self):
        tracer = Tracer(ring_size=2)
        for _ in range(5):
            tracer.emit("tick")
        assert tracer.seq == 5
        assert [event["seq"] for event in tracer.events] == [3, 4]

    def test_sink_gets_jsonl(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink, timestamps=False)
        tracer.emit("a", x=1)
        tracer.emit("b", y="z")
        lines = sink.getvalue().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_timestamps_flag(self):
        tracer = Tracer(timestamps=True)
        tracer.emit("a")
        assert "ts" in tracer.events[0]
        tracer = Tracer(timestamps=False)
        tracer.emit("a")
        assert "ts" not in tracer.events[0]

    def test_to_file_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer.to_file(path, timestamps=False) as tracer:
            tracer.emit("hello", n=3)
        events = read_trace(path)
        assert events == [{"seq": 0, "event": "hello", "n": 3}]

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_canonical_event_strips_volatile_keys(self):
        event = {"seq": 1, "event": "span", "ts": 123.4, "dur_ms": 0.5, "name": "x"}
        assert canonical_event(event) == {"seq": 1, "event": "span", "name": "x"}

    def test_encode_event_is_stable(self):
        assert encode_event({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_null_tracer(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.emit("ignored", x=1)
        assert len(tracer.events) == 0
        tracer.close()

    def test_iter_events(self):
        events = [{"event": "a"}, {"event": "b"}, {"event": "a"}]
        assert len(list(iter_events(events, "a"))) == 2


class TestMetrics:
    def test_counters_and_gauges(self):
        metrics = Metrics()
        metrics.inc("x")
        metrics.inc("x", 2)
        metrics.set_gauge("g", 1.5)
        exported = metrics.to_dict()
        assert exported["counters"]["x"] == 3
        assert exported["gauges"]["g"] == 1.5

    def test_timer_stats(self):
        stats = TimerStats()
        stats.observe(0.001)
        stats.observe(0.003)
        exported = stats.to_dict()
        assert exported["count"] == 2
        assert exported["max_ms"] >= exported["min_ms"] > 0

    def test_write(self, tmp_path):
        metrics = Metrics()
        metrics.inc("n", 7)
        path = tmp_path / "m.json"
        metrics.write(path)
        assert json.loads(path.read_text())["counters"]["n"] == 7

    def test_slowest(self):
        metrics = Metrics()
        metrics.observe("span.fast", 0.001)
        metrics.observe("span.slow", 0.1)
        rows = metrics.slowest(top=2)
        assert rows[0]["timer"] == "span.slow"


class TestObservability:
    def test_null_obs_is_disabled(self):
        assert not NULL_OBS.enabled
        assert isinstance(NULL_OBS, NullObservability)
        with NULL_OBS.span("anything"):
            pass
        NULL_OBS.event("ignored")
        NULL_OBS.inc("ignored")
        NULL_OBS.gauge("ignored", 1.0)

    def test_disabled_span_is_shared_singleton(self):
        obs = Observability()
        assert obs.span("a") is obs.span("b")

    def test_span_records_timer(self):
        obs = Observability(metrics=Metrics())
        with obs.span("work"):
            pass
        assert "span.work" in obs.metrics.to_dict()["timers"]

    def test_profile_emits_span_events(self, observed):
        _, obs, _ = observed
        spans = list(iter_events(list(obs.tracer.events), "span"))
        assert spans
        assert all("dur_ms" in event for event in spans)


class TestObservedRun:
    """Trace/metrics content of a real MAP-IT run."""

    def test_null_path_results_identical(self, scenario, observed):
        observed_result, _, _ = observed
        plain = run_mapit(
            scenario.traces,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        )
        assert observed_result.to_json() == plain.to_json()

    def test_trace_is_deterministic(self, scenario):
        _, _, first = _observed_run(scenario, profile=False, metrics=False)
        _, _, second = _observed_run(scenario, profile=False, metrics=False)
        assert first == second  # byte-identical JSONL

    def test_run_events_present(self, observed):
        _, obs, _ = observed
        names = {event["event"] for event in obs.tracer.events}
        assert {
            "run.start",
            "run.end",
            "iteration.start",
            "iteration.end",
            "add.pass.end",
            "remove.pass.end",
            "stub.end",
            "inference.added",
            "graph.built",
        } <= names

    def test_inference_events_carry_rule_and_evidence(self, observed):
        _, obs, _ = observed
        added = list(iter_events(list(obs.tracer.events), "inference.added"))
        assert added
        for event in added:
            assert event["rule"] in (
                "direct",
                "propagate",
                "stub",
                "stub_propagate",
            )
            assert "address" in event and "forward" in event
        direct = [event for event in added if event["rule"] == "direct"]
        assert all(event["count"] <= event["total"] for event in direct)

    def test_counters_match_trace(self, observed):
        _, obs, _ = observed
        events = list(obs.tracer.events)
        counters = obs.metrics.to_dict()["counters"]
        direct_added = sum(
            1
            for event in iter_events(events, "inference.added")
            if event["rule"] == "direct"
        )
        assert counters["mapit.inference.direct_added"] == direct_added
        assert counters["mapit.runs"] == 1

    def test_run_end_matches_result(self, observed):
        result, obs, _ = observed
        run_end = next(iter_events(list(obs.tracer.events), "run.end"))
        assert run_end["iterations"] == result.iterations
        assert run_end["converged"] is True
        assert run_end["uncertain"] == len(result.uncertain)


class TestInspect:
    def test_summarize_shapes(self, observed):
        _, obs, _ = observed
        summary = summarize(list(obs.tracer.events))
        assert summary.events_total == len(obs.tracer.events)
        assert summary.passes and summary.convergence and summary.rules
        assert summary.spans  # profiled run
        assert any("converged" in line for line in summary.header_lines())

    def test_pass_table_stage_labels(self, observed):
        _, obs, _ = observed
        stages = [row["stage"] for row in pass_table(list(obs.tracer.events))]
        assert stages[0] == "add 1.1"
        assert stages[-1] == "stub"
        assert any(stage.startswith("remove") for stage in stages)

    def test_convergence_ends_repeated(self, observed):
        _, obs, _ = observed
        rows = convergence_rows(list(obs.tracer.events))
        assert rows[-1]["state_repeated"] == "yes"
        assert all(rows[i]["iteration"] == i + 1 for i in range(len(rows)))

    def test_rule_rows_counts(self, observed):
        _, obs, _ = observed
        rows = rule_rows(list(obs.tracer.events))
        assert {"action": "added", "rule": "direct"} == {
            key: rows[0][key] for key in ("action", "rule")
        }

    def test_slowest_spans_ranked(self, observed):
        _, obs, _ = observed
        rows = slowest_spans(list(obs.tracer.events), top=3)
        totals = [row["total_ms"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        assert len(rows) <= 3


@pytest.fixture()
def dataset_dir(tmp_bundle):
    return tmp_bundle(seed=3)


class TestCliObservability:
    def test_run_writes_trace_and_metrics(self, dataset_dir, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code = main(
            [
                "run",
                str(dataset_dir),
                "--output",
                str(tmp_path / "out.txt"),
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
                "--profile",
            ]
        )
        assert code == 0
        events = read_trace(trace)
        names = {event["event"] for event in events}
        assert {"ingest.end", "run.start", "run.end", "span"} <= names
        exported = json.loads(metrics.read_text())
        assert exported["counters"]["mapit.runs"] == 1
        assert any(name.startswith("span.") for name in exported["timers"])

    def test_cli_trace_deterministic(self, dataset_dir, tmp_path, capsys):
        first = tmp_path / "t1.jsonl"
        second = tmp_path / "t2.jsonl"
        for path in (first, second):
            args = ["run", str(dataset_dir), "--output", str(tmp_path / "o.txt")]
            assert main(args + ["--trace", str(path)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_inspect_trace_output(self, dataset_dir, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(
            [
                "run",
                str(dataset_dir),
                "--output",
                str(tmp_path / "o.txt"),
                "--trace",
                str(trace),
                "--profile",
            ]
        )
        capsys.readouterr()
        assert main(["inspect-trace", str(trace), "--rules", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "per-pass inference deltas:" in out
        assert "convergence (live inferences per outer iteration):" in out
        assert "rule census:" in out
        assert "slowest spans" in out
        assert "add 1.1" in out

    def test_inspect_trace_missing_file(self, tmp_path, capsys):
        assert main(["inspect-trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "fig7.jsonl"
        code = main(
            [
                "experiment",
                "fig7",
                "--scale",
                "small",
                "--seed",
                "3",
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        events = read_trace(trace)
        assert any(event["event"] == "checkpoint" for event in events)
