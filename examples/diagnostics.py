#!/usr/bin/env python3
"""Network diagnostics with MAP-IT: explanations, AS graphs, and the
traceroute-vs-BGP completeness question.

The paper motivates MAP-IT with diagnostics use-cases — locating AS
boundaries for congestion measurement and failure analysis.  This
example shows the post-inference tooling a diagnostician would use:

* `explain_interface` — the section 3.1 walk-through, automated: why
  exactly was this interface inferred (or not)?
* `ASLinkGraph` — the AS-level adjacency graph implied by the
  inferences, with per-link interface evidence;
* `compare_with_relationships` — which inferred adjacencies are
  confirmed by BGP-derived relationship data, and which are
  traceroute-only.

Run:  python examples/diagnostics.py
"""

from repro import MapItConfig
from repro.analysis import (
    ASLinkGraph,
    compare_with_relationships,
    explain_interface,
    run_report,
)
from repro.core.mapit import MapIt
from repro.graph.neighbors import build_interface_graph
from repro.sim.presets import small_scenario
from repro.traceroute.sanitize import sanitize_traces


def main() -> None:
    scenario = small_scenario(seed=7)
    report = sanitize_traces(scenario.traces)
    graph = build_interface_graph(
        report.traces, all_addresses=report.all_addresses
    )
    mapit = MapIt(
        graph,
        scenario.ip2as,
        org=scenario.as2org,
        rel=scenario.relationships,
        config=MapItConfig(f=0.5),
    )
    result = mapit.run()

    print(run_report(result, scenario.relationships, scenario.as2org))

    # Explain the strongest direct inference in full detail.
    strongest = max(
        (i for i in result.inferences if i.kind == "direct"),
        key=lambda i: len(
            graph.neighbors(i.address, i.forward)
        ),
    )
    print("\n--- explanation of the best-supported inference ---")
    print(explain_interface(mapit, strongest.address).render())

    # The AS-level view, checked against BGP-derived adjacencies.
    as_graph = ASLinkGraph.from_result(
        result, scenario.relationships, scenario.as2org
    )
    comparison = compare_with_relationships(as_graph, scenario.relationships)
    print("\n--- AS-level links vs BGP-derived adjacencies ---")
    print(comparison.summary())
    best = max(as_graph.links(), key=lambda link: link.support)
    print(
        f"best-evidenced AS link: AS{best.pair[0]} <-> AS{best.pair[1]} "
        f"({best.support} interfaces, {sorted(best.kinds)}, "
        f"{best.link_type.value if best.link_type else 'unclassified'})"
    )


if __name__ == "__main__":
    main()
