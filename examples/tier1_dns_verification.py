#!/usr/bin/env python3
"""Tier-1 verification through DNS hostnames (paper section 5.1.2).

The paper cannot get interface lists from Level 3 or TeliaSonera, so it
reconstructs approximate ground truth from their DNS naming
conventions: ``cogent-ic-309423-den-b1.c.telia.net`` tags an
interconnection with Cogent, ``ae-41-41.ebr1.berlin1.level3.net`` is
internal gear.  This example does the same against the two synthetic
tier-1 operators: synthesizes hostnames (with missing names and stale
tags, the paper's two noise sources), classifies them, builds the
verification dataset, and scores MAP-IT against it.

Run:  python examples/tier1_dns_verification.py
"""

from collections import Counter

from repro import MapItConfig
from repro.dns.naming import generate_hostnames
from repro.dns.verification import classify_hostname
from repro.eval.experiment import prepare_experiment
from repro.sim.presets import paper_scenario


def main() -> None:
    scenario = paper_scenario(seed=7)
    tier1s = scenario.tier1_asns[:2]
    hostnames = generate_hostnames(
        scenario.network,
        scenario.ground_truth,
        tier1s,
        seed=7,
        coverage=0.9,          # some interfaces lack hostnames
        stale_probability=0.02,  # some tags name an old neighbor
    )
    kinds = Counter(classify_hostname(name)[0] for name in hostnames.names.values())
    print(f"synthesized {len(hostnames)} hostnames: {dict(kinds)}")
    sample = next(
        name for name in hostnames.names.values() if "-ic-" in name
    )
    print(f"example interconnection hostname: {sample}")

    # prepare_experiment builds the hostname-derived datasets for the
    # two tier-1s (labelled T1-A / T1-B) the same way.
    experiment = prepare_experiment(
        scenario, hostname_coverage=0.9, hostname_staleness=0.02
    )
    result = experiment.run_mapit(MapItConfig(f=0.5))
    scores = experiment.score(result.inferences)

    print("\nscores against hostname-derived approximate ground truth:")
    for label in ("T1-A", "T1-B"):
        dataset = experiment.datasets[label]
        score = scores[label]
        print(
            f"  {label} (AS{dataset.target_as}): "
            f"{len(dataset.links())} tagged links, "
            f"TP={score.tp} FP={score.fp} FN={score.fn} "
            f"P={score.precision:.3f} R={score.recall:.3f} "
            f"{dict(score.fp_reasons)}"
        )

    print(
        "\nAs in the paper, stale tags and missing hostnames inflate "
        "the apparent false positives: the DNS datasets are noisy "
        "approximations, which is why the paper reports ~95% precision "
        "there versus 100% against Internet2's authoritative list."
    )


if __name__ == "__main__":
    main()
