#!/usr/bin/env python3
"""Robustness to traceroute artifacts (paper sections 4.7, 5.7).

The paper's anecdote: 4.68.110.186 kept 113/141 forward neighbors in
AS701 despite 5 anomalous AS3356 entries from transient routing
changes, and MAP-IT still inferred the Level3<->Verizon link.  Here we
sweep the simulator's artifact intensities — per-packet load
balancing, third-party (egress) replies, transient route changes —
and measure how MAP-IT's precision degrades, compared with the Simple
heuristic, which has no defence at all.

Run:  python examples/artifact_robustness.py
"""

from dataclasses import replace

from repro import MapItConfig, run_mapit
from repro.baselines.simple import simple_heuristic
from repro.sim.network import NetworkConfig
from repro.sim.presets import small_config
from repro.sim.scenario import build_scenario
from repro.sim.tracer import TracerConfig
from repro.traceroute.sanitize import sanitize_traces


def precision_against_truth(inferences, truth):
    observed = [i for i in inferences if i.kind != "indirect"]
    if not observed:
        return 1.0
    correct = sum(
        1 for i in observed if truth.connected_pair(i.address) == i.pair()
    )
    return correct / len(observed)


def main() -> None:
    print(
        f"{'intensity':>9}  {'discarded':>9}  {'MAP-IT prec':>11}  "
        f"{'Simple prec':>11}"
    )
    for intensity in (0.0, 0.5, 1.0, 2.0, 4.0):
        config = small_config(seed=11)
        config = replace(
            config,
            network=NetworkConfig(
                seed=11,
                per_packet_lb_fraction=0.02 * intensity,
                egress_reply_fraction=0.05 * intensity,
                buggy_ttl_fraction=0.01 * intensity,
            ),
            tracer=TracerConfig(
                seed=11, transient_change_probability=0.02 * intensity
            ),
        )
        scenario = build_scenario(config)
        report = sanitize_traces(scenario.traces)
        result = run_mapit(
            scenario.traces,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        )
        mapit_precision = precision_against_truth(
            result.inferences, scenario.ground_truth
        )
        simple = simple_heuristic(report.traces, scenario.ip2as)
        simple_precision = precision_against_truth(
            simple, scenario.ground_truth
        )
        print(
            f"{intensity:>9.1f}  {report.discard_fraction:>9.3f}  "
            f"{mapit_precision:>11.3f}  {simple_precision:>11.3f}"
        )

    print(
        "\nMAP-IT's neighbor-set counting, contradiction fixes, and "
        "remove step absorb moderate artifact rates; the per-trace "
        "Simple heuristic degrades immediately (section 4.7)."
    )


if __name__ == "__main__":
    main()
