#!/usr/bin/env python3
"""Running MAP-IT on your own traceroute data.

This example reproduces the paper's Fig 2/3 walk-through by hand: a
handful of traces through an Internet2-like neighborhood, a
prefix-to-AS table, and nothing else.  It shows the exact multipass
behaviour of section 4.4.1 — the NYSERNet link interface 199.109.5.1
is uninferable on the first pass (its backward neighbor set is tied)
and becomes inferable once the mappings of the New York router's
ingress interfaces refine to AS11537.

Run:  python examples/custom_traces.py
"""

from repro import MapItConfig, run_mapit
from repro.bgp.ip2as import IP2AS
from repro.traceroute.parse import parse_text_traces

# Trace format: monitor|destination|hop hop hop ...  ('*' = no reply)
TRACES = """\
m1|198.71.46.99|109.105.98.10 198.71.46.180
m1|198.71.45.99|109.105.98.10 198.71.45.2
m1|199.109.5.99|109.105.98.10 199.109.5.1 199.109.5.99
m2|198.71.46.99|216.249.136.196 198.71.46.180
m2|198.71.45.99|216.249.136.196 198.71.45.2
m2|199.109.5.98|216.249.136.196 199.109.5.1 199.109.5.98
"""

# BGP-derived prefix origins, as you would extract from RIB dumps.
PREFIX_TO_AS = [
    ("109.105.98.0/24", 2603),   # NORDUnet
    ("216.249.136.0/24", 237),   # Merit
    ("198.71.44.0/22", 11537),   # Internet2
    ("199.109.5.0/24", 3754),    # NYSERNet
]

NAMES = {2603: "NORDUnet", 237: "Merit", 11537: "Internet2", 3754: "NYSERNet"}


def main() -> None:
    traces = list(parse_text_traces(TRACES.splitlines()))
    ip2as = IP2AS.from_pairs(PREFIX_TO_AS)

    result = run_mapit(traces, ip2as, config=MapItConfig(f=0.5))

    print("inferred inter-AS link interfaces:")
    for inference in result.inferences:
        local = NAMES.get(inference.local_as, f"AS{inference.local_as}")
        remote = NAMES.get(inference.remote_as, f"AS{inference.remote_as}")
        print(f"  {inference}   # {local} <-> {remote}")

    print(
        "\nNote 199.109.5.1_b: on the first pass its backward neighbor "
        "set is {AS2603, AS237} — a tie.  The direct inferences on "
        "109.105.98.10_f and 216.249.136.196_f update both mappings to "
        "AS11537, and the second pass infers the Internet2<->NYSERNet "
        "link.  That is the multipass refinement of section 4.4.1."
    )


if __name__ == "__main__":
    main()
