#!/usr/bin/env python3
"""Internet2-style verification (paper sections 5.1.1, 5.3).

Builds the paper-scale scenario, whose R&E network mimics Internet2 —
including the convention violation of numbering transit links from the
*customer's* address space — runs MAP-IT at several values of f, and
scores against the complete interface-level ground truth, exactly as
the paper scores against Internet2's interface list.

Run:  python examples/internet2_verification.py
"""

from repro import MapItConfig
from repro.eval.breakdown import breakdown_by_relationship
from repro.eval.experiment import prepare_experiment
from repro.sim.presets import paper_scenario


def main() -> None:
    scenario = paper_scenario(seed=7)
    experiment = prepare_experiment(scenario)
    dataset = experiment.datasets["I2"]
    print(
        f"R&E network AS{scenario.re_asn}: "
        f"{len(dataset.links())} inter-AS links in the ground-truth "
        f"dataset, {len(dataset.eligible)} eligible for recall, "
        f"{dataset.excluded} excluded (no adjacent address from the "
        f"connected AS), {len(dataset.internal)} internal interfaces"
    )

    print("\nprecision/recall vs f (the Fig 6 trade-off):")
    print(f"  {'f':>4}  {'TP':>4} {'FP':>4} {'FN':>4}  {'prec':>6}  {'recall':>6}")
    for f in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        result = experiment.run_mapit(MapItConfig(f=f))
        score = experiment.score(result.inferences)["I2"]
        print(
            f"  {f:>4.1f}  {score.tp:>4} {score.fp:>4} {score.fn:>4}"
            f"  {score.precision:>6.3f}  {score.recall:>6.3f}"
        )

    print("\nbreakdown by AS relationship at f=0.5 (Table 1 style):")
    result = experiment.run_mapit(MapItConfig(f=0.5))
    breakdown = breakdown_by_relationship(
        result.inferences,
        dataset,
        scenario.relationships,
        scenario.as2org,
        experiment.graph,
    )
    for row in breakdown.rows():
        print(
            f"  {row['class']:<14} TP={row['TP']:<4} FP={row['FP']:<3} "
            f"FN={row['FN']:<3} P={row['Precision%']}% R={row['Recall%']}%"
        )


if __name__ == "__main__":
    main()
