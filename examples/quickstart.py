#!/usr/bin/env python3
"""Quickstart: generate a small synthetic Internet, run MAP-IT, and
inspect the inferred inter-AS link interfaces.

Run:  python examples/quickstart.py
"""

from repro import MapItConfig, run_mapit
from repro.sim.presets import small_scenario


def main() -> None:
    # A seeded synthetic world: AS hierarchy, routers, addressed links,
    # BGP collectors, and a traceroute campaign with realistic
    # artifacts (load balancing, third-party addresses, NATed stubs).
    scenario = small_scenario(seed=7)
    print(
        f"world: {len(scenario.graph)} ASes, "
        f"{len(scenario.network.routers)} routers, "
        f"{len(scenario.traces)} traceroutes from "
        f"{len(scenario.monitors)} monitors"
    )

    # Run MAP-IT with the paper's recommended f = 0.5.  The traces are
    # sanitized (section 4.1), neighbor sets built (section 4.3), and
    # the multipass add/remove loop run to convergence (section 4.4-6).
    result = run_mapit(
        scenario.traces,
        scenario.ip2as,
        org=scenario.as2org,
        rel=scenario.relationships,
        config=MapItConfig(f=0.5),
    )

    summary = result.summary()
    print(
        f"\nMAP-IT: {summary['inferences']} inferences on "
        f"{summary['interfaces']} interfaces covering "
        f"{summary['as_links']} AS-level links "
        f"(converged after {summary['iterations']} iterations)"
    )

    print("\nfirst ten inferred inter-AS link interfaces:")
    for inference in result.inferences[:10]:
        print(f"  {inference}")

    # The simulator knows the truth, so we can check ourselves.
    truth = scenario.ground_truth
    direct = [i for i in result.inferences if i.kind != "indirect"]
    correct = sum(
        1 for i in direct if truth.connected_pair(i.address) == i.pair()
    )
    print(
        f"\nagainst ground truth: {correct}/{len(direct)} directly-observed "
        f"inferences name the right interface and AS pair"
    )


if __name__ == "__main__":
    main()
