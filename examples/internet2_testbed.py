#!/usr/bin/env python3
"""The paper's Internet2 neighborhood, end to end.

`repro.sim.internet2` hand-builds the world of Figs 1, 2 and 5 with
the paper's literal addresses: NORDUnet peering at New York over
109.105.98.8/30 (so the New York router's ingress is 109.105.98.10),
NYSERNet's customer-space-numbered 199.109.5.0/30, U. Montana's two
Internet2-numbered links, and UPenn sitting behind MAGPI.  This
example traces through it with the real simulator, runs MAP-IT, and
prints each inferred link with the networks' names — then explains
the headline interface the way section 3.1 does.

Run:  python examples/internet2_testbed.py
"""

from repro import MapItConfig
from repro.analysis import explain_interface
from repro.core.mapit import MapIt
from repro.graph.neighbors import build_interface_graph
from repro.net.ipv4 import parse_address
from repro.sim.internet2 import internet2_testbed
from repro.traceroute.sanitize import sanitize_traces


def main() -> None:
    testbed = internet2_testbed()
    traces = testbed.trace_all(flows=2, targets_per_as=4)
    print(
        f"testbed: {len(testbed.graph)} ASes, "
        f"{len(testbed.network.routers)} routers, {len(traces)} traces "
        f"from {len(testbed.monitors)} monitors"
    )

    report = sanitize_traces(traces)
    graph = build_interface_graph(report.traces, all_addresses=report.all_addresses)
    mapit = MapIt(
        graph,
        testbed.ip2as,
        org=testbed.as2org,
        rel=testbed.relationships,
        config=MapItConfig(f=0.5),
    )
    result = mapit.run()

    print("\ninferred inter-AS links:")
    for inference in result.inferences:
        local = testbed.names.get(inference.local_as, f"AS{inference.local_as}")
        remote = testbed.names.get(inference.remote_as, f"AS{inference.remote_as}")
        print(f"  {inference}   # {local} <-> {remote}")

    print("\n--- the section 3.1 walk-through, automated ---")
    print(explain_interface(mapit, parse_address("109.105.98.10")).render())

    truth = testbed.ground_truth
    observed = [i for i in result.inferences if i.kind != "indirect"]
    correct = sum(
        1 for i in observed if truth.connected_pair(i.address) == i.pair()
    )
    print(
        f"\nagainst the testbed's ground truth: {correct}/{len(observed)} "
        f"directly-observed inferences are exactly right"
    )


if __name__ == "__main__":
    main()
