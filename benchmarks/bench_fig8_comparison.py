"""Fig 8: MAP-IT versus existing approaches.

Runs the Simple heuristic, the Convention heuristic, the two
ITDK-style router-graph pipelines, and MAP-IT (f=0.5) over one trace
dataset and scores all five against every verification network.
Expected shape (paper section 5.6): MAP-IT's precision dominates every
comparator on every network; Convention beats Simple on the tier-1s
but loses on the R&E network (customer-space-numbered transit links);
the ITDK variants land between the per-trace heuristics and MAP-IT.
"""

from conftest import publish

from repro.eval.compare import (
    CONVENTION,
    ITDK_KAPAR,
    ITDK_MIDAR,
    MAPIT,
    SIMPLE,
    compare_methods,
)


def test_fig8_method_comparison(benchmark, paper_experiment):
    comparison = benchmark.pedantic(
        compare_methods, args=(paper_experiment,), rounds=1, iterations=1
    )
    publish("fig8_comparison", "Fig 8: precision/recall by method", comparison.rows())

    scores = comparison.scores
    for label in paper_experiment.labels():
        mapit = scores[MAPIT][label].precision
        for method in (SIMPLE, CONVENTION, ITDK_MIDAR, ITDK_KAPAR):
            assert mapit > scores[method][label].precision, (label, method)
    # Convention's provider-space assumption backfires on the R&E
    # network but helps on the commodity tier-1s.
    assert scores[CONVENTION]["I2"].recall <= scores[SIMPLE]["I2"].recall
    # Per-trace heuristics are drastically less precise than MAP-IT.
    for label in paper_experiment.labels():
        assert scores[SIMPLE][label].precision < 0.6
