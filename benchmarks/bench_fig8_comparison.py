"""Fig 8: MAP-IT versus existing approaches, via ``mapit sweep``.

A thin driver over the sweep orchestrator: one compare-kind sweep cell
at f=0.5 over the paper world runs the Simple heuristic, the
Convention heuristic, the two ITDK-style router-graph pipelines, and
MAP-IT, scoring all five against every verification network.  Expected
shape (paper section 5.6): MAP-IT's precision dominates every
comparator on every network; Convention beats Simple on the tier-1s
but loses on the R&E network (customer-space-numbered transit links);
the ITDK variants land between the per-trace heuristics and MAP-IT.
"""

from conftest import PAPER_SEED, publish

from repro.eval.compare import CONVENTION, ITDK_KAPAR, ITDK_MIDAR, MAPIT, SIMPLE
from repro.sweep import SweepGrid, SweepPlan, run_sweep


def _run(tmp_root):
    grid = SweepGrid.build(["paper"], [PAPER_SEED], [0.5], "compare")
    plan = SweepPlan(
        grid=grid,
        workdir=tmp_root / "work",
        out_dir=tmp_root / "out",
        journal_dir=tmp_root / "journal",
        jobs=1,
    )
    run_sweep(plan)
    import json

    cell_id = grid.cells()[0].cell_id
    path = plan.out_dir / "cells" / f"{cell_id}.json"
    return json.loads(path.read_text())["methods"]


def test_fig8_method_comparison(benchmark, tmp_path_factory):
    tmp_root = tmp_path_factory.mktemp("fig8")
    methods = benchmark.pedantic(_run, args=(tmp_root,), rounds=1, iterations=1)

    labels = sorted(methods[MAPIT])
    rows = [
        {
            "method": method,
            "network": label,
            "tp": methods[method][label]["tp"],
            "fp": methods[method][label]["fp"],
            "fn": methods[method][label]["fn"],
            "precision": round(methods[method][label]["precision"], 3),
            "recall": round(methods[method][label]["recall"], 3),
        }
        for method in sorted(methods)
        for label in labels
    ]
    publish("fig8_comparison", "Fig 8: precision/recall by method", rows)

    for label in labels:
        mapit = methods[MAPIT][label]["precision"]
        for method in (SIMPLE, CONVENTION, ITDK_MIDAR, ITDK_KAPAR):
            assert mapit > methods[method][label]["precision"], (label, method)
    # Convention's provider-space assumption backfires on the R&E
    # network but helps on the commodity tier-1s.
    assert methods[CONVENTION]["I2"]["recall"] <= methods[SIMPLE]["I2"]["recall"]
    # Per-trace heuristics are drastically less precise than MAP-IT.
    for label in labels:
        assert methods[SIMPLE][label]["precision"] < 0.6
