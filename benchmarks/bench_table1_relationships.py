"""Table 1: inferences broken down by AS relationship type.

For each verification network, TP/FP/FN and precision/recall are
tallied per relationship class (ISP Transit / Peer / Stub Transit) at
f = 0.5.  Expected shape (paper section 5.4): stub transit dominates
the tier-1 counts; precision dips for peer links relative to transit;
totals sit in the paper's 94-100% precision band.
"""

from conftest import publish

from repro import MapItConfig
from repro.eval.breakdown import breakdown_by_relationship


def _run(experiment):
    result = experiment.run_mapit(MapItConfig(f=0.5))
    scenario = experiment.scenario
    tables = {}
    for label, dataset in experiment.datasets.items():
        tables[label] = breakdown_by_relationship(
            result.inferences,
            dataset,
            scenario.relationships,
            scenario.as2org,
            experiment.graph,
        )
    return tables


def test_table1_relationship_breakdown(benchmark, paper_experiment):
    tables = benchmark.pedantic(
        _run, args=(paper_experiment,), rounds=1, iterations=1
    )
    rows = []
    for label, breakdown in tables.items():
        for row in breakdown.rows():
            out = {"network": label}
            out.update(row)
            rows.append(out)
    publish("table1_relationships", "Table 1: results by AS relationship", rows)

    for label, breakdown in tables.items():
        total = breakdown.total()
        assert total.precision > 0.8, (label, str(total))
        assert total.recall > 0.6, (label, str(total))
