"""Shared benchmark fixtures: the paper-scale experiment, built once.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows to ``benchmarks/results/<name>.txt`` so the
numbers are inspectable after a ``pytest benchmarks/ --benchmark-only``
run (stdout is captured by pytest unless ``-s`` is passed).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable

import pytest

from repro.eval.experiment import Experiment, prepare_experiment
from repro.sim.presets import paper_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: the seed every table/figure benchmark uses, for cross-referencing
PAPER_SEED = 7


@pytest.fixture(scope="session")
def paper_experiment() -> Experiment:
    """The evaluation-scale scenario behind all table/figure benches."""
    return prepare_experiment(paper_scenario(seed=PAPER_SEED))


def format_rows(rows: Iterable[Dict]) -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)\n"
    headers = list(rows[0].keys())
    widths = {
        header: max(len(str(header)), *(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    lines = [
        "  ".join(str(header).ljust(widths[header]) for header in headers)
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            "  ".join(
                str(row.get(header, "")).ljust(widths[header]) for header in headers
            )
        )
    return "\n".join(lines) + "\n"


def publish(name: str, title: str, rows: Iterable[Dict]) -> None:
    """Write a reproduced table to the results directory and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"# {title}\n\n{format_rows(rows)}"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
