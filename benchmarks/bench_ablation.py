"""Ablation: the contribution of each refinement mechanism.

DESIGN.md calls out the design choices the paper argues for —
resolving dual inferences, removing adjacent inverse inferences, the
remove step, and the stub heuristic.  Each is disabled in turn and the
resulting precision/recall (averaged over the three verification
networks) is reported next to the full algorithm.
"""

from dataclasses import replace

from conftest import publish

from repro import MapItConfig

VARIANTS = (
    ("full", {}),
    ("no dual fix", {"fix_dual_inferences": False}),
    ("no inverse fix", {"fix_inverse_inferences": False}),
    ("no remove step", {"enable_remove_step": False}),
    ("no stub heuristic", {"enable_stub_heuristic": False}),
    ("no fixes at all", {
        "fix_dual_inferences": False,
        "fix_inverse_inferences": False,
        "fix_divergent_other_sides": False,
        "enable_remove_step": False,
        "enable_stub_heuristic": False,
    }),
)


def _run(experiment):
    rows = []
    for name, overrides in VARIANTS:
        config = replace(MapItConfig(f=0.5), **overrides)
        result = experiment.run_mapit(config)
        scores = experiment.score(result.inferences)
        tp = sum(score.tp for score in scores.values())
        fp = sum(score.fp for score in scores.values())
        fn = sum(score.fn for score in scores.values())
        rows.append(
            {
                "variant": name,
                "TP": tp,
                "FP": fp,
                "FN": fn,
                "precision": round(tp / (tp + fp), 3) if tp + fp else 1.0,
                "recall": round(tp / (tp + fn), 3) if tp + fn else 1.0,
                "inferences": len(result.inferences),
            }
        )
    return rows


def test_ablation(benchmark, paper_experiment):
    rows = benchmark.pedantic(_run, args=(paper_experiment,), rounds=1, iterations=1)
    publish("ablation", "Ablation: per-mechanism contribution", rows)
    by_name = {row["variant"]: row for row in rows}
    full = by_name["full"]
    # Removing every safeguard must not improve precision.
    assert by_name["no fixes at all"]["precision"] <= full["precision"] + 1e-9
    # The stub heuristic only adds coverage.
    assert by_name["no stub heuristic"]["TP"] <= full["TP"]
