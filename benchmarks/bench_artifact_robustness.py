"""Section 5.7: resilience to traceroute artifacts.

Sweeps the simulator's artifact intensities (per-packet load
balancing, third-party egress replies, buggy-TTL routers, transient
route changes) and reports MAP-IT's precision against exact ground
truth at each level, next to the Simple heuristic.  Expected shape:
MAP-IT degrades gracefully where the per-trace heuristic is uniformly
poor.
"""

from dataclasses import replace

from conftest import publish

from repro import MapItConfig, run_mapit
from repro.baselines.simple import simple_heuristic
from repro.sim.network import NetworkConfig
from repro.sim.presets import small_config
from repro.sim.scenario import build_scenario
from repro.sim.tracer import TracerConfig
from repro.traceroute.sanitize import sanitize_traces

INTENSITIES = (0.0, 1.0, 2.0, 4.0)


def _precision(inferences, truth):
    observed = [i for i in inferences if i.kind != "indirect"]
    if not observed:
        return 1.0
    correct = sum(1 for i in observed if truth.connected_pair(i.address) == i.pair())
    return correct / len(observed)


def _sweep():
    rows = []
    for intensity in INTENSITIES:
        config = replace(
            small_config(seed=11),
            network=NetworkConfig(
                seed=11,
                per_packet_lb_fraction=0.02 * intensity,
                egress_reply_fraction=0.05 * intensity,
                buggy_ttl_fraction=0.01 * intensity,
            ),
            tracer=TracerConfig(seed=11, transient_change_probability=0.02 * intensity),
        )
        scenario = build_scenario(config)
        report = sanitize_traces(scenario.traces)
        result = run_mapit(
            scenario.traces,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        )
        rows.append(
            {
                "intensity": intensity,
                "discard_fraction": round(report.discard_fraction, 4),
                "mapit_precision": round(
                    _precision(result.inferences, scenario.ground_truth), 3
                ),
                "simple_precision": round(
                    _precision(
                        simple_heuristic(report.traces, scenario.ip2as),
                        scenario.ground_truth,
                    ),
                    3,
                ),
            }
        )
    return rows


def test_artifact_robustness(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    publish("artifact_robustness", "Section 5.7: artifact robustness", rows)
    for row in rows:
        assert row["mapit_precision"] > row["simple_precision"] + 0.3
        assert row["mapit_precision"] > 0.8
