"""Fig 6: the impact of the f parameter, driven through ``mapit sweep``.

A thin driver over the sweep orchestrator: one experiment-kind sweep
over the paper world with f from 0.0 to 1.0 in steps of 0.1, scores
read back from the per-cell result documents.  Expected shape (paper
section 5.3): precision is worst at low f, improves toward the middle
of the range, and degrades again at f >= 0.9 where MAP-IT can no
longer refine its mappings; recall is roughly flat at low f and
collapses at high f.
"""

from conftest import PAPER_SEED, publish

from repro.sweep import SweepGrid, SweepPlan, run_sweep

F_VALUES = tuple(round(0.1 * step, 1) for step in range(11))


def _run(tmp_root):
    grid = SweepGrid.build(["paper"], [PAPER_SEED], F_VALUES, "experiment")
    plan = SweepPlan(
        grid=grid,
        workdir=tmp_root / "work",
        out_dir=tmp_root / "out",
        journal_dir=tmp_root / "journal",
        jobs=1,
    )
    outcome = run_sweep(plan)
    import json

    by_f = {}
    for cell in grid.cells():
        path = plan.out_dir / "cells" / f"{cell.cell_id}.json"
        by_f[cell.f] = json.loads(path.read_text())["scores"]
    return by_f


def test_fig6_f_sweep(benchmark, tmp_path_factory):
    tmp_root = tmp_path_factory.mktemp("fig6")
    by_f = benchmark.pedantic(_run, args=(tmp_root,), rounds=1, iterations=1)

    labels = sorted(by_f[0.5])
    rows = [
        {
            "f": f,
            "network": label,
            "tp": by_f[f][label]["tp"],
            "fp": by_f[f][label]["fp"],
            "fn": by_f[f][label]["fn"],
            "precision": round(by_f[f][label]["precision"], 3),
            "recall": round(by_f[f][label]["recall"], 3),
        }
        for f in sorted(by_f)
        for label in labels
    ]
    publish("fig6_fsweep", "Fig 6: precision/recall vs f", rows)

    for label in labels:
        tp_low = by_f[0.1][label]["tp"]
        tp_high = by_f[1.0][label]["tp"]
        # Recall at f=1.0 must not exceed the low-f recall (collapse).
        assert tp_high <= tp_low, label
    # Precision at the paper's recommended f=0.5 is high everywhere.
    for label, score in by_f[0.5].items():
        assert score["precision"] > 0.75, (label, score)
