"""Fig 6: the impact of the f parameter.

Sweeps f from 0.0 to 1.0 in steps of 0.1 and scores each run against
all three verification networks.  Expected shape (paper section 5.3):
precision is worst at low f, improves toward the middle of the range,
and degrades again at f >= 0.9 where MAP-IT can no longer refine its
mappings; recall is roughly flat at low f and collapses at high f.
"""

from conftest import publish

from repro.eval.fsweep import sweep_f


def test_fig6_f_sweep(benchmark, paper_experiment):
    result = benchmark.pedantic(
        sweep_f, args=(paper_experiment,), rounds=1, iterations=1
    )
    publish("fig6_fsweep", "Fig 6: precision/recall vs f", result.rows())

    for label in paper_experiment.labels():
        recall = dict(result.series(label, "recall"))
        tp_low = result.scores[0.1][label].tp
        tp_high = result.scores[1.0][label].tp
        # Recall at f=1.0 must not exceed the low-f recall (collapse).
        assert tp_high <= tp_low, label
    # Precision at the paper's recommended f=0.5 is high everywhere.
    for label, score in result.scores[0.5].items():
        assert score.precision > 0.75, (label, str(score))
