"""Section 5.4's remedy, quantified: probe density vs recall.

The paper notes that missed ISP-transit links could be recovered by
"targeting the links with additional traces, which could expose more
interface addresses and enable more inferences."  This bench sweeps
the number of probe targets per announced prefix and reports the
aggregate recall (and precision) across the three verification
networks.
"""

from dataclasses import replace

from conftest import PAPER_SEED, publish

from repro import MapItConfig
from repro.eval.experiment import prepare_experiment
from repro.sim.presets import paper_config
from repro.sim.scenario import build_scenario

DENSITIES = (2, 4, 6)


def _sweep():
    rows = []
    for density in DENSITIES:
        config = replace(paper_config(PAPER_SEED), targets_per_prefix=density)
        experiment = prepare_experiment(build_scenario(config))
        result = experiment.run_mapit(MapItConfig(f=0.5))
        scores = experiment.score(result.inferences)
        tp = sum(score.tp for score in scores.values())
        fp = sum(score.fp for score in scores.values())
        fn = sum(score.fn for score in scores.values())
        rows.append(
            {
                "targets_per_prefix": density,
                "traces": len(experiment.scenario.traces),
                "TP": tp,
                "FP": fp,
                "FN": fn,
                "precision": round(tp / (tp + fp), 3) if tp + fp else 1.0,
                "recall": round(tp / (tp + fn), 3) if tp + fn else 1.0,
            }
        )
    return rows


def test_probe_density(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    publish("probe_density", "Section 5.4: probe density vs recall", rows)
    # More probing never leaves fewer links inferable: recall at the
    # highest density meets or beats the sparsest one.
    assert rows[-1]["recall"] >= rows[0]["recall"] - 0.05
