"""Ingestion robustness: corruption rate vs accuracy and load success.

Damages a saved dataset's ``traces.txt`` at increasing line-corruption
rates with the deterministic fault injector (garbled lines, invalid
addresses, null fields, byte flips), then loads it back in lenient
mode and runs MAP-IT on the survivors.  Reported per rate: how many
records were rejected, whether a default error budget (10%) would
admit the load, and the precision of the inferences that survive.
Expected shape: load success flips to no past the budget, while
precision on the surviving traces stays flat — lenient mode loses
coverage, not correctness.
"""

import tempfile
from pathlib import Path

from conftest import publish

from repro import MapItConfig
from repro.io import load_bundle, save_scenario
from repro.robust import ErrorBudgetExceeded, FaultInjector
from repro.sim.presets import small_scenario

RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)
BUDGET = 0.1  # the CLI's default --max-error-rate
SEED = 11


def _precision(inferences, truth):
    observed = [i for i in inferences if i.kind != "indirect"]
    if not observed:
        return 1.0
    correct = sum(1 for i in observed if truth.connected_pair(i.address) == i.pair())
    return correct / len(observed)


def _sweep():
    scenario = small_scenario(seed=SEED)
    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        clean = save_scenario(scenario, Path(workdir) / "clean")
        clean_lines = (clean / "traces.txt").read_text().splitlines()
        for rate in RATES:
            injector = FaultInjector(seed=SEED)
            damaged, faults = injector.corrupt_lines(clean_lines, rate)
            (clean / "traces.txt").write_text("\n".join(damaged) + "\n")
            try:
                load_bundle(clean, on_error="lenient", max_error_rate=BUDGET)
                within_budget = True
            except ErrorBudgetExceeded:
                within_budget = False
            bundle = load_bundle(clean, on_error="lenient")
            report = bundle.health.ingest
            assert report.malformed == len(faults)
            result = bundle.run_mapit(MapItConfig(f=0.5))
            rows.append(
                {
                    "corruption_rate": rate,
                    "malformed": report.malformed,
                    "survivors": report.parsed,
                    "load_ok_at_10%_budget": "yes" if within_budget else "no",
                    "precision": round(
                        _precision(result.inferences, scenario.ground_truth), 3
                    ),
                    "inferences": len(result.inferences),
                }
            )
    return rows


def test_ingest_robustness(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    publish(
        "ingest_robustness",
        "Ingestion robustness: corruption rate vs accuracy and load success",
        rows,
    )
    by_rate = {row["corruption_rate"]: row for row in rows}
    assert by_rate[0.0]["malformed"] == 0
    assert by_rate[0.0]["load_ok_at_10%_budget"] == "yes"
    assert by_rate[0.4]["load_ok_at_10%_budget"] == "no"
    # lenient ingestion loses coverage, not correctness: precision on
    # the surviving traces stays high at every corruption level
    for row in rows:
        assert row["precision"] >= 0.85, row
    survivors = [row["survivors"] for row in rows]
    assert survivors == sorted(survivors, reverse=True)
