"""Section 1 motivation, quantified: AS-level traceroute accuracy.

The paper motivates MAP-IT with "more precisely identifying the ASes
traversed on a traceroute path" (after Mao et al.).  This bench scores
per-hop AS attribution against the simulator's exact router ownership:
raw BGP origin mapping versus MAP-IT's converged forward-half mappings.
Expected shape: the raw mapping is wrong at the borders (every
neighbor-numbered ingress), and the corrected mapping recovers most of
that gap.
"""

from conftest import publish

from repro import MapItConfig
from repro.analysis.paths import path_accuracy


def _run(experiment):
    mapit = experiment.new_mapit(MapItConfig(f=0.5))
    mapit.run()
    truth = experiment.scenario.ground_truth.router_as
    return path_accuracy(mapit, experiment.report.traces, truth)


def test_aspath_accuracy(benchmark, paper_experiment):
    accuracy = benchmark.pedantic(
        _run, args=(paper_experiment,), rounds=1, iterations=1
    )
    publish(
        "aspath_accuracy",
        "Section 1 motivation: per-hop AS attribution",
        [accuracy.summary()],
    )
    assert accuracy.corrected_accuracy >= accuracy.raw_accuracy
    assert accuracy.corrected_accuracy > 0.95
