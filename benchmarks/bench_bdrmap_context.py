"""Section 6 future work: MAP-IT vs a bdrmap-flavoured baseline.

The paper proposes head-to-head comparisons with bdrmap as future
work.  bdrmap only addresses networks hosting a traceroute monitor, so
the comparison runs in the one context both share: the R&E network
(which hosts a monitor, as one of the paper's verification networks
did).  The bdrmap-like baseline is a passive simplification (see
``repro/baselines/bdrmap_like.py``); expected shape: it finds a good
share of the host's borders from far fewer signals, but off-by-one
exits on host-numbered links hold its precision below MAP-IT's.
"""

from conftest import publish

from repro import MapItConfig
from repro.baselines.bdrmap_like import bdrmap_like
from repro.eval.verify import score_inferences


def _run(experiment):
    scenario = experiment.scenario
    host = scenario.re_asn
    dataset = experiment.datasets["I2"]
    rows = []

    mapit = experiment.run_mapit(MapItConfig(f=0.5))
    host_only = [i for i in mapit.inferences if i.involves(host)]
    score = score_inferences(host_only, dataset, scenario.as2org, experiment.graph)
    row = {"method": "MAP-IT (host links)"}
    row.update(score.row())
    rows.append(row)

    inferences = bdrmap_like(
        experiment.report.traces, host, scenario.ip2as, scenario.relationships
    )
    score = score_inferences(inferences, dataset, scenario.as2org, experiment.graph)
    row = {"method": "bdrmap-like"}
    row.update(score.row())
    rows.append(row)
    return rows


def test_bdrmap_context(benchmark, paper_experiment):
    rows = benchmark.pedantic(_run, args=(paper_experiment,), rounds=1, iterations=1)
    publish(
        "bdrmap_context",
        "Section 6: MAP-IT vs bdrmap-like on the monitor-hosting network",
        rows,
    )
    by_method = {row["method"]: row for row in rows}
    assert (
        by_method["MAP-IT (host links)"]["Precision%"]
        > by_method["bdrmap-like"]["Precision%"]
    )