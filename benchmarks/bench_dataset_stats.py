"""Sections 4.1-4.3 and 5: dataset pipeline statistics.

Reproduces the paper's quoted numbers for its input pipeline: the
fraction of traces discarded for interface cycles (paper: 2.7%), the
distinct-address retention (89.1%), the /31-addressing fraction from
the other-side heuristic (40.4%), the neighbor-set overlap footnote
(0.3%), neighbor-set size counts, and IP2AS coverage (99.2%).
"""

from conftest import publish

from repro.eval.stats import pipeline_stats


def test_dataset_stats(benchmark, paper_experiment):
    stats = benchmark(pipeline_stats, paper_experiment)
    rows = [
        {"statistic": key, "value": value} for key, value in stats.rows().items()
    ]
    publish("dataset_stats", "Sections 4.1-4.3: pipeline statistics", rows)
    assert 0.0 < stats.fraction_31 < 0.65
    assert stats.discard_fraction < 0.1
    assert stats.ip2as_coverage > 0.9
