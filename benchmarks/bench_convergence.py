"""Section 4.6: overall convergence behaviour.

The paper observes convergence (a repeated state at the end of a
remove step) after 3 iterations of the main loop.  This bench runs
MAP-IT across several seeds and reports the iteration counts, plus the
diagnostic counters for the contradiction machinery.
"""

from conftest import PAPER_SEED, publish

from repro import MapItConfig
from repro.eval.experiment import prepare_experiment
from repro.sim.presets import paper_scenario

SEEDS = (PAPER_SEED, 11, 23)


def _run_all():
    rows = []
    for seed in SEEDS:
        experiment = prepare_experiment(paper_scenario(seed=seed))
        result = experiment.run_mapit(MapItConfig(f=0.5))
        scores = experiment.score(result.inferences)
        tp = sum(score.tp for score in scores.values())
        fp = sum(score.fp for score in scores.values())
        fn = sum(score.fn for score in scores.values())
        rows.append(
            {
                "seed": seed,
                "iterations": result.iterations,
                "converged": result.converged,
                "inferences": len(result.inferences),
                "uncertain": len(result.uncertain),
                "dual_resolved": result.diagnostics["dual_resolved"],
                "inverse_removed": result.diagnostics["inverse_removed"],
                "divergent": result.diagnostics["divergent_other_sides"],
                "precision": round(tp / (tp + fp), 3) if tp + fp else 1.0,
                "recall": round(tp / (tp + fn), 3) if tp + fn else 1.0,
            }
        )
    return rows


def test_convergence(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    publish("convergence", "Section 4.6: convergence across seeds", rows)
    for row in rows:
        assert row["converged"]
        # The paper observes 3; allow a little slack across seeds.
        assert row["iterations"] <= 6
        # Precision stays in the paper's band on every seed.
        assert row["precision"] > 0.8
        assert row["recall"] > 0.7
