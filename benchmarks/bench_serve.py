"""Serve layer cost model: incremental quiesce vs. batch re-run.

Not a paper table — engineering numbers for the `mapit serve` daemon
(docs/SERVE.md). As a trace stream grows, a batch pipeline pays
O(world) per refresh; the serve layer folds each arrival into live
neighbor tables and re-infers only the dirty region. This benchmark
streams a seeded world in chunks and, at each prefix, times

* the incremental path: fold the chunk + one dirty-region quiesce;
* the batch path: sanitize + graph + full MAP-IT over the whole prefix

while asserting the two produce **byte-identical** results at every
checkpoint (the same invariant `python -m repro.serve --sweep`
enforces). It also reports raw fold throughput. Results go to
``benchmarks/results/serve_incremental.txt``.

Standalone mode (what the CI serve job runs)::

    PYTHONPATH=src python benchmarks/bench_serve.py

exits non-zero on any equivalence violation.
"""

import sys
import time

from conftest import PAPER_SEED, publish

from repro.core.config import MapItConfig
from repro.core.mapit import MapIt
from repro.diff.worlds import world_from_preset
from repro.graph.neighbors import build_interface_graph
from repro.serve.incremental import IncrementalIndex
from repro.traceroute.sanitize import sanitize_traces


def _batch(world, prefix, config):
    """One cold batch run over the first *prefix* traces."""
    report = sanitize_traces(world.traces[:prefix])
    graph = build_interface_graph(report.traces, all_addresses=report.all_addresses)
    mapit = MapIt(
        graph, world.ip2as(), org=world.as2org, rel=world.relationships, config=config
    )
    result = mapit.run()
    return mapit.engine.state.fingerprint(), result.to_json()


def run_bench(preset: str = "small", seed: int = PAPER_SEED, chunks: int = 8):
    """Stream one world in *chunks*; returns (rows, divergences)."""
    world = world_from_preset(preset, seed)
    config = MapItConfig()
    index = IncrementalIndex(
        world.ip2as(), org=world.as2org, rel=world.relationships, config=config
    )
    total = len(world.traces)
    chunk = max(1, total // chunks)

    fold_start = time.perf_counter()
    warm = IncrementalIndex(
        world.ip2as(), org=world.as2org, rel=world.relationships, config=config
    )
    for trace in world.traces:
        warm.fold([trace])
    fold_elapsed = time.perf_counter() - fold_start

    rows = []
    divergences = 0
    position = 0
    while position < total:
        upper = min(position + chunk, total)
        start = time.perf_counter()
        index.fold(list(world.traces[position:upper]))
        result = index.quiesce()
        incremental_s = time.perf_counter() - start
        position = upper

        start = time.perf_counter()
        batch_fp, batch_json = _batch(world, position, config)
        batch_s = time.perf_counter() - start

        identical = (
            index.fingerprint() == batch_fp and result.to_json() == batch_json
        )
        if not identical:
            divergences += 1
        rows.append(
            {
                "prefix": f"{position}/{total}",
                "fold+quiesce_ms": f"{incremental_s * 1000:.1f}",
                "batch_ms": f"{batch_s * 1000:.1f}",
                "speedup": f"{batch_s / incremental_s:.2f}x",
                "inferences": len(result.inferences),
                "identical": "yes" if identical else "NO",
            }
        )
    rows.append(
        {
            "prefix": "(fold only)",
            "fold+quiesce_ms": f"{fold_elapsed * 1000:.1f}",
            "batch_ms": "-",
            "speedup": f"{total / fold_elapsed:.0f} traces/s",
            "inferences": "-",
            "identical": "-",
        }
    )
    return world, rows, divergences


def test_serve_incremental_vs_batch():
    """Pytest leg: publish the table; any divergence fails."""
    world, rows, divergences = run_bench()
    publish(
        "serve_incremental",
        f"Serve layer: incremental fold+quiesce vs cold batch re-run, "
        f"{world.name} ({len(world.traces)} traces)",
        rows,
    )
    assert divergences == 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="bench_serve")
    parser.add_argument("--preset", default="small")
    parser.add_argument("--seed", type=int, default=PAPER_SEED)
    parser.add_argument("--chunks", type=int, default=8)
    args = parser.parse_args(argv)
    world, rows, divergences = run_bench(args.preset, args.seed, args.chunks)
    publish(
        "serve_incremental",
        f"Serve layer: incremental fold+quiesce vs cold batch re-run, "
        f"{world.name} ({len(world.traces)} traces)",
        rows,
    )
    if divergences:
        print(f"FAIL: {divergences} checkpoint(s) diverged from batch")
        return 1
    print("serve bench OK: every checkpoint byte-identical to batch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
