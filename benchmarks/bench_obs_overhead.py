"""Observability overhead: the disabled path must cost <3% of a run.

Two measurements over the same small scenario:

* **Interleaved timing** — alternate full MAP-IT runs with
  observability off (``NULL_OBS``), with tracing+metrics+profiling on,
  and with only metrics on, and report the median wall time of each
  mode.  Interleaving keeps cache/frequency drift from biasing one
  mode; the medians are informational (small absolute times are noisy
  in CI).

* **Guard-cost model** — the deterministic bound the assertion uses.
  Observability off costs exactly one guarded call per instrumented
  site: an ``obs.enabled`` attribute read, a no-op ``event()``/``inc()``
  call, or a shared null-span ``with`` block.  We count how many such
  guards a real run executes (the enabled run's event + counter + span
  traffic is an upper bound), measure the per-guard cost with a tight
  loop over the actual null objects, and assert

      guards x cost_per_guard  <  3% x median_disabled_runtime

  which holds with a wide margin because a guard is ~100ns while a run
  spends its time in neighbor-set and plurality computation.
"""

import json
import statistics
import time

from conftest import RESULTS_DIR, publish

from repro import MapItConfig, run_mapit
from repro.obs import NULL_OBS, Metrics, Observability, Tracer
from repro.sim.presets import small_scenario

SEED = 7
ROUNDS = 7
OVERHEAD_BUDGET = 0.03


def _run(scenario, obs=None):
    return run_mapit(
        scenario.traces,
        scenario.ip2as,
        org=scenario.as2org,
        rel=scenario.relationships,
        config=MapItConfig(f=0.5),
        obs=obs,
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _guard_cost_s() -> float:
    """Median per-call cost of the disabled guards, from a tight loop."""
    iterations = 200_000
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(iterations):
            if NULL_OBS.enabled:  # the event/counter guard at every call site
                pass
            with NULL_OBS.span("x"):  # the shared null span
                pass
        samples.append((time.perf_counter() - start) / (2 * iterations))
    return statistics.median(samples)


def _measure():
    scenario = small_scenario(seed=SEED)
    _run(scenario)  # warm caches before timing

    disabled, full, metrics_only = [], [], []
    for _ in range(ROUNDS):
        disabled.append(_timed(lambda: _run(scenario)))
        full_obs = Observability(
            tracer=Tracer(timestamps=False), metrics=Metrics(), profile=True
        )
        full.append(_timed(lambda: _run(scenario, obs=full_obs)))
        metrics_only.append(
            _timed(lambda: _run(scenario, obs=Observability(metrics=Metrics())))
        )

    # Count the guard traffic of a fully-observed run: every emitted
    # event, counter bump, gauge, and span is one would-be guard on the
    # disabled path (an over-count — plenty of guards never fire even
    # when enabled — so the model is an upper bound).
    probe = Observability(
        tracer=Tracer(timestamps=False), metrics=Metrics(), profile=True
    )
    _run(scenario, obs=probe)
    exported = probe.metrics.to_dict()
    guards = probe.tracer.seq
    guards += sum(exported["counters"].values())
    guards += len(exported["gauges"])
    guards += sum(stats["count"] for stats in exported["timers"].values())

    disabled_median = statistics.median(disabled)
    guard_cost = _guard_cost_s()
    modeled_overhead = guards * guard_cost / disabled_median

    rows = [
        {
            "mode": "observability off (NULL_OBS)",
            "median_ms": round(disabled_median * 1000, 2),
        },
        {
            "mode": "metrics only",
            "median_ms": round(statistics.median(metrics_only) * 1000, 2),
        },
        {
            "mode": "trace + metrics + profile",
            "median_ms": round(statistics.median(full) * 1000, 2),
        },
    ]
    model = {
        "guards_per_run": guards,
        "guard_cost_ns": round(guard_cost * 1e9, 1),
        "disabled_median_ms": round(disabled_median * 1000, 3),
        "modeled_overhead_fraction": round(modeled_overhead, 6),
        "budget_fraction": OVERHEAD_BUDGET,
    }
    return rows, model


def test_obs_overhead(benchmark):
    rows, model = benchmark.pedantic(_measure, rounds=1, iterations=1)
    publish(
        "obs_overhead",
        "Observability overhead (small scenario, median of "
        f"{ROUNDS} interleaved runs)",
        rows
        + [
            {
                "mode": "modeled disabled overhead "
                f"({model['guards_per_run']} guards x "
                f"{model['guard_cost_ns']}ns)",
                "median_ms": f"{model['modeled_overhead_fraction'] * 100:.4f}%",
            }
        ],
    )
    (RESULTS_DIR / "obs_overhead.json").write_text(json.dumps(model, indent=2) + "\n")
    assert model["modeled_overhead_fraction"] < OVERHEAD_BUDGET, (
        "disabled observability costs more than "
        f"{OVERHEAD_BUDGET:.0%} of a run: {model}"
    )
