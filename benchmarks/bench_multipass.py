"""Section 5.5 complement: the utility of multiple passes.

The paper reports that additional passes through the interfaces within
the first add step added 46 correct Internet2 inferences — inferences
that only become possible after earlier inferences refine the IP2AS
mappings (the 199.109.5.1 mechanism of §4.4.1).  This bench counts,
per network, the inferences present after the *full* first add step
but absent at the end of its first pass, and verifies they are real.
"""

from conftest import publish

from repro import MapItConfig
from repro.eval.steps import step_impact


def test_multipass_utility(benchmark, paper_experiment):
    impact = benchmark.pedantic(
        step_impact,
        args=(paper_experiment, MapItConfig(f=0.5)),
        rounds=1,
        iterations=1,
    )
    first_pass = {c.label: c for c in impact.result.checkpoints}["add 1: inverse"]
    all_passes = {c.label: c for c in impact.result.checkpoints}["add 1: all passes"]
    first_halves = {(i.address, i.forward) for i in first_pass.inferences}
    gained = [
        inference
        for inference in all_passes.inferences
        if (inference.address, inference.forward) not in first_halves
    ]

    truth = paper_experiment.scenario.ground_truth
    rows = []
    correct = 0
    for inference in gained:
        ok = truth.connected_pair(inference.address) == inference.pair()
        correct += ok
    rows.append(
        {
            "after pass 1": len(first_pass.inferences),
            "after all passes": len(all_passes.inferences),
            "gained by multipass": len(gained),
            "gained & correct": correct,
        }
    )
    publish("multipass_utility", "Section 5.5: inferences only multipass finds", rows)
    # The multipass mechanism must contribute something real.
    assert gained
    assert correct / len(gained) > 0.5
