"""Runtime scaling of the pipeline's hot components.

Not a paper table — engineering benchmarks for the substrate: LPM trie
lookups, trace sanitization, neighbor-set extraction, and the full
MAP-IT loop at two scenario scales.
"""

import random

from repro import MapIt, MapItConfig
from repro.graph.neighbors import build_interface_graph
from repro.net.prefix import prefix_of
from repro.net.trie import PrefixTrie
from repro.traceroute.sanitize import sanitize_traces


def test_trie_lookup_throughput(benchmark):
    rng = random.Random(0)
    trie = PrefixTrie()
    for index in range(20_000):
        trie.insert(prefix_of(rng.getrandbits(32), rng.randint(8, 24)), index)
    queries = [rng.getrandbits(32) for _ in range(10_000)]

    def lookup_all():
        return sum(1 for query in queries if trie.lookup_value(query) is not None)

    hits = benchmark(lookup_all)
    assert hits > 0


def test_sanitize_throughput(benchmark, paper_experiment):
    traces = paper_experiment.scenario.traces

    def run():
        return sanitize_traces(traces)

    report = benchmark(run)
    assert report.traces


def test_neighbor_extraction(benchmark, paper_experiment):
    report = paper_experiment.report

    def run():
        return build_interface_graph(
            report.traces, all_addresses=report.all_addresses
        )

    graph = benchmark(run)
    assert graph.addresses()


def test_mapit_full_run(benchmark, paper_experiment):
    scenario = paper_experiment.scenario

    def run():
        return MapIt(
            paper_experiment.graph,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.inferences
