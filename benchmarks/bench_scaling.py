"""Runtime scaling of the pipeline's hot components.

Not a paper table — engineering benchmarks for the substrate: LPM trie
lookups, trace sanitization, neighbor-set extraction, the full MAP-IT
loop, and the ``repro.perf`` execution layer (the fused streaming
loader behind ``--jobs``, and the binary parsed-bundle cache) on the
dense preset.

Standalone mode::

    PYTHONPATH=src python benchmarks/bench_scaling.py --smoke

times ``jobs=1`` against ``jobs=4`` end-to-end (fused path), asserts
byte-identity, and exits non-zero when ``jobs=4`` runs slower than
``jobs=1`` by more than ``--tolerance`` (default 1.10, i.e. parallel
overhead must stay within 10% even on a single-CPU runner).
"""

import os
import random
import time

from conftest import PAPER_SEED, publish

from repro import MapIt, MapItConfig
from repro.graph.neighbors import build_interface_graph
from repro.net.prefix import prefix_of
from repro.net.trie import PrefixTrie
from repro.traceroute.sanitize import sanitize_traces


def test_trie_lookup_throughput(benchmark):
    rng = random.Random(0)
    trie = PrefixTrie()
    for index in range(20_000):
        trie.insert(prefix_of(rng.getrandbits(32), rng.randint(8, 24)), index)
    queries = [rng.getrandbits(32) for _ in range(10_000)]

    def lookup_all():
        return sum(1 for query in queries if trie.lookup_value(query) is not None)

    hits = benchmark(lookup_all)
    assert hits > 0


def test_sanitize_throughput(benchmark, paper_experiment):
    traces = paper_experiment.scenario.traces

    def run():
        return sanitize_traces(traces)

    report = benchmark(run)
    assert report.traces


def test_neighbor_extraction(benchmark, paper_experiment):
    report = paper_experiment.report

    def run():
        return build_interface_graph(
            report.traces, all_addresses=report.all_addresses
        )

    graph = benchmark(run)
    assert graph.addresses()


def test_mapit_full_run(benchmark, paper_experiment):
    scenario = paper_experiment.scenario

    def run():
        return MapIt(
            paper_experiment.graph,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.inferences


def test_parallel_jobs_and_cache_sweep(tmp_path_factory):
    """End-to-end sweep of the perf layer on the dense preset: worker
    counts 1/2/4/8 through the fused streaming loader, plus binary
    cache cold/warm, asserting every configuration reproduces the
    serial result byte-for-byte and publishing the timings (with the
    host's CPU count — speedups are physically capped by it) to
    ``benchmarks/results/scaling_parallel.txt``."""
    from repro.io import load_bundle, save_scenario
    from repro.sim.presets import dense_scenario

    root = save_scenario(
        dense_scenario(seed=PAPER_SEED),
        tmp_path_factory.mktemp("scaling-parallel") / "ds",
    )
    config = MapItConfig(f=0.5)
    rows = []
    baseline = None
    base_total = None
    trace_count = 0
    for jobs in (1, 2, 4, 8):
        start = time.perf_counter()
        bundle = load_bundle(root, jobs=jobs, graph_only=True)
        loaded = time.perf_counter()
        result = bundle.run_mapit(config, jobs=jobs)
        done = time.perf_counter()
        output = result.to_json()
        if baseline is None:
            baseline, base_total = output, done - start
            trace_count = len(bundle.traces)
        else:
            assert output == baseline, f"jobs={jobs} diverged from serial"
        rows.append(
            {
                "config": f"jobs={jobs}",
                "load_s": f"{loaded - start:.3f}",
                "mapit_s": f"{done - loaded:.3f}",
                "total_s": f"{done - start:.3f}",
                "speedup": f"{base_total / (done - start):.2f}x",
            }
        )
    cache = root.parent / "cache"
    for label in ("cache cold", "cache warm"):
        start = time.perf_counter()
        bundle = load_bundle(root, cache=cache, graph_only=True)
        loaded = time.perf_counter()
        result = bundle.run_mapit(config)
        done = time.perf_counter()
        assert result.to_json() == baseline, f"{label} diverged from serial"
        rows.append(
            {
                "config": label,
                "load_s": f"{loaded - start:.3f}",
                "mapit_s": f"{done - loaded:.3f}",
                "total_s": f"{done - start:.3f}",
                "speedup": f"{base_total / (done - start):.2f}x",
            }
        )
    publish(
        "scaling_parallel",
        f"Perf layer: --jobs (fused loader) and binary cache sweep, dense "
        f"preset seed {PAPER_SEED} ({trace_count} traces, {os.cpu_count()} "
        f"CPU(s) available)",
        rows,
    )


def _smoke(tolerance: float, seed: int, repeats: int = 3) -> int:
    """Standalone CI gate: jobs=4 must stay within *tolerance* of jobs=1.

    Times the end-to-end pipeline (fused load + inference) best-of-
    *repeats* for each worker count, asserts byte-identity, and returns
    a non-zero exit code when parallel overhead exceeds the budget.
    """
    import tempfile
    from pathlib import Path

    from repro.io import load_bundle, save_scenario
    from repro.sim.presets import dense_scenario

    config = MapItConfig(f=0.5)
    with tempfile.TemporaryDirectory(prefix="mapit-smoke-") as tmp:
        root = save_scenario(dense_scenario(seed=seed), Path(tmp) / "ds")
        outputs = {}
        best = {}
        for jobs in (1, 4):
            best[jobs] = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                bundle = load_bundle(root, jobs=jobs, graph_only=True)
                result = bundle.run_mapit(config, jobs=jobs)
                best[jobs] = min(best[jobs], time.perf_counter() - start)
            outputs[jobs] = result.to_json()
    print(f"smoke: dense preset seed {seed}, {os.cpu_count()} CPU(s), best of {repeats}")
    for jobs in (1, 4):
        print(f"  jobs={jobs}  total {best[jobs]:.3f}s")
    if outputs[4] != outputs[1]:
        print("FAIL: jobs=4 output diverged from jobs=1")
        return 1
    ratio = best[4] / best[1]
    budget = tolerance
    print(f"  ratio jobs4/jobs1 = {ratio:.2f} (budget {budget:.2f})")
    if ratio > budget:
        print(f"FAIL: jobs=4 is {ratio:.2f}x jobs=1 (allowed {budget:.2f}x)")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the jobs=4-vs-jobs=1 regression gate and exit",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.10,
        help="maximum allowed jobs=4/jobs=1 runtime ratio (default 1.10)",
    )
    parser.add_argument("--seed", type=int, default=PAPER_SEED)
    arguments = parser.parse_args()
    if not arguments.smoke:
        parser.error("the full sweep runs under pytest; --smoke is the standalone mode")
    raise SystemExit(_smoke(arguments.tolerance, arguments.seed))
