"""Runtime scaling of the pipeline's hot components.

Not a paper table — engineering benchmarks for the substrate: LPM trie
lookups, trace sanitization, neighbor-set extraction, the full MAP-IT
loop, and the ``repro.perf`` execution layer (worker sharding across
``--jobs`` and the parsed-bundle cache) on the dense preset.
"""

import os
import random
import time

from conftest import PAPER_SEED, publish

from repro import MapIt, MapItConfig
from repro.graph.neighbors import build_interface_graph
from repro.net.prefix import prefix_of
from repro.net.trie import PrefixTrie
from repro.traceroute.sanitize import sanitize_traces


def test_trie_lookup_throughput(benchmark):
    rng = random.Random(0)
    trie = PrefixTrie()
    for index in range(20_000):
        trie.insert(prefix_of(rng.getrandbits(32), rng.randint(8, 24)), index)
    queries = [rng.getrandbits(32) for _ in range(10_000)]

    def lookup_all():
        return sum(1 for query in queries if trie.lookup_value(query) is not None)

    hits = benchmark(lookup_all)
    assert hits > 0


def test_sanitize_throughput(benchmark, paper_experiment):
    traces = paper_experiment.scenario.traces

    def run():
        return sanitize_traces(traces)

    report = benchmark(run)
    assert report.traces


def test_neighbor_extraction(benchmark, paper_experiment):
    report = paper_experiment.report

    def run():
        return build_interface_graph(
            report.traces, all_addresses=report.all_addresses
        )

    graph = benchmark(run)
    assert graph.addresses()


def test_mapit_full_run(benchmark, paper_experiment):
    scenario = paper_experiment.scenario

    def run():
        return MapIt(
            paper_experiment.graph,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=MapItConfig(f=0.5),
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.inferences


def test_parallel_jobs_and_cache_sweep(tmp_path_factory):
    """End-to-end sweep of the perf layer on the dense preset: worker
    counts 1/2/4/8 and cache cold/warm, asserting every configuration
    reproduces the serial result byte-for-byte and publishing the
    timings (with the host's CPU count — speedups are physically capped
    by it) to ``benchmarks/results/scaling_parallel.txt``."""
    from repro.io import load_bundle, save_scenario
    from repro.sim.presets import dense_scenario

    root = save_scenario(
        dense_scenario(seed=PAPER_SEED),
        tmp_path_factory.mktemp("scaling-parallel") / "ds",
    )
    config = MapItConfig(f=0.5)
    rows = []
    baseline = None
    base_total = None
    for jobs in (1, 2, 4, 8):
        start = time.perf_counter()
        bundle = load_bundle(root, jobs=jobs)
        loaded = time.perf_counter()
        result = bundle.run_mapit(config, jobs=jobs)
        done = time.perf_counter()
        output = result.to_json()
        if baseline is None:
            baseline, base_total = output, done - start
        else:
            assert output == baseline, f"jobs={jobs} diverged from serial"
        rows.append(
            {
                "config": f"jobs={jobs}",
                "load_s": f"{loaded - start:.3f}",
                "mapit_s": f"{done - loaded:.3f}",
                "total_s": f"{done - start:.3f}",
                "speedup": f"{base_total / (done - start):.2f}x",
            }
        )
    cache = root.parent / "cache"
    for label in ("cache cold", "cache warm"):
        start = time.perf_counter()
        bundle = load_bundle(root, cache=cache)
        loaded = time.perf_counter()
        result = bundle.run_mapit(config)
        done = time.perf_counter()
        assert result.to_json() == baseline, f"{label} diverged from serial"
        rows.append(
            {
                "config": label,
                "load_s": f"{loaded - start:.3f}",
                "mapit_s": f"{done - loaded:.3f}",
                "total_s": f"{done - start:.3f}",
                "speedup": f"{base_total / (done - start):.2f}x",
            }
        )
    publish(
        "scaling_parallel",
        f"Perf layer: --jobs and cache sweep, dense preset seed {PAPER_SEED} "
        f"({len(bundle.traces)} traces, {os.cpu_count()} CPU(s) available)",
        rows,
    )
