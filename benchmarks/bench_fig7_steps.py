"""Fig 7: the impact of each algorithm step.

Runs MAP-IT once with checkpoint recording and scores the inference
set after each stage: the raw direct pass of the first add step, the
point-to-point contradiction fixes, the inverse-inference removal, the
remaining passes, each outer iteration, and the stub heuristic.
Expected shape (paper section 5.5): contradiction and inverse fixes
recover precision lost by the raw pass, later iterations refine, and
the stub heuristic delivers a recall jump for stub-heavy networks.
"""

from conftest import publish

from repro import MapItConfig
from repro.eval.steps import step_impact


def test_fig7_step_impact(benchmark, paper_experiment):
    impact = benchmark.pedantic(
        step_impact,
        args=(paper_experiment, MapItConfig(f=0.5)),
        rounds=1,
        iterations=1,
    )
    publish("fig7_steps", "Fig 7: impact of each algorithm step", impact.rows())

    assert impact.stages[0] == "add 1: direct"
    assert impact.stages[-1] == "stub heuristic"
    for label in paper_experiment.labels():
        precision = dict(impact.series(label, "precision"))
        # The inverse-inference fix never hurts precision.
        assert (
            precision["add 1: inverse"] >= precision["add 1: contradictions"] - 1e-9
        ), label
    # The stub heuristic must add recall on at least one network.
    gains = 0
    for label in paper_experiment.labels():
        recall = dict(impact.series(label, "recall"))
        last_iteration = [s for s in impact.stages if s.startswith("iteration")][-1]
        if recall["stub heuristic"] > recall[last_iteration]:
            gains += 1
    assert gains >= 1
