"""Robustness: score variance across five seeded worlds.

No single paper table corresponds to this, but every claim in
EXPERIMENTS.md implicitly assumes the seed-7 world is representative.
This bench aggregates precision/recall over five paper-scale seeds and
asserts the band the reproduction advertises (precision comparable to
the paper's 94.7–100%).
"""

from conftest import publish

from repro import MapItConfig
from repro.eval.aggregate import aggregate_over_seeds
from repro.sim.presets import paper_scenario

SEEDS = (7, 11, 23, 31, 47)


def test_seed_variance(benchmark):
    aggregate = benchmark.pedantic(
        aggregate_over_seeds,
        args=(paper_scenario, SEEDS),
        kwargs={"config": MapItConfig(f=0.5)},
        rounds=1,
        iterations=1,
    )
    publish("seed_variance", "Robustness: five-seed aggregate", aggregate.rows())
    assert aggregate.pooled.precision > 0.88
    assert aggregate.pooled.recall > 0.85
    for label, summary in aggregate.precision.items():
        assert summary.minimum > 0.75, label
