"""Structured event tracing for MAP-IT runs.

A :class:`Tracer` records every algorithm event — pass boundaries,
inferences added / removed / demoted, contradiction resolutions, the
convergence decision — as a flat JSON-ready dict.  Events are kept in
an in-memory ring (the last ``ring_size`` events survive for
post-mortem inspection) and, optionally, streamed to a JSON-lines sink
so arbitrarily long runs can be traced with constant memory.

Determinism contract: with ``timestamps=False`` the event stream is a
pure function of the inputs — the same bundle, seed, and config
produce byte-identical JSONL files (``tests/test_obs.py`` enforces
this).  With timestamps on, the only non-deterministic key is ``ts``;
:func:`canonical_event` strips the volatile keys for comparison.

The :class:`NullTracer` is the disabled counterpart: ``enabled`` is
False and :meth:`~NullTracer.emit` does nothing, so guarded call sites
(``if obs.enabled: ...``) cost one attribute read on the hot path.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, IO, Iterable, Iterator, List, Optional, Union

#: Event keys that vary run-to-run even on identical inputs.  Everything
#: else must be deterministic (see docs/OBSERVABILITY.md).
VOLATILE_KEYS = ("ts", "dur_ms")

#: Default ring capacity; at pass granularity this holds a full run,
#: at per-inference granularity the tail of a large one.
DEFAULT_RING_SIZE = 65536


def canonical_event(event: Dict[str, object]) -> Dict[str, object]:
    """*event* without its volatile (timing) keys, for comparisons."""
    return {key: value for key, value in event.items() if key not in VOLATILE_KEYS}


def encode_event(event: Dict[str, object]) -> str:
    """The canonical JSONL encoding: sorted keys, compact separators."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class Tracer:
    """Records structured events to a ring buffer and an optional sink."""

    enabled = True

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        sink: Optional[IO[str]] = None,
        timestamps: bool = True,
    ) -> None:
        self.events: Deque[Dict[str, object]] = deque(maxlen=ring_size)
        self._sink = sink
        self._owns_sink = False
        self.timestamps = timestamps
        self.seq = 0

    @classmethod
    def to_file(
        cls,
        path: Union[str, Path],
        ring_size: int = DEFAULT_RING_SIZE,
        timestamps: bool = True,
    ) -> "Tracer":
        """A tracer streaming JSON lines to *path* (caller must close)."""
        tracer = cls(ring_size=ring_size, sink=open(path, "w"), timestamps=timestamps)
        tracer._owns_sink = True
        return tracer

    def emit(self, name: str, /, **fields: object) -> None:
        """Record one event.  ``seq`` orders events; ``ts`` is wall time."""
        event: Dict[str, object] = {"seq": self.seq, "event": name}
        event.update(fields)
        if self.timestamps:
            event["ts"] = round(time.time(), 6)
        self.seq += 1
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(encode_event(event) + "\n")

    def close(self) -> None:
        """Flush and (when owned) close the sink."""
        if self._sink is None:
            return
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()
        self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    events: Deque[Dict[str, object]] = deque(maxlen=0)

    def emit(self, name: str, /, **fields: object) -> None:  # pragma: no cover - trivial
        pass

    def close(self) -> None:  # pragma: no cover - trivial
        pass


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a JSON-lines trace file back into event dicts."""
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON event: {exc.msg}"
                ) from exc
    return events


def iter_events(
    events: Iterable[Dict[str, object]], name: str
) -> Iterator[Dict[str, object]]:
    """The events called *name*, in stream order."""
    return (event for event in events if event.get("event") == name)
