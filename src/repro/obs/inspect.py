"""Trace-file summarization behind ``mapit inspect-trace``.

Turns a JSON-lines event stream (written by ``mapit run --trace``)
back into the paper's per-step accounting: a per-pass inference delta
table (the Fig 7 view of one real run), the convergence curve of
section 4.6 (inference totals per outer iteration, ending at the
repeated state), a per-rule event census, and — when the run was
profiled — the slowest spans.

All functions operate on plain event dicts so they work equally on
:func:`repro.obs.trace.read_trace` output and on a live tracer's ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TraceSummary:
    """Everything ``inspect-trace`` reports, as printable row lists."""

    run: Dict[str, object] = field(default_factory=dict)
    passes: List[Dict[str, object]] = field(default_factory=list)
    convergence: List[Dict[str, object]] = field(default_factory=list)
    rules: List[Dict[str, object]] = field(default_factory=list)
    spans: List[Dict[str, object]] = field(default_factory=list)
    events_total: int = 0

    def header_lines(self) -> List[str]:
        """The one-paragraph run summary."""
        run = self.run
        lines = [f"{self.events_total} events"]
        if "f" in run:
            lines.append(
                "config: f={f} min_neighbors={min_neighbors} "
                "remove_rule={remove_rule}".format(**run)
            )
        if "iterations" in run:
            state = "converged" if run.get("converged") else "hit max_iterations"
            lines.append(
                f"{state} after {run['iterations']} iteration(s): "
                f"{run.get('direct', '?')} direct + {run.get('indirect', '?')} "
                f"indirect inferences, {run.get('uncertain', '?')} uncertain"
            )
        return lines


def pass_table(events: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """One row per recorded pass: what it added, removed, and left live.

    ``add i.p`` rows are the inner passes of the add step of outer
    iteration ``i`` (Alg 2 + contradiction fixes), ``remove i.p`` the
    remove-step passes (Alg 3), ``stub`` the single Alg 4 sweep.
    """
    rows: List[Dict[str, object]] = []
    iteration = 0
    removed = detached = uncertain = 0
    for event in events:
        name = event.get("event")
        if name == "iteration.start":
            iteration = event.get("iteration", iteration)
        elif name == "inference.removed":
            removed += 1
        elif name == "inference.detached":
            detached += 1
        elif name == "inference.uncertain":
            uncertain += 1
        elif name in ("add.pass.end", "remove.pass.end", "stub.end"):
            if name == "add.pass.end":
                stage = f"add {iteration}.{event.get('pass', '?')}"
                delta = {
                    "direct_added": event.get("direct_added", 0),
                    "indirect_added": event.get("indirect_added", 0),
                    "demoted": 0,
                }
            elif name == "remove.pass.end":
                stage = f"remove {iteration}.{event.get('pass', '?')}"
                delta = {
                    "direct_added": 0,
                    "indirect_added": 0,
                    "demoted": event.get("demoted", 0),
                }
            else:
                stage = "stub"
                delta = {
                    "direct_added": event.get("inferred", 0),
                    "indirect_added": 0,
                    "demoted": 0,
                }
            row: Dict[str, object] = {"stage": stage}
            row.update(delta)
            row.update(
                {
                    "removed": removed,
                    "detached": detached,
                    "uncertain": uncertain,
                    "direct": event.get("direct", ""),
                    "indirect": event.get("indirect", ""),
                }
            )
            rows.append(row)
            removed = detached = uncertain = 0
    return rows


def convergence_rows(events: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """The section 4.6 curve: live inference totals per outer iteration."""
    rows: List[Dict[str, object]] = []
    for event in events:
        if event.get("event") != "iteration.end":
            continue
        rows.append(
            {
                "iteration": event.get("iteration"),
                "direct": event.get("direct"),
                "indirect": event.get("indirect"),
                "state_repeated": "yes" if event.get("repeated") else "no",
            }
        )
    return rows


def rule_rows(events: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """How often each inference rule fired, across the whole run."""
    counts: Dict[tuple, int] = {}
    for event in events:
        name = event.get("event", "")
        if not str(name).startswith("inference."):
            continue
        key = (str(name).split(".", 1)[1], str(event.get("rule", "?")))
        counts[key] = counts.get(key, 0) + 1
    return [
        {"action": action, "rule": rule, "events": count}
        for (action, rule), count in sorted(counts.items())
    ]


def slowest_spans(
    events: List[Dict[str, object]], top: int = 10
) -> List[Dict[str, object]]:
    """The *top* span names by total recorded duration (profiled runs)."""
    totals: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        name = str(event.get("name", "?"))
        duration = float(event.get("dur_ms", 0.0))
        stats = totals.setdefault(name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
        stats["count"] += 1
        stats["total_ms"] += duration
        stats["max_ms"] = max(stats["max_ms"], duration)
    ranked = sorted(totals.items(), key=lambda item: item[1]["total_ms"], reverse=True)
    return [
        {
            "span": name,
            "count": int(stats["count"]),
            "total_ms": round(stats["total_ms"], 3),
            "max_ms": round(stats["max_ms"], 3),
        }
        for name, stats in ranked[:top]
    ]


def summarize(events: List[Dict[str, object]], top: int = 10) -> TraceSummary:
    """Build the full :class:`TraceSummary` for an event stream."""
    summary = TraceSummary(events_total=len(events))
    for event in events:
        if event.get("event") == "run.start":
            summary.run.update(
                {
                    key: value
                    for key, value in event.items()
                    if key not in ("seq", "event", "ts")
                }
            )
        elif event.get("event") == "run.end":
            summary.run.update(
                {
                    key: value
                    for key, value in event.items()
                    if key not in ("seq", "event", "ts")
                }
            )
    summary.passes = pass_table(events)
    summary.convergence = convergence_rows(events)
    summary.rules = rule_rows(events)
    summary.spans = slowest_spans(events, top)
    return summary
