"""Metrics registry: counters, gauges, and monotonic-clock timers.

Names follow a dotted ``<subsystem>.<noun>[.<qualifier>]`` convention
(``mapit.inference.direct_added``, ``ingest.records.malformed``,
``span.pass/add`` — see docs/OBSERVABILITY.md).  Timers aggregate
:func:`time.perf_counter` durations into streaming statistics plus a
power-of-two-millisecond histogram, so a run's latency profile exports
as plain JSON without keeping every observation.

Everything here is plain stdlib; the registry is cheap enough to keep
per run and serialize at the end (``mapit run --metrics m.json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union


class TimerStats:
    """Streaming duration statistics for one named timer."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        #: histogram: bucket upper bound in ms (power of two) -> count
        self.buckets: Dict[int, int] = {}

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if self.min_s is None or seconds < self.min_s:
            self.min_s = seconds
        if self.max_s is None or seconds > self.max_s:
            self.max_s = seconds
        upper = 1
        ms = seconds * 1000.0
        while upper < ms and upper < 1 << 30:
            upper <<= 1
        self.buckets[upper] = self.buckets.get(upper, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_ms": round(self.total_s * 1000.0, 3),
            "mean_ms": round(mean * 1000.0, 3),
            "min_ms": round((self.min_s or 0.0) * 1000.0, 3),
            "max_ms": round((self.max_s or 0.0) * 1000.0, 3),
            "buckets_ms": {
                str(upper): count for upper, count in sorted(self.buckets.items())
            },
        }


class Metrics:
    """A named registry of counters, gauges, and timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerStats] = {}

    # -- writes --------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration into the timer *name*."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStats()
        timer.observe(seconds)

    # -- reads ---------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> Optional[TimerStats]:
        return self.timers.get(name)

    def slowest(self, top: int = 10) -> List[Dict[str, object]]:
        """The *top* timers by total time, descending."""
        ranked = sorted(
            self.timers.items(), key=lambda item: item[1].total_s, reverse=True
        )
        rows = []
        for name, stats in ranked[:top]:
            row: Dict[str, object] = {"timer": name}
            row.update(stats.to_dict())
            row.pop("buckets_ms")
            rows.append(row)
        return rows

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                name: round(value, 6)
                for name, value in sorted(self.gauges.items())
            },
            "timers": {
                name: stats.to_dict() for name, stats in sorted(self.timers.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: Union[str, Path]) -> None:
        """Serialize the registry to *path* as JSON."""
        Path(path).write_text(self.to_json() + "\n")
