"""The observability facade the pipeline is instrumented against.

Call sites never talk to :class:`~repro.obs.trace.Tracer` or
:class:`~repro.obs.metrics.Metrics` directly; they hold an
:class:`Observability` handle and

* guard event emission with ``if obs.enabled:`` (one attribute read
  when observability is off — the disabled cost the overhead benchmark
  bounds at <3%),
* wrap stages in ``with obs.span("pass/add"):`` — a shared no-op
  context manager when nothing records, a perf_counter measurement
  into the ``span.<name>`` timer (and, under ``--profile``, a ``span``
  trace event) otherwise.

:data:`NULL_OBS` is the module-wide disabled singleton every
instrumented constructor defaults to.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.metrics import Metrics
from repro.obs.trace import NullTracer, Tracer


class _NullSpan:
    """Shared no-op context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One timed region: records into metrics and (optionally) the trace."""

    __slots__ = ("_obs", "_name", "_start")

    def __init__(self, obs: "Observability", name: str) -> None:
        self._obs = obs
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        obs = self._obs
        if obs.metrics is not None:
            obs.metrics.observe(f"span.{self._name}", elapsed)
        if obs.profile and obs.tracer.enabled:
            obs.tracer.emit(
                "span", name=self._name, dur_ms=round(elapsed * 1000.0, 3)
            )


class Observability:
    """A tracer plus a metrics registry plus the profiling switch."""

    __slots__ = ("tracer", "metrics", "profile", "enabled")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        profile: bool = False,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.profile = profile
        self.enabled = bool(self.tracer.enabled or metrics is not None)

    def event(self, name: str, /, **fields: object) -> None:
        """Emit a trace event (no-op when no tracer is attached)."""
        if self.tracer.enabled:
            self.tracer.emit(name, **fields)

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a counter (no-op without a metrics registry)."""
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (no-op without a metrics registry)."""
        if self.metrics is not None:
            self.metrics.set_gauge(name, value)

    def span(self, name: str):
        """A context manager timing the enclosed region as *name*."""
        if self.metrics is None and not (self.profile and self.tracer.enabled):
            return _NULL_SPAN
        return _Span(self, name)

    def close(self) -> None:
        """Close the underlying tracer sink (idempotent)."""
        self.tracer.close()


class NullObservability(Observability):
    """The disabled singleton's class: every path short-circuits."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()

    def event(self, name: str, /, **fields: object) -> None:  # pragma: no cover
        pass

    def inc(self, name: str, amount: int = 1) -> None:  # pragma: no cover
        pass

    def gauge(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: The disabled observability handle every instrumented entry point
#: defaults to.  Shared, stateless, and safe to use from anywhere.
NULL_OBS = NullObservability()
