"""Observability for the MAP-IT pipeline (docs/OBSERVABILITY.md).

Three zero-dependency pieces:

* :class:`~repro.obs.trace.Tracer` — structured event recording (pass
  boundaries, every inference added/removed, rule names, evidence
  counts) into an in-memory ring plus an optional JSON-lines sink;
* :class:`~repro.obs.metrics.Metrics` — counters, gauges, and
  monotonic-clock timer histograms, exported as JSON;
* :class:`~repro.obs.observer.Observability` — the facade the engine,
  passes, graph builder, ingest, and simulator are instrumented
  against, with ``span()`` profiling hooks.

Instrumented entry points default to :data:`~repro.obs.observer.NULL_OBS`,
whose every operation short-circuits — observability off costs one
guarded attribute read per call site (``benchmarks/bench_obs_overhead.py``
bounds it below 3% of a run).
"""

from repro.obs.inspect import TraceSummary, summarize
from repro.obs.metrics import Metrics, TimerStats
from repro.obs.observer import NULL_OBS, NullObservability, Observability
from repro.obs.trace import (
    NullTracer,
    Tracer,
    canonical_event,
    encode_event,
    read_trace,
)

__all__ = [
    "Metrics",
    "NULL_OBS",
    "NullObservability",
    "NullTracer",
    "Observability",
    "TimerStats",
    "TraceSummary",
    "Tracer",
    "canonical_event",
    "encode_event",
    "read_trace",
    "summarize",
]
