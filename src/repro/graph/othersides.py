"""Point-to-point other-side inference (MAP-IT section 4.2).

Point-to-point links are addressed from either a /30 or a /31.  Given
every address observed anywhere in the traceroute dataset (including
discarded traces), the paper's heuristic decides per address:

* an address that is *reserved* in its /30 (network or broadcast) can
  only be a /31 host, so its other side comes from its /31;
* a valid /30 host whose /30-reserved sibling addresses were observed
  in the dataset must itself be /31-addressed (the observation proves
  the /30 framing is wrong), so its other side also comes from its /31;
* otherwise the address is assumed to be a /30 host and the other side
  is the remaining middle address of its /30.

The paper reports this labels 40.4% of interfaces as /31-addressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.net.prefix import is_reserved_in_30, p2p_other_side_30, p2p_other_side_31


@dataclass(frozen=True)
class OtherSideTable:
    """Result of other-side inference.

    ``other_side`` maps each address to its inferred link partner;
    ``from_31`` records which addresses were judged /31-addressed.
    """

    other_side: Mapping[int, int]
    from_31: frozenset

    def fraction_31(self) -> float:
        """Fraction of addresses inferred to be /31-addressed."""
        if not self.other_side:
            return 0.0
        return len(self.from_31) / len(self.other_side)


def infer_other_sides(addresses: Iterable[int]) -> OtherSideTable:
    """Apply the section 4.2 heuristic to every observed address.

    *addresses* should include every address seen in any trace, even
    discarded ones — extra observations only make the /30-vs-/31 call
    more accurate.
    """
    observed = set(addresses)
    other: Dict[int, int] = {}
    from_31 = set()
    for address in observed:
        if is_reserved_in_30(address):
            other[address] = p2p_other_side_31(address)
            from_31.add(address)
            continue
        base = address & ~3
        if base in observed or (base | 3) in observed:
            other[address] = p2p_other_side_31(address)
            from_31.add(address)
        else:
            other[address] = p2p_other_side_30(address)
    return OtherSideTable(other_side=other, from_31=frozenset(from_31))
