"""Neighbor-set extraction (paper section 4.3) and the interface graph.

For every interface address, the forward neighbor set N_F holds the
*unique* addresses seen exactly one hop after it across all sanitized
traces, and the backward neighbor set N_B the unique addresses one hop
before it.  Null (unresponsive) hops break adjacency — addresses
either side of a gap are *not* neighbors — and private/shared addresses
are excluded both as subjects and as members, since they are neither
globally routable nor unique.

Multiplicity is deliberately not recorded: an address appearing in a
thousand traces contributes one member, exactly as in Fig 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set

from repro.graph.othersides import OtherSideTable, infer_other_sides
from repro.net.special import SpecialPurposeRegistry, default_special_registry
from repro.obs.observer import NULL_OBS, Observability
from repro.traceroute.model import Trace

_EMPTY: FrozenSet[int] = frozenset()


@dataclass
class InterfaceGraph:
    """Per-interface neighbor sets plus other-side assignments.

    This is the complete input MAP-IT's passes operate on: N_F and N_B
    per address, and the /30-vs-/31 other-side table computed from every
    address observed anywhere in the dataset (section 4.2).
    """

    forward: Dict[int, Set[int]] = field(default_factory=dict)
    backward: Dict[int, Set[int]] = field(default_factory=dict)
    other_sides: Optional[OtherSideTable] = None

    def addresses(self) -> Set[int]:
        """Every address owning at least one neighbor set."""
        return set(self.forward) | set(self.backward)

    def n_forward(self, address: int) -> FrozenSet[int]:
        """N_F for *address* (empty when never seen with a successor)."""
        members = self.forward.get(address)
        return frozenset(members) if members else _EMPTY

    def n_backward(self, address: int) -> FrozenSet[int]:
        """N_B for *address* (empty when never seen with a predecessor)."""
        members = self.backward.get(address)
        return frozenset(members) if members else _EMPTY

    def neighbors(self, address: int, forward: bool) -> FrozenSet[int]:
        """The neighbor set for one half of *address*."""
        table = self.forward if forward else self.backward
        members = table.get(address)
        return frozenset(members) if members else _EMPTY

    def other_side(self, address: int) -> Optional[int]:
        """The inferred point-to-point partner of *address*."""
        if self.other_sides is None:
            return None
        return self.other_sides.other_side.get(address)

    def count_multi_neighbor(self) -> Dict[str, int]:
        """How many interfaces have |N_F| > 1 and |N_B| > 1 (section 4.3)."""
        return {
            "forward": sum(1 for members in self.forward.values() if len(members) > 1),
            "backward": sum(1 for members in self.backward.values() if len(members) > 1),
        }

    def overlap_fraction(self) -> float:
        """Fraction of interfaces with an address in both Ns.

        The paper's footnote reports 0.3%, caused by per-packet load
        balancing and outgoing-interface responses.
        """
        addresses = self.addresses()
        if not addresses:
            return 0.0
        overlapping = sum(
            1
            for address in addresses
            if self.forward.get(address)
            and self.backward.get(address)
            and self.forward[address] & self.backward[address]
        )
        return overlapping / len(addresses)


def accumulate_neighbors(
    traces: Iterable[Trace],
    forward: Dict[int, Set[int]],
    backward: Dict[int, Set[int]],
    seen: Set[int],
    is_special: Callable[[int], bool],
) -> None:
    """Fold *traces* into partial N_F/N_B tables and the seen-set.

    This is the single accumulation kernel behind both the serial
    :func:`build_interface_graph` and the sharded workers of
    :mod:`repro.perf.graph`: one adjacency contributes one member
    regardless of multiplicity, so partial tables built over disjoint
    trace shards merge into exactly the serial result by set union.
    """
    for trace in traces:
        previous: Optional[int] = None
        for hop in trace.hops:
            address = hop.address
            if address is None:
                previous = None
                continue
            if is_special(address):
                # Private/shared addresses neither own neighbor sets nor
                # appear inside them, but they still break adjacency: the
                # public addresses either side of one are not neighbors.
                previous = None
                continue
            seen.add(address)
            if previous is not None:
                forward.setdefault(previous, set()).add(address)
                backward.setdefault(address, set()).add(previous)
            previous = address


def build_interface_graph(
    traces: Iterable[Trace],
    all_addresses: Optional[Iterable[int]] = None,
    special: Optional[SpecialPurposeRegistry] = None,
    obs: Observability = NULL_OBS,
) -> InterfaceGraph:
    """Build N_F/N_B from sanitized traces and assign other sides.

    *all_addresses*, when given, is the address universe for the
    other-side heuristic — the paper includes addresses from discarded
    traces there.  It defaults to the addresses seen in *traces*.
    """
    special = special or default_special_registry()
    is_special = special.is_special
    graph = InterfaceGraph()
    forward, backward = graph.forward, graph.backward
    seen: Set[int] = set()
    with obs.span("neighbor_sets"):
        accumulate_neighbors(traces, forward, backward, seen, is_special)
    universe = set(all_addresses) if all_addresses is not None else seen
    universe.update(seen)
    return finish_interface_graph(graph, seen, universe, is_special, obs)


def finish_interface_graph(
    graph: InterfaceGraph,
    seen: Set[int],
    universe: Set[int],
    is_special: Callable[[int], bool],
    obs: Observability = NULL_OBS,
) -> InterfaceGraph:
    """Assign other sides and emit the graph-built observability.

    Shared tail of graph construction: the serial builder and the
    sharded merge of :mod:`repro.perf.graph` both end here, so the
    ``graph.built`` event and gauges are byte-identical however the
    neighbor tables were produced.
    """
    with obs.span("other_sides"):
        graph.other_sides = infer_other_sides(
            address for address in universe if not is_special(address)
        )
    if obs.enabled:
        obs.event(
            "graph.built",
            addresses=len(seen),
            forward_sets=len(graph.forward),
            backward_sets=len(graph.backward),
            universe=len(universe),
        )
        obs.gauge("graph.addresses", len(seen))
        obs.gauge("graph.forward_sets", len(graph.forward))
        obs.gauge("graph.backward_sets", len(graph.backward))
    return graph
