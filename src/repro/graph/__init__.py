"""Interface-level graph structures (paper sections 3.2, 4.2, 4.3)."""

from repro.graph.halves import FORWARD, BACKWARD, Half, half_str, opposite
from repro.graph.neighbors import InterfaceGraph, build_interface_graph
from repro.graph.othersides import OtherSideTable, infer_other_sides

__all__ = [
    "BACKWARD",
    "FORWARD",
    "Half",
    "InterfaceGraph",
    "OtherSideTable",
    "build_interface_graph",
    "half_str",
    "infer_other_sides",
    "opposite",
]
