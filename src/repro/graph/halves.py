"""Interface halves (paper section 3.2).

Each interface address is split into a *forward half* — the interface
looking at its forward neighbor set (addresses seen one hop after it) —
and a *backward half*, looking at the backward neighbor set.  MAP-IT
draws inferences and maintains IP-to-AS mappings per half, because only
one direction is expected to carry evidence of an inter-AS link and
because updating one half must not contaminate the other (section
4.4.1).

A half is represented as the tuple ``(address, direction)`` with
direction :data:`FORWARD` (True) or :data:`BACKWARD` (False); tuples
keep the millions of dict operations cheap.

The *other side* of a half is the opposite-direction half of the other
endpoint of its point-to-point link: e.g. the other side of
``198.71.46.180_b`` (/31) is ``198.71.46.181_f``.
"""

from __future__ import annotations

from typing import Tuple

from repro.net.ipv4 import format_address

#: Direction markers.  A forward half sees the forward neighbor set.
FORWARD = True
BACKWARD = False

#: A half is an ``(address, direction)`` tuple.
Half = Tuple[int, bool]


def forward_half(address: int) -> Half:
    """The forward half of *address*."""
    return (address, FORWARD)


def backward_half(address: int) -> Half:
    """The backward half of *address*."""
    return (address, BACKWARD)


def opposite(half: Half) -> Half:
    """The same interface looking the other way."""
    return (half[0], not half[1])


def other_side_half(half: Half, other_address: int) -> Half:
    """The other side of *half*: the link partner, opposite direction."""
    return (other_address, not half[1])


def half_str(half: Half) -> str:
    """Render like the paper: ``198.71.46.180_f``."""
    suffix = "f" if half[1] else "b"
    return f"{format_address(half[0])}_{suffix}"


def half_fields(half: Half) -> dict:
    """*half* as flat trace-event fields (docs/OBSERVABILITY.md).

    Addresses are rendered dotted so trace files are greppable for the
    same strings ``half_str`` and the inference output print.
    """
    return {"address": format_address(half[0]), "forward": half[1]}
