"""RFC 6890 special-purpose address registry.

MAP-IT excludes private/shared addresses from neighbor sets (section
4.3) because they are not globally routable or unique and can be reused
by many ASes, so no inference may be drawn from or about them.  This
module provides the registry of such prefixes and a fast membership
test.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie

#: Special-purpose registries per RFC 6890 (plus conventional extras)
#: as ``(prefix, name)`` pairs.
SPECIAL_PURPOSE_PREFIXES = (
    ("0.0.0.0/8", "this host on this network"),
    ("10.0.0.0/8", "private-use"),
    ("100.64.0.0/10", "shared address space (CGN)"),
    ("127.0.0.0/8", "loopback"),
    ("169.254.0.0/16", "link local"),
    ("172.16.0.0/12", "private-use"),
    ("192.0.0.0/24", "IETF protocol assignments"),
    ("192.0.2.0/24", "documentation (TEST-NET-1)"),
    ("192.88.99.0/24", "6to4 relay anycast"),
    ("192.168.0.0/16", "private-use"),
    ("198.18.0.0/15", "benchmarking"),
    ("198.51.100.0/24", "documentation (TEST-NET-2)"),
    ("203.0.113.0/24", "documentation (TEST-NET-3)"),
    ("224.0.0.0/4", "multicast"),
    ("240.0.0.0/4", "reserved"),
    ("255.255.255.255/32", "limited broadcast"),
)


class SpecialPurposeRegistry:
    """Membership test for special-purpose (non-routable) addresses."""

    def __init__(self, prefixes: Optional[Iterable[Prefix]] = None) -> None:
        self._trie = PrefixTrie()
        self._names = {}
        if prefixes is not None:
            for prefix in prefixes:
                self.add(prefix, "custom")

    def add(self, prefix: Prefix, name: str = "") -> None:
        """Register a special-purpose prefix."""
        self._trie.insert(prefix, name)
        self._names[prefix] = name

    def is_special(self, address: int) -> bool:
        """True when *address* falls in any registered prefix."""
        return address in self._trie

    def name_for(self, address: int) -> Optional[str]:
        """Registry name covering *address*, or None."""
        return self._trie.lookup_value(address)

    def __len__(self) -> int:
        return len(self._names)


def default_special_registry() -> SpecialPurposeRegistry:
    """The RFC 6890 registry used by the paper's sanitization."""
    registry = SpecialPurposeRegistry()
    for text, name in SPECIAL_PURPOSE_PREFIXES:
        registry.add(Prefix.parse(text), name)
    return registry
