"""IPv4 prefixes and point-to-point link arithmetic.

MAP-IT section 4.2: the two interfaces of a layer-3 point-to-point link
are addressed out of the same /30 or /31 prefix.  In a /30 only the two
middle addresses are usable hosts (network and broadcast addresses are
reserved); RFC 3021 permits both addresses of a /31 to be hosts.  The
``p2p_other_side_*`` helpers compute the opposite endpoint under each
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.ipv4 import MAX_ADDRESS, format_address, parse_address


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix: a network address and a prefix length.

    The network address is canonicalized (host bits cleared) on
    construction, so two prefixes covering the same block always
    compare equal.
    """

    address: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length {self.length} out of range")
        if not 0 <= self.address <= MAX_ADDRESS:
            raise ValueError(f"address {self.address} out of range")
        canonical = self.address & self.mask
        if canonical != self.address:
            object.__setattr__(self, "address", canonical)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation.

        >>> Prefix.parse("192.0.2.0/24").length
        24
        """
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(parse_address(addr_text), int(len_text))

    @property
    def mask(self) -> int:
        """The network mask as an integer."""
        if self.length == 0:
            return 0
        return (MAX_ADDRESS << (32 - self.length)) & MAX_ADDRESS

    @property
    def broadcast(self) -> int:
        """The highest address covered by this prefix."""
        return self.address | (~self.mask & MAX_ADDRESS)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, address: int) -> bool:
        """Return True when *address* falls inside this prefix."""
        return (address & self.mask) == self.address

    def contains_prefix(self, other: "Prefix") -> bool:
        """Return True when *other* is equal to or more specific than us."""
        return other.length >= self.length and self.contains(other.address)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the subnets of this prefix at *new_length*."""
        if new_length < self.length:
            raise ValueError("new_length shorter than prefix length")
        step = 1 << (32 - new_length)
        for base in range(self.address, self.broadcast + 1, step):
            yield Prefix(base, new_length)

    def __str__(self) -> str:
        return f"{format_address(self.address)}/{self.length}"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.address, self.broadcast + 1))


def prefix_of(address: int, length: int) -> Prefix:
    """The prefix of the given length containing *address*."""
    return Prefix(address & Prefix(0, length).mask, length)


def host_addresses(prefix: Prefix) -> Iterator[int]:
    """Yield the usable host addresses of a prefix.

    For /31 both addresses are hosts (RFC 3021); for /32 the single
    address is a host; otherwise the network and broadcast addresses
    are excluded.
    """
    if prefix.length >= 31:
        yield from prefix
    else:
        yield from range(prefix.address + 1, prefix.broadcast)


def p2p_other_side_31(address: int) -> int:
    """Other endpoint assuming the link is addressed from a /31.

    The two hosts of a /31 differ only in the low bit.
    """
    return address ^ 1


def p2p_other_side_30(address: int) -> int:
    """Other endpoint assuming the link is addressed from a /30.

    The usable hosts of a /30 are the two middle addresses
    (``base+1`` and ``base+2``).  Raises ValueError when *address* is a
    reserved (network/broadcast) address of its /30, since such an
    address cannot be a /30 host at all.
    """
    low2 = address & 3
    if low2 == 1:
        return address + 1
    if low2 == 2:
        return address - 1
    raise ValueError(
        f"{format_address(address)} is a reserved address in its /30"
    )


def is_reserved_in_30(address: int) -> bool:
    """True when *address* is the network or broadcast address of its /30."""
    return (address & 3) in (0, 3)
