"""Binary radix trie with longest-prefix-match lookup.

This backs every IP-to-AS mapping structure in the library.  The trie
stores a value per prefix and answers: which is the longest (most
specific) inserted prefix containing a given address, and what value is
attached to it?  That is exactly the semantics of BGP-derived IP2AS
mapping (section 5 of the paper: "longest matching prefix").

Implementation notes: nodes are plain lists ``[zero, one, value, has]``
rather than objects, which roughly halves memory and speeds up the
millions of lookups a full run performs.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.net.prefix import Prefix

_ZERO, _ONE, _VALUE, _HAS = 0, 1, 2, 3


def _new_node() -> list:
    return [None, None, None, False]


class PrefixTrie:
    """Map :class:`Prefix` keys to values with longest-prefix-match."""

    def __init__(self) -> None:
        self._root = _new_node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: Any) -> None:
        """Insert or replace the value at *prefix*."""
        node = self._root
        address, length = prefix.address, prefix.length
        for depth in range(length):
            bit = (address >> (31 - depth)) & 1
            child = node[bit]
            if child is None:
                child = _new_node()
                node[bit] = child
            node = child
        if not node[_HAS]:
            self._size += 1
        node[_VALUE] = value
        node[_HAS] = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove *prefix*; return True when it was present.

        Child nodes are left in place (no path compression), which is
        fine for our workloads where removals are rare.
        """
        node = self._root
        address, length = prefix.address, prefix.length
        for depth in range(length):
            bit = (address >> (31 - depth)) & 1
            node = node[bit]
            if node is None:
                return False
        if not node[_HAS]:
            return False
        node[_HAS] = False
        node[_VALUE] = None
        self._size -= 1
        return True

    def exact(self, prefix: Prefix) -> Optional[Any]:
        """Value stored exactly at *prefix*, or None."""
        node = self._root
        address, length = prefix.address, prefix.length
        for depth in range(length):
            bit = (address >> (31 - depth)) & 1
            node = node[bit]
            if node is None:
                return None
        return node[_VALUE] if node[_HAS] else None

    def lookup(self, address: int) -> Optional[Tuple[Prefix, Any]]:
        """Longest-prefix match for *address*.

        Returns ``(matched_prefix, value)`` or ``None`` when no inserted
        prefix covers the address.
        """
        node = self._root
        best_value = None
        best_length = -1
        if node[_HAS]:
            best_value = node[_VALUE]
            best_length = 0
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node[bit]
            if node is None:
                break
            if node[_HAS]:
                best_value = node[_VALUE]
                best_length = depth + 1
        if best_length < 0:
            return None
        mask = 0 if best_length == 0 else ((1 << best_length) - 1) << (32 - best_length)
        return Prefix(address & mask, best_length), best_value

    def lookup_value(self, address: int) -> Optional[Any]:
        """Value of the longest-prefix match, or None."""
        match = self.lookup(address)
        return match[1] if match is not None else None

    def __contains__(self, address: int) -> bool:
        return self.lookup(address) is not None

    def items(self) -> Iterator[Tuple[Prefix, Any]]:
        """Iterate ``(prefix, value)`` pairs in address order."""
        stack: List[Tuple[list, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, address, depth = stack.pop()
            if node[_HAS]:
                yield Prefix(address, depth), node[_VALUE]
            if node[_ONE] is not None:
                stack.append(
                    (node[_ONE], address | (1 << (31 - depth)), depth + 1)
                )
            if node[_ZERO] is not None:
                stack.append((node[_ZERO], address, depth + 1))
