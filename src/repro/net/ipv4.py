"""IPv4 address parsing and formatting.

All hot-path code in the library passes addresses around as integers.
These helpers are the only place where string forms are produced or
consumed, which keeps parsing bugs in one spot and the rest of the code
fast and allocation-free.
"""

from __future__ import annotations

MAX_ADDRESS = (1 << 32) - 1


class AddressError(ValueError):
    """Raised when a dotted-quad string cannot be parsed."""


def parse_address(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> parse_address("10.0.0.1")
    167772161

    Raises :class:`AddressError` for malformed input, including octets
    out of range, wrong octet counts, and non-numeric octets.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"expected 4 octets, got {len(parts)}: {text!r}")
    value = 0
    for part in parts:
        # isascii() matters: str.isdigit() accepts Unicode digits like
        # '³', which int() then rejects (or worse, silently converts).
        if (
            not part
            or not part.isascii()
            or not part.isdigit()
            or (len(part) > 1 and part[0] == "0")
        ):
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_address(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address.

    >>> format_address(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_ADDRESS:
        raise AddressError(f"address {value} out of range")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def is_valid_address(text: str) -> bool:
    """Return True when *text* parses as a dotted-quad IPv4 address."""
    try:
        parse_address(text)
    except AddressError:
        return False
    return True
