"""IPv4 network primitives used throughout the MAP-IT reproduction.

Addresses are represented as plain ``int`` values (0..2**32-1) on hot
paths; the helpers here convert between dotted-quad strings and ints,
model prefixes, implement the point-to-point /30 vs /31 "other side"
arithmetic from MAP-IT section 4.2, provide a longest-prefix-match trie,
and expose the RFC 6890 special-purpose address registry used to filter
private/shared addresses out of neighbor sets.
"""

from repro.net.ipv4 import (
    MAX_ADDRESS,
    format_address,
    is_valid_address,
    parse_address,
)
from repro.net.prefix import (
    Prefix,
    host_addresses,
    p2p_other_side_30,
    p2p_other_side_31,
    prefix_of,
)
from repro.net.special import SpecialPurposeRegistry, default_special_registry
from repro.net.trie import PrefixTrie

__all__ = [
    "MAX_ADDRESS",
    "Prefix",
    "PrefixTrie",
    "SpecialPurposeRegistry",
    "default_special_registry",
    "format_address",
    "host_addresses",
    "is_valid_address",
    "p2p_other_side_30",
    "p2p_other_side_31",
    "parse_address",
    "prefix_of",
]
