"""Synthetic Internet simulator.

Stands in for the measurement infrastructure the paper consumes: CAIDA
ARK traceroutes, BGP collector dumps, IXP directories, AS2ORG sibling
data, and AS relationships - all generated from one seeded topology
with exact ground truth attached.

Entry point: :func:`repro.sim.scenario.build_scenario` with a
:class:`repro.sim.scenario.ScenarioConfig`.
"""

from repro.sim.asgraph import ASGraph, ASGraphConfig, ASNode, Tier, generate_as_graph
from repro.sim.groundtruth import GroundTruth
from repro.sim.network import Network, build_network
from repro.sim.scenario import Scenario, ScenarioConfig, build_scenario
from repro.sim.testbed import Testbed, TestbedBuilder

__all__ = [
    "ASGraph",
    "ASGraphConfig",
    "ASNode",
    "GroundTruth",
    "Network",
    "Scenario",
    "ScenarioConfig",
    "Testbed",
    "TestbedBuilder",
    "Tier",
    "build_network",
    "build_scenario",
    "generate_as_graph",
]
