"""Topology summaries for generated and hand-authored worlds."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.sim.asgraph import ASGraph
from repro.sim.network import EXTERNAL, INTERNAL, IXP_LAN, MONITOR_LAN, Network


def describe_as_graph(graph: ASGraph) -> Dict[str, object]:
    """Counts per tier plus edge-kind totals."""
    tiers = Counter(node.tier.value for node in graph.nodes.values())
    kinds = Counter(edge.kind for edge in graph.edges)
    return {
        "ases": len(graph),
        "by_tier": dict(sorted(tiers.items())),
        "transit_edges": kinds.get("transit", 0),
        "peering_edges": kinds.get("peer", 0),
        "ixps": len(graph.ixps),
        "ixp_sessions": sum(len(ixp.sessions) for ixp in graph.ixps),
        "sibling_groups": len(graph.sibling_groups),
        "natted_stubs": sum(1 for node in graph.nodes.values() if node.natted),
    }


def describe_network(network: Network) -> Dict[str, object]:
    """Router/link/interface totals and artifact-flag counts."""
    link_kinds = Counter(link.kind for link in network.links.values())
    routers = network.routers.values()
    return {
        "routers": len(network.routers),
        "interfaces": len(network.address_owner),
        "internal_links": link_kinds.get(INTERNAL, 0),
        "external_links": link_kinds.get(EXTERNAL, 0),
        "ixp_lans": link_kinds.get(IXP_LAN, 0),
        "monitor_lans": link_kinds.get(MONITOR_LAN, 0),
        "per_packet_lb_routers": sum(1 for r in routers if r.per_packet_lb),
        "egress_reply_routers": sum(
            1 for r in network.routers.values() if r.replies_with_egress
        ),
        "silent_routers": sum(1 for r in network.routers.values() if r.silent),
        "buggy_ttl_routers": sum(1 for r in network.routers.values() if r.buggy_ttl),
    }


def describe_lines(graph: ASGraph, network: Network) -> List[str]:
    """Human-readable description, one fact per line."""
    lines: List[str] = []
    for key, value in describe_as_graph(graph).items():
        lines.append(f"{key}: {value}")
    for key, value in describe_network(network).items():
        lines.append(f"{key}: {value}")
    return lines
