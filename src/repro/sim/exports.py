"""Dataset exports: the simulator's stand-ins for public data sources.

Each function renders part of the synthetic world in the shape MAP-IT
consumes in the paper: BGP collector dumps (RouteViews/RIPE/Internet2),
a Team Cymru-style fallback table, IXP directories (PeeringDB/PCH),
CAIDA-style AS2ORG sibling data, and CAIDA-style AS relationships.
Deliberate incompleteness is supported where the paper calls the real
data incomplete (IXP directories, sibling lists).
"""

from __future__ import annotations

import random
from typing import List

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2ASBuilder
from repro.bgp.origins import merge_collectors
from repro.bgp.table import CollectorDump
from repro.ixp.dataset import IXPDataset, IXPRecord
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.sim.asgraph import ASGraph
from repro.sim.network import Network
from repro.sim.routing import ASRoutes


def export_relationships(graph: ASGraph) -> RelationshipDataset:
    """CAIDA-style relationships: transit edges, peerings, IXP sessions."""
    dataset = RelationshipDataset()
    for edge in graph.edges:
        if edge.kind == "transit":
            dataset.add_p2c(edge.a, edge.b)
        else:
            dataset.add_p2p(edge.a, edge.b)
    for ixp in graph.ixps:
        for a, b in ixp.sessions:
            dataset.add_p2p(a, b)
    return dataset


def export_as2org(
    graph: ASGraph, rng: random.Random, completeness: float = 1.0
) -> AS2Org:
    """Sibling data, optionally truncated (the paper's is incomplete)."""
    org = AS2Org()
    for index, group in enumerate(graph.sibling_groups):
        if rng.random() <= completeness:
            org.add_siblings(sorted(group), org_name=f"org-{index}")
    return org


def export_ixp_dataset(
    network: Network, rng: random.Random, completeness: float = 1.0
) -> IXPDataset:
    """IXP prefix directory, optionally missing some exchanges."""
    dataset = IXPDataset()
    for ixp in network.as_graph.ixps:
        link_id = network.ixp_links.get(ixp.name)
        if link_id is None:
            continue
        if rng.random() > completeness:
            continue
        lan = network.links[link_id]
        dataset.add(IXPRecord(prefix=lan.subnet, asn=ixp.asn, name=ixp.name))
    return dataset


def export_bgp_dumps(
    network: Network,
    as_routes: ASRoutes,
    collector_asns: List[int],
) -> List[CollectorDump]:
    """One RIB dump per collector AS.

    Each collector holds, per announced prefix, the valley-free AS path
    from its host AS to the origin.  Prefixes whose origin the
    collector cannot reach are absent, mirroring partial visibility.
    """
    dumps: List[CollectorDump] = []
    for index, collector_as in enumerate(collector_asns):
        dump = CollectorDump(name=f"collector-{index}", location=f"AS{collector_as}")
        for origin, prefixes in network.plan.announced.items():
            if not as_routes.knows(origin):
                continue  # IXP LAN space: listed in the IXP directory instead
            path = as_routes.as_path(collector_as, origin)
            if path is None:
                continue
            for prefix in prefixes:
                dump.add_route(prefix, path if path else [origin])
        dumps.append(dump)
    return dumps


def export_cymru(
    network: Network, rng: random.Random, unannounced_coverage: float = 0.6
) -> CymruTable:
    """Team Cymru-style fallback covering some unannounced space.

    The real service aggregates more feeds than any research collector
    set, so it resolves part of the infrastructure space the RIB dumps
    miss.
    """
    table = CymruTable()
    for asn, prefixes in network.plan.unannounced.items():
        for prefix in prefixes:
            if rng.random() < unannounced_coverage:
                table.add(prefix, asn)
    return table


def build_ip2as(
    network: Network,
    as_routes: ASRoutes,
    collector_asns: List[int],
    rng: random.Random,
    ixp_completeness: float = 1.0,
    cymru_coverage: float = 0.6,
):
    """Assemble the full IP2AS stack exactly as the paper does.

    Returns ``(ip2as, dumps, cymru, ixp)`` so the raw datasets can be
    persisted alongside the composite mapper.
    """
    dumps = export_bgp_dumps(network, as_routes, collector_asns)
    origins = merge_collectors(dumps)
    cymru = export_cymru(network, rng, cymru_coverage)
    ixp = export_ixp_dataset(network, rng, ixp_completeness)
    builder = IP2ASBuilder()
    builder.add_bgp(origins)
    builder.add_cymru(cymru)
    builder.set_ixp(ixp)
    return builder.build(), dumps, cymru, ixp
