"""Ground truth extracted from the synthetic network.

The simulator knows exactly which interfaces sit on inter-AS links and
which ASes each link connects — the information the paper obtains from
Internet2's interface XML and reconstructs for Level 3 / TeliaSonera
from DNS hostnames.  The evaluation package scores MAP-IT and the
baselines against this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.network import EXTERNAL, INTERNAL, IXP_LAN, MONITOR_LAN, Network


@dataclass(frozen=True)
class BorderInterface:
    """One interface on an inter-AS point-to-point link."""

    address: int
    #: AS of the router holding this interface
    router_as: int
    #: AS on the far side of the link
    connected_as: int
    #: the far interface's address
    other_address: int
    #: AS whose space numbers the link
    owner_as: int

    def pair(self) -> Tuple[int, int]:
        low, high = sorted((self.router_as, self.connected_as))
        return (low, high)


@dataclass
class GroundTruth:
    """Queryable truth about every interface in the network."""

    border: Dict[int, BorderInterface] = field(default_factory=dict)
    internal: Set[int] = field(default_factory=set)
    ixp: Dict[int, int] = field(default_factory=dict)  # address -> member AS
    #: AS of the router holding each address
    router_as: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_network(cls, network: Network) -> "GroundTruth":
        truth = cls()
        for link in network.links.values():
            if link.kind == EXTERNAL:
                (router_a, addr_a), (router_b, addr_b) = link.endpoints
                as_a = network.router_as(router_a)
                as_b = network.router_as(router_b)
                truth.border[addr_a] = BorderInterface(
                    address=addr_a,
                    router_as=as_a,
                    connected_as=as_b,
                    other_address=addr_b,
                    owner_as=link.owner_as,
                )
                truth.border[addr_b] = BorderInterface(
                    address=addr_b,
                    router_as=as_b,
                    connected_as=as_a,
                    other_address=addr_a,
                    owner_as=link.owner_as,
                )
            elif link.kind in (INTERNAL, MONITOR_LAN):
                for _, address in link.endpoints:
                    truth.internal.add(address)
            elif link.kind == IXP_LAN:
                for router_id, address in link.endpoints:
                    truth.ixp[address] = network.router_as(router_id)
            for router_id, address in link.endpoints:
                truth.router_as[address] = network.router_as(router_id)
        return truth

    # -- queries ----------------------------------------------------------

    def is_inter_as(self, address: int) -> bool:
        """True when *address* sits on a point-to-point inter-AS link."""
        return address in self.border

    def is_internal(self, address: int) -> bool:
        return address in self.internal

    def connected_pair(self, address: int) -> Optional[Tuple[int, int]]:
        """The unordered AS pair of the link at *address*, or None."""
        interface = self.border.get(address)
        return interface.pair() if interface is not None else None

    def interfaces_involving(self, asn: int) -> List[BorderInterface]:
        """All border interfaces on links with *asn* as an endpoint."""
        return [
            interface
            for interface in self.border.values()
            if asn in (interface.router_as, interface.connected_as)
        ]

    def internal_of(self, asn: int, network: Network) -> Set[int]:
        """Internal interface addresses on routers of *asn*."""
        return {
            address
            for address in self.internal
            if self.router_as.get(address) == asn
        }

    def counts(self) -> Dict[str, int]:
        return {
            "border_interfaces": len(self.border),
            "internal_interfaces": len(self.internal),
            "ixp_interfaces": len(self.ixp),
        }
