"""The stress tier: CAIDA-magnitude worlds, generated shard-by-shard.

The scenario presets (:mod:`repro.sim.presets`) build every router and
trace as Python objects before anything runs — fine up to the paper's
evaluation scale, hopeless at 10⁴–10⁵ ASes.  The stress tier trades the
full network simulator for a deterministic *closed-form* topology whose
traces can be generated in bounded memory:

* ASes form a ``fanout``-ary tree (the provider hierarchy collapsed to
  its skeleton).  AS *i*'s parent is ``(i - 1) // fanout`` — no
  adjacency structures are ever materialized; parenthood is arithmetic.
* Every AS owns one /24 from a private-free base (60.0.0.0, chosen
  outside every RFC 6890 special range).  The inter-AS link between a
  parent and its *j*-th child is numbered *from the parent's block* —
  parent-side ``base(p) + 10 + 2j``, child-side ``base(p) + 11 + 2j`` —
  so the child's ingress interface sits in the parent's address space,
  exactly the far-side numbering MAP-IT exists to untangle.
* A trace climbs from the monitor's AS to the lowest common ancestor
  and descends to the target, recording each transit AS's ingress
  interface plus one internal hop per AS; depth is ``O(log n)``, so
  hop counts stay traceroute-realistic at any scale.

:func:`stress_blocks` yields the campaign as packed
:class:`~repro.perf.flat.FlatTraces` blocks of ``shard_size`` traces —
the parent folds each block and drops it
(:func:`repro.perf.ingest.fold_graph_from_blocks`), so peak residency
is one block plus the accumulated neighbor tables, never the campaign.
Everything is a pure function of the config: same seed, same blocks,
byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS, IP2ASBuilder
from repro.net.prefix import Prefix
from repro.org.as2org import AS2Org
from repro.perf.flat import FlatTraces, pack_traces
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.model import Hop, Trace

#: first address of the stress tier's allocation: 60.0.0.0, outside
#: every special-purpose registry prefix; 10⁵ ASes × /24 ends well
#: short of the next special block
ADDRESS_BASE = 0x3C000000

#: ASNs start here — clear of the scenario presets' allocations
ASN_BASE = 200_000


@dataclass(frozen=True)
class StressConfig:
    """One stress world, fully determined by its fields.

    ``as_count`` is the tree size (the acceptance tier starts at 10⁴);
    ``trace_count`` the campaign size; ``shard_size`` the traces per
    generated block — the generator's residency knob.  ``fanout`` is
    the tree arity; depth scales as ``log_fanout(as_count)``.
    """

    seed: int = 0
    as_count: int = 10_000
    monitor_count: int = 8
    trace_count: int = 100_000
    shard_size: int = 4096
    fanout: int = 12

    def __post_init__(self) -> None:
        if self.as_count < 2:
            raise ValueError("as_count must be at least 2")
        if self.fanout < 2:
            raise ValueError("fanout must be at least 2")
        if self.shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if self.monitor_count < 1:
            raise ValueError("monitor_count must be at least 1")
        if ADDRESS_BASE + self.as_count * 256 > 0xFFFFFFFF:
            raise ValueError("as_count exceeds the stress address plan")


def _block(index: int) -> int:
    """First address of AS *index*'s /24."""
    return ADDRESS_BASE + index * 256


def asn_of(index: int) -> int:
    """The ASN assigned to tree node *index*."""
    return ASN_BASE + index


def _parent(index: int, fanout: int) -> int:
    return (index - 1) // fanout


def _child_slot(index: int, fanout: int) -> int:
    """Which of its parent's link slots AS *index* occupies (0-based)."""
    return (index - 1) % fanout


def _link_addresses(child: int, fanout: int) -> Tuple[int, int]:
    """(parent-side, child-side) interface addresses of *child*'s uplink.

    Both live in the parent's /24 — the child's ingress interface is
    numbered from the parent's space (far-side numbering).
    """
    parent = _parent(child, fanout)
    slot = _child_slot(child, fanout)
    parent_side = _block(parent) + 10 + 2 * slot
    return parent_side, parent_side + 1


def _ancestors(index: int, fanout: int) -> List[int]:
    """The path from *index* up to the root, inclusive."""
    chain = [index]
    while index != 0:
        index = _parent(index, fanout)
        chain.append(index)
    return chain


def _as_path(source: int, target: int, fanout: int) -> List[int]:
    """The tree path from *source* to *target*, both inclusive."""
    up = _ancestors(source, fanout)
    down = _ancestors(target, fanout)
    positions = {node: depth for depth, node in enumerate(down)}
    for climb, node in enumerate(up):
        if node in positions:
            return up[:climb + 1] + down[: positions[node]][::-1]
    raise AssertionError("tree paths always meet at the root")


def _trace_hops(path: List[int], dst: int, fanout: int) -> Tuple[Hop, ...]:
    """Ingress-interface hop sequence along an AS *path* toward *dst*.

    Crossing each inter-AS link records the entered AS's side of that
    link; entering a transit AS also records its internal core
    interface, so the graph sees internal context around every far-side
    address.  The final hop is the destination host itself.
    """
    hops: List[Hop] = []
    for previous, current in zip(path, path[1:]):
        if current == _parent(previous, fanout):
            ingress, _ = _link_addresses(previous, fanout)
        else:
            _, ingress = _link_addresses(current, fanout)
        hops.append(Hop(ingress))
        if current != path[-1]:
            hops.append(Hop(_block(current) + 1))
    hops.append(Hop(dst))
    return tuple(hops)


def _monitor_ases(config: StressConfig) -> List[int]:
    """Monitor host ASes: the deepest leaves, spread deterministically."""
    count = min(config.monitor_count, config.as_count - 1)
    step = max(1, (config.as_count - 1) // count)
    return [config.as_count - 1 - slot * step for slot in range(count)]


def stress_traces(config: StressConfig) -> Iterator[List[Trace]]:
    """Yield the campaign as lists of at most ``shard_size`` traces.

    Pure function of *config*: the seeded generator drives every
    monitor/target choice, so shard boundaries never change content —
    concatenating the shards of any two runs gives identical traces.
    """
    rng = random.Random(config.seed ^ 0x57E55)
    monitors = _monitor_ases(config)
    shard: List[Trace] = []
    for index in range(config.trace_count):
        monitor_as = monitors[rng.randrange(len(monitors))]
        target_as = rng.randrange(config.as_count)
        dst = _block(target_as) + 200 + rng.randrange(50)
        path = _as_path(monitor_as, target_as, config.fanout)
        monitor = f"stress-{monitors.index(monitor_as):03d}"
        shard.append(
            Trace(monitor, dst, _trace_hops(path, dst, config.fanout), index)
        )
        if len(shard) >= config.shard_size:
            yield shard
            shard = []
    if shard:
        yield shard


def stress_blocks(config: StressConfig) -> Iterator[FlatTraces]:
    """The campaign as packed columnar blocks, one shard at a time.

    This is the stress ingest contract: each yielded block is
    independent, at most ``shard_size`` traces, and the only shard
    resident while the consumer folds it.
    """
    for shard in stress_traces(config):
        yield pack_traces(shard)


def stress_ip2as(config: StressConfig) -> IP2AS:
    """The world's address → AS mapping: one /24 per AS.

    Delivered through the Cymru fallback layer (the closed-form world
    has no BGP collectors); O(as_count) prefixes.
    """
    table = CymruTable()
    for index in range(config.as_count):
        table.add(Prefix(_block(index), 24), asn_of(index))
    return IP2ASBuilder().add_cymru(table).build()


def stress_relationships(config: StressConfig) -> RelationshipDataset:
    """Provider/customer edges of the tree (parents transit children)."""
    dataset = RelationshipDataset()
    for child in range(1, config.as_count):
        dataset.add_p2c(asn_of(_parent(child, config.fanout)), asn_of(child))
    return dataset


def stress_org(config: StressConfig) -> AS2Org:
    """Sibling data for the stress world: every AS is its own org."""
    return AS2Org()
