"""Address-space allocation for the synthetic Internet.

Every AS receives one or more prefixes carved out of a global pool;
link subnets (/30 or /31), LAN prefixes, and host addresses are then
allocated from the owning AS's space.  The allocator is deliberately
paper-shaped: roughly 40% of point-to-point links draw from a /31
(section 4.2 reports 40.4%), transit links usually draw from the
provider's space (with a configurable violation rate), and some
infrastructure prefixes can be left unannounced to exercise the
UNKNOWN-mapping paths of the algorithm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.prefix import Prefix


class AddressPoolExhausted(RuntimeError):
    """Raised when an allocator runs out of space."""


@dataclass
class ASAllocator:
    """Hands out subnets and host addresses from one AS's prefixes."""

    asn: int
    prefixes: List[Prefix]
    _cursor: int = 0
    _block_index: int = 0
    _reserved: List[Prefix] = field(default_factory=list)

    def reserve(self, prefix: Prefix) -> None:
        """Mark *prefix* as used by hand so allocation skips it.

        Hand-authored testbeds assign link subnets explicitly; later
        automatic allocations (e.g. monitor LANs) must not collide.
        """
        self._reserved.append(prefix)

    def _overlaps_reserved(self, base: int, size: int) -> Optional[int]:
        """The end of a reserved range overlapping [base, base+size)."""
        end = base + size - 1
        for reserved in self._reserved:
            if base <= reserved.broadcast and reserved.address <= end:
                return reserved.broadcast + 1
        return None

    def _advance(self, size: int) -> int:
        """Reserve *size* aligned addresses; return the base."""
        while self._block_index < len(self.prefixes):
            block = self.prefixes[self._block_index]
            base = block.address + self._cursor
            aligned = (base + size - 1) & ~(size - 1)
            bumped = self._overlaps_reserved(aligned, size)
            while bumped is not None and bumped + size - 1 <= block.broadcast:
                aligned = (bumped + size - 1) & ~(size - 1)
                bumped = self._overlaps_reserved(aligned, size)
            if aligned + size - 1 <= block.broadcast and bumped is None:
                self._cursor = aligned + size - block.address
                return aligned
            self._block_index += 1
            self._cursor = 0
        raise AddressPoolExhausted(f"AS{self.asn} out of address space")

    def link_subnet(self, use_31: bool) -> Prefix:
        """Allocate a point-to-point link subnet."""
        length = 31 if use_31 else 30
        base = self._advance(1 << (32 - length))
        return Prefix(base, length)

    def lan(self, length: int = 24) -> Prefix:
        """Allocate a LAN prefix (used for IXP fabrics and stub LANs)."""
        base = self._advance(1 << (32 - length))
        return Prefix(base, length)

    def host(self) -> int:
        """Allocate a single host address (loopbacks, servers)."""
        return self._advance(1)


@dataclass
class AddressPlan:
    """Global allocation state: which AS owns which prefixes."""

    allocators: Dict[int, ASAllocator] = field(default_factory=dict)
    announced: Dict[int, List[Prefix]] = field(default_factory=dict)
    unannounced: Dict[int, List[Prefix]] = field(default_factory=dict)

    def allocator(self, asn: int) -> ASAllocator:
        return self.allocators[asn]

    def all_prefixes(self) -> Iterator[Tuple[Prefix, int]]:
        """Every allocated ``(prefix, owner)`` pair, announced or not."""
        for asn, prefixes in self.announced.items():
            for prefix in prefixes:
                yield prefix, asn
        for asn, prefixes in self.unannounced.items():
            for prefix in prefixes:
                yield prefix, asn


def build_address_plan(
    asns: List[int],
    rng: random.Random,
    unannounced_fraction: float = 0.05,
    extra_prefix_probability: float = 0.3,
) -> AddressPlan:
    """Assign address space to every AS.

    Each AS gets a /16 (plus occasionally a second, disjoint prefix,
    so longest-prefix matching across multiple blocks is exercised).
    A small fraction of the *extra* prefixes is left unannounced,
    mirroring the unannounced infrastructure space the paper runs into.
    """
    plan = AddressPlan()
    # Carve /16s out of 1.0.0.0/8 .. 99.0.0.0/8, skipping special space.
    blocks = _usable_16s()
    for asn in asns:
        primary = next(blocks)
        prefixes = [primary]
        announced = [primary]
        unannounced: List[Prefix] = []
        if rng.random() < extra_prefix_probability:
            extra = next(blocks)
            if rng.random() < unannounced_fraction / max(extra_prefix_probability, 1e-9):
                # Unannounced infrastructure space (the paper's IP2AS
                # tool covers 99.2%, not 100%): such ASes number their
                # internal gear from the unannounced block, so it shows
                # up in traces without a BGP origin.  Putting it first
                # makes the allocator draw infrastructure from it.
                prefixes.insert(0, extra)
                unannounced.append(extra)
            else:
                prefixes.append(extra)
                announced.append(extra)
        plan.allocators[asn] = ASAllocator(asn=asn, prefixes=prefixes)
        plan.announced[asn] = announced
        plan.unannounced[asn] = unannounced
    return plan


def _usable_16s() -> Iterator[Prefix]:
    """Yield /16 blocks from public space, skipping RFC 6890 ranges."""
    skip_first_octets = {0, 10, 127}
    for first in range(1, 224):
        if first in skip_first_octets or first in (100, 169, 172, 192, 198, 203, 224):
            continue
        for second in range(0, 256):
            yield Prefix((first << 24) | (second << 16), 16)


@dataclass
class LinkAddressing:
    """Outcome of numbering one point-to-point link."""

    subnet: Prefix
    owner_as: int
    #: address assigned to the prefix owner's router
    owner_address: int
    #: address assigned to the other router
    other_address: int


def number_p2p_link(
    allocator: ASAllocator, rng: random.Random, p31_fraction: float = 0.4
) -> LinkAddressing:
    """Allocate and assign addresses for one point-to-point link.

    The prefix owner's router takes the first host address, the far
    router the second — mirroring the common provider-takes-low
    practice.
    """
    use_31 = rng.random() < p31_fraction
    subnet = allocator.link_subnet(use_31)
    if use_31:
        low, high = subnet.address, subnet.address + 1
    else:
        low, high = subnet.address + 1, subnet.address + 2
    return LinkAddressing(
        subnet=subnet,
        owner_as=allocator.asn,
        owner_address=low,
        other_address=high,
    )
