"""Router-level topology synthesis.

Expands the AS-level graph into routers, links, and numbered
interfaces:

* each AS gets a small backbone (ring plus random chords) whose links
  are numbered from its own space — the *intra*-AS interfaces of Fig 2;
* every AS adjacency becomes one or two physical point-to-point links
  between border routers, numbered from the provider's space by
  convention, from the customer's with the configured violation
  probability (Internet2-style), or from a random side for peerings;
* each IXP becomes a multipoint LAN with one interface per member.

The resulting :class:`Network` is the single source of truth: the
traceroute engine walks it, and the ground-truth export reads link
roles straight from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.net.prefix import Prefix
from repro.sim.addressing import (
    AddressPlan,
    LinkAddressing,
    build_address_plan,
    number_p2p_link,
)
from repro.sim.asgraph import ASGraph, ASNode, IXPSpec

INTERNAL = "internal"
EXTERNAL = "external"
IXP_LAN = "ixp"
MONITOR_LAN = "monitor"


@dataclass
class Link:
    """A physical link: two endpoints for p2p, many for an IXP LAN."""

    link_id: int
    kind: str
    subnet: Prefix
    owner_as: int
    #: ``(router_id, address)`` per attached router
    endpoints: List[Tuple[int, int]] = field(default_factory=list)

    def other_endpoint(self, router_id: int) -> Tuple[int, int]:
        """The far endpoint of a p2p link."""
        for endpoint in self.endpoints:
            if endpoint[0] != router_id:
                return endpoint
        raise ValueError(f"link {self.link_id} has no endpoint besides {router_id}")

    def address_of(self, router_id: int) -> int:
        for endpoint_router, address in self.endpoints:
            if endpoint_router == router_id:
                return address
        raise KeyError(router_id)


@dataclass
class Router:
    """One router: its AS, name, and attached links."""

    router_id: int
    asn: int
    name: str
    #: link ids attached to this router
    links: List[int] = field(default_factory=list)
    #: per-packet load balancer (section 4.1 artifact)
    per_packet_lb: bool = False
    #: replies with the interface facing the reply path instead of the
    #: ingress interface (third-party address generator, Fig 4)
    replies_with_egress: bool = False
    #: never replies to traceroute
    silent: bool = False
    #: forwards TTL=1 packets instead of replying (quoted-TTL=0 bug)
    buggy_ttl: bool = False


@dataclass
class Network:
    """The complete router-level topology."""

    as_graph: ASGraph
    plan: AddressPlan
    routers: Dict[int, Router] = field(default_factory=dict)
    links: Dict[int, Link] = field(default_factory=dict)
    routers_by_as: Dict[int, List[int]] = field(default_factory=dict)
    #: internal adjacency per AS: router -> [(link_id, neighbor_router)]
    internal_adjacency: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    #: external p2p links between an AS pair
    external_links: Dict[FrozenSet[int], List[int]] = field(default_factory=dict)
    #: IXP LAN link per IXP name, plus which sessions it carries
    ixp_links: Dict[str, int] = field(default_factory=dict)
    ixp_sessions: Dict[FrozenSet[int], str] = field(default_factory=dict)
    #: address -> (router_id, link_id)
    address_owner: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    _next_router: int = 0
    _next_link: int = 0

    # -- construction helpers -------------------------------------------------

    def new_router(self, asn: int, name: str) -> Router:
        router = Router(router_id=self._next_router, asn=asn, name=name)
        self._next_router += 1
        self.routers[router.router_id] = router
        self.routers_by_as.setdefault(asn, []).append(router.router_id)
        self.internal_adjacency.setdefault(router.router_id, [])
        return router

    def new_link(self, kind: str, subnet: Prefix, owner_as: int) -> Link:
        link = Link(link_id=self._next_link, kind=kind, subnet=subnet, owner_as=owner_as)
        self._next_link += 1
        self.links[link.link_id] = link
        return link

    def attach(self, link: Link, router_id: int, address: int) -> None:
        link.endpoints.append((router_id, address))
        self.routers[router_id].links.append(link.link_id)
        self.address_owner[address] = (router_id, link.link_id)

    # -- queries ---------------------------------------------------------------

    def router_as(self, router_id: int) -> int:
        return self.routers[router_id].asn

    def external_link_ids(self, a: int, b: int) -> List[int]:
        return self.external_links.get(frozenset((a, b)), [])

    def border_routers(self, asn: int, toward: int) -> List[int]:
        """Routers of *asn* with a direct link (p2p or IXP) toward *toward*."""
        borders: List[int] = []
        for link_id in self.external_link_ids(asn, toward):
            for router_id, _ in self.links[link_id].endpoints:
                if self.router_as(router_id) == asn:
                    borders.append(router_id)
        session = self.ixp_sessions.get(frozenset((asn, toward)))
        if session is not None:
            lan = self.links[self.ixp_links[session]]
            for router_id, _ in lan.endpoints:
                if self.router_as(router_id) == asn:
                    borders.append(router_id)
        return borders

    def interfaces(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every ``(address, router_id, link_id)``."""
        for address, (router_id, link_id) in self.address_owner.items():
            yield address, router_id, link_id


@dataclass(frozen=True)
class NetworkConfig:
    """Knobs for :func:`build_network`."""

    p31_fraction: float = 0.4
    #: global probability a transit link is numbered from the customer
    customer_space_violation: float = 0.12
    parallel_link_probability: float = 0.15
    chord_probability: float = 0.3
    per_packet_lb_fraction: float = 0.02
    egress_reply_fraction: float = 0.05
    silent_router_fraction: float = 0.02
    buggy_ttl_fraction: float = 0.01
    unannounced_fraction: float = 0.05
    seed: int = 0


def build_network(graph: ASGraph, config: NetworkConfig = NetworkConfig()) -> Network:
    """Expand *graph* into a router-level :class:`Network`."""
    rng = random.Random(config.seed ^ 0x5EED)
    asns = sorted(graph.nodes)
    ixp_asns = sorted(ixp.asn for ixp in graph.ixps if ixp.asn is not None)
    plan = build_address_plan(
        asns + ixp_asns, rng, unannounced_fraction=config.unannounced_fraction
    )
    network = Network(as_graph=graph, plan=plan)
    for asn in asns:
        _build_backbone(network, graph.nodes[asn], rng, config)
    for edge in graph.edges:
        _build_external_links(network, edge.a, edge.b, edge.kind, rng, config)
    for ixp in graph.ixps:
        _build_ixp(network, ixp, rng)
    _assign_artifacts(network, rng, config)
    return network


def _build_backbone(
    network: Network, node: ASNode, rng: random.Random, config: NetworkConfig
) -> None:
    """Create an AS's routers and internal links (ring + chords)."""
    routers = [
        network.new_router(node.asn, f"{node.name}-r{i}")
        for i in range(node.router_count)
    ]
    if len(routers) < 2:
        return
    pairs: List[Tuple[Router, Router]] = []
    for i, router in enumerate(routers):
        pairs.append((router, routers[(i + 1) % len(routers)]))
    if len(routers) == 2:
        pairs = pairs[:1]
    for i, first in enumerate(routers):
        for second in routers[i + 2 :]:
            if rng.random() < config.chord_probability and len(routers) > 3:
                pairs.append((first, second))
    allocator = network.plan.allocator(node.asn)
    for first, second in pairs:
        addressing = number_p2p_link(allocator, rng, config.p31_fraction)
        link = network.new_link(INTERNAL, addressing.subnet, node.asn)
        network.attach(link, first.router_id, addressing.owner_address)
        network.attach(link, second.router_id, addressing.other_address)
        network.internal_adjacency[first.router_id].append(
            (link.link_id, second.router_id)
        )
        network.internal_adjacency[second.router_id].append(
            (link.link_id, first.router_id)
        )


def _build_external_links(
    network: Network,
    a: int,
    b: int,
    kind: str,
    rng: random.Random,
    config: NetworkConfig,
) -> None:
    """Create the physical link(s) realizing one AS adjacency."""
    count = 2 if rng.random() < config.parallel_link_probability else 1
    for _ in range(count):
        owner = _pick_numbering_as(network.as_graph, a, b, kind, rng, config)
        allocator = network.plan.allocator(owner)
        addressing = number_p2p_link(allocator, rng, config.p31_fraction)
        link = network.new_link(EXTERNAL, addressing.subnet, owner)
        other = b if owner == a else a
        owner_router = rng.choice(network.routers_by_as[owner])
        other_router = rng.choice(network.routers_by_as[other])
        network.attach(link, owner_router, addressing.owner_address)
        network.attach(link, other_router, addressing.other_address)
        network.external_links.setdefault(frozenset((a, b)), []).append(link.link_id)


def _pick_numbering_as(
    graph: ASGraph, a: int, b: int, kind: str, rng: random.Random, config: NetworkConfig
) -> int:
    """Whose address space numbers this link.

    Transit links conventionally use the provider's space; the provider
    node's ``customer_space_bias`` (Internet2-style) or the global
    violation probability flips that.  Peering links pick a random side.
    """
    if kind != "transit":
        return rng.choice((a, b))
    provider, customer = a, b
    bias = graph.nodes[provider].customer_space_bias
    violation = max(bias, config.customer_space_violation)
    if rng.random() < violation:
        return customer
    return provider


def _build_ixp(network: Network, ixp: IXPSpec, rng: random.Random) -> None:
    """Create an IXP LAN and attach one border router per member."""
    if ixp.asn is None or not ixp.sessions:
        return
    allocator = network.plan.allocator(ixp.asn)
    lan_prefix = allocator.lan(24)
    link = network.new_link(IXP_LAN, lan_prefix, ixp.asn)
    hosts = iter(range(lan_prefix.address + 1, lan_prefix.broadcast))
    participants = sorted({asn for session in ixp.sessions for asn in session})
    for member in participants:
        router_id = rng.choice(network.routers_by_as[member])
        network.attach(link, router_id, next(hosts))
    network.ixp_links[ixp.name] = link.link_id
    for first, second in ixp.sessions:
        network.ixp_sessions[frozenset((first, second))] = ixp.name


def _assign_artifacts(
    network: Network, rng: random.Random, config: NetworkConfig
) -> None:
    """Flag routers with the section 4.1/4.7 artifact behaviours."""
    for router in network.routers.values():
        node = network.as_graph.nodes[router.asn]
        router.per_packet_lb = rng.random() < config.per_packet_lb_fraction
        router.replies_with_egress = rng.random() < config.egress_reply_fraction
        router.silent = rng.random() < config.silent_router_fraction
        router.buggy_ttl = rng.random() < config.buggy_ttl_fraction
        if node.silent_borders and _is_border(network, router):
            router.silent = True


def _is_border(network: Network, router: Router) -> bool:
    """True when the router terminates an external or IXP link."""
    return any(
        network.links[link_id].kind in (EXTERNAL, IXP_LAN)
        for link_id in router.links
    )
