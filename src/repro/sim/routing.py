"""Policy routing for the synthetic Internet.

Two layers, as in the real thing:

* **Inter-AS**: Gao-Rexford valley-free route selection.  For each
  destination AS, every other AS picks a next-hop AS preferring
  customer-learned routes over peer-learned over provider-learned,
  breaking ties by AS-path length and then lowest next-hop ASN.
  Bilateral IXP sessions participate as peering edges.
* **Intra-AS**: per-AS IGP shortest paths (hop count) with equal-cost
  sets preserved, so the traceroute engine can model per-flow and
  per-packet load balancing across them.

Everything is deterministic given the topology; randomness lives only
in the traceroute engine.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.asgraph import ASGraph
from repro.sim.network import Network

#: Route classes in preference order.
SELF, CUSTOMER, PEER, PROVIDER = 0, 1, 2, 3

_INF = 1 << 30


class ASRoutes:
    """Valley-free next-hop tables, computed per destination AS."""

    def __init__(self, graph: ASGraph) -> None:
        self._providers: Dict[int, List[int]] = {}
        self._customers: Dict[int, List[int]] = {}
        self._peers: Dict[int, List[int]] = {}
        for asn in graph.nodes:
            self._providers[asn] = sorted(graph.providers(asn))
            self._customers[asn] = sorted(graph.customers(asn))
            self._peers[asn] = sorted(graph.peers(asn))
        for ixp in graph.ixps:
            for a, b in ixp.sessions:
                if b not in self._peers[a]:
                    self._peers[a].append(b)
                if a not in self._peers[b]:
                    self._peers[b].append(a)
        for peers in self._peers.values():
            peers.sort()
        self._asns = sorted(graph.nodes)
        self._tables: Dict[int, Dict[int, Tuple[int, int, int]]] = {}

    # -- route computation ------------------------------------------------

    def knows(self, asn: int) -> bool:
        """True when *asn* participates in inter-AS routing."""
        return asn in self._providers

    def table_for(self, dst_as: int) -> Dict[int, Tuple[int, int, int]]:
        """``asn -> (route_class, path_length, next_hop_as)`` toward *dst_as*."""
        table = self._tables.get(dst_as)
        if table is None:
            table = self._compute(dst_as) if self.knows(dst_as) else {}
            self._tables[dst_as] = table
        return table

    def _compute(self, dst_as: int) -> Dict[int, Tuple[int, int, int]]:
        customer_dist: Dict[int, int] = {dst_as: 0}
        customer_next: Dict[int, int] = {}
        # Customer routes propagate from the destination up provider
        # chains: a provider reaches dst through its customer.
        queue = deque([dst_as])
        while queue:
            current = queue.popleft()
            for provider in self._providers[current]:
                if provider not in customer_dist:
                    customer_dist[provider] = customer_dist[current] + 1
                    customer_next[provider] = current
                    queue.append(provider)
                elif (
                    customer_dist[provider] == customer_dist[current] + 1
                    and current < customer_next[provider]
                ):
                    customer_next[provider] = current

        table: Dict[int, Tuple[int, int, int]] = {}
        for asn, dist in customer_dist.items():
            route_class = SELF if asn == dst_as else CUSTOMER
            table[asn] = (route_class, dist, customer_next.get(asn, asn))

        # Peer routes: one peer hop into the customer cone.
        peer_candidates: Dict[int, Tuple[int, int]] = {}
        for asn in self._asns:
            if asn in customer_dist:
                continue
            best: Optional[Tuple[int, int]] = None
            for peer in self._peers[asn]:
                dist = customer_dist.get(peer)
                if dist is None:
                    continue
                candidate = (dist + 1, peer)
                if best is None or candidate < best:
                    best = candidate
            if best is not None:
                peer_candidates[asn] = best
                table[asn] = (PEER, best[0], best[1])

        # Provider routes: repeated relaxation up the customer->provider
        # direction (an AS uses its provider's best route of any class).
        changed = True
        while changed:
            changed = False
            for asn in self._asns:
                if asn in table and table[asn][0] in (SELF, CUSTOMER, PEER):
                    continue
                best: Optional[Tuple[int, int]] = None
                for provider in self._providers[asn]:
                    entry = table.get(provider)
                    if entry is None:
                        continue
                    candidate = (entry[1] + 1, provider)
                    if best is None or candidate < best:
                        best = candidate
                if best is not None:
                    entry = (PROVIDER, best[0], best[1])
                    if table.get(asn) != entry:
                        table[asn] = entry
                        changed = True
        return table

    def next_hop(self, src_as: int, dst_as: int) -> Optional[int]:
        """The next-hop AS from *src_as* toward *dst_as*, or None."""
        if src_as == dst_as:
            return src_as
        entry = self.table_for(dst_as).get(src_as)
        return entry[2] if entry is not None else None

    def alternate_next_hop(self, src_as: int, dst_as: int) -> Optional[int]:
        """A valid but non-best next-hop AS toward *dst_as*, or None.

        Used to model transient routing changes: the fallback route a
        network uses while its best path is withdrawn.  Candidates obey
        valley-freeness — customers and peers are only usable when they
        hold customer routes; providers export everything.
        """
        if src_as == dst_as:
            return None
        table = self.table_for(dst_as)
        best = table.get(src_as)
        candidates: List[Tuple[int, int, int]] = []
        for customer in self._customers[src_as]:
            entry = table.get(customer)
            if entry is not None and entry[0] in (SELF, CUSTOMER):
                candidates.append((CUSTOMER, entry[1] + 1, customer))
        for peer in self._peers[src_as]:
            entry = table.get(peer)
            if entry is not None and entry[0] in (SELF, CUSTOMER):
                candidates.append((PEER, entry[1] + 1, peer))
        for provider in self._providers[src_as]:
            entry = table.get(provider)
            if entry is not None:
                candidates.append((PROVIDER, entry[1] + 1, provider))
        candidates.sort()
        primary = best[2] if best is not None else None
        for _, _, asn in candidates:
            if asn != primary:
                return asn
        return None

    def as_path(self, src_as: int, dst_as: int) -> Optional[List[int]]:
        """The full AS path, or None when unreachable."""
        path = [src_as]
        current = src_as
        for _ in range(64):
            if current == dst_as:
                return path
            nxt = self.next_hop(current, dst_as)
            if nxt is None or nxt in path:
                return None
            path.append(nxt)
            current = nxt
        return None


class IGP:
    """Per-AS shortest paths with equal-cost next-hop sets."""

    def __init__(self, network: Network) -> None:
        self._network = network
        #: (src_router, dst_router) -> sorted [(link_id, next_router)]
        self._next: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._dist: Dict[Tuple[int, int], int] = {}
        self._done: Set[int] = set()

    def _ensure(self, dst_router: int) -> None:
        """BFS from *dst_router* within its AS, recording ECMP sets."""
        if dst_router in self._done:
            return
        self._done.add(dst_router)
        network = self._network
        dist: Dict[int, int] = {dst_router: 0}
        queue = deque([dst_router])
        while queue:
            current = queue.popleft()
            for link_id, neighbor in network.internal_adjacency[current]:
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    queue.append(neighbor)
        for router_id, router_dist in dist.items():
            self._dist[(router_id, dst_router)] = router_dist
            if router_id == dst_router:
                continue
            hops = sorted(
                (link_id, neighbor)
                for link_id, neighbor in network.internal_adjacency[router_id]
                if dist.get(neighbor, _INF) == router_dist - 1
            )
            self._next[(router_id, dst_router)] = hops

    def distance(self, src_router: int, dst_router: int) -> Optional[int]:
        """IGP hop count, or None when disconnected / different ASes."""
        self._ensure(dst_router)
        return self._dist.get((src_router, dst_router))

    def next_hops(self, src_router: int, dst_router: int) -> List[Tuple[int, int]]:
        """Equal-cost ``(link_id, next_router)`` choices, sorted."""
        self._ensure(dst_router)
        return self._next.get((src_router, dst_router), [])
