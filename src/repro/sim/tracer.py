"""Traceroute engine with artifact injection (paper sections 4.1, 4.7).

Simulates Paris-style traceroute over the synthetic network.  The
engine walks the two-layer routing (valley-free inter-AS, ECMP IGP
intra-AS) and renders one hop per TTL, injecting exactly the artifact
classes the paper contends with:

* **per-flow load balancing** — ECMP choices hashed on the flow id, so
  one trace stays on one path (what Paris traceroute guarantees);
* **per-packet load balancing** — flagged routers choose uniformly per
  probe, so consecutive TTLs may ride different paths, creating the
  false adjacencies and cycles section 4.1 discards;
* **transient route changes** — with small probability a trace's later
  probes reroute (the flow hash is re-salted mid-trace);
* **third-party addresses** — flagged routers reply with their
  interface toward the *reply* path instead of the ingress (Fig 4);
* **quoted-TTL=0 bug** — flagged routers forward TTL=1 probes, so the
  next router answers with quoted TTL 0;
* **silent routers / silent border policies** — `*` hops;
* **NAT stubs** — every router inside replies with the stub's single
  public address (section 4.8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.trie import PrefixTrie
from repro.obs.observer import NULL_OBS, Observability
from repro.sim.network import EXTERNAL, IXP_LAN, MONITOR_LAN, Network
from repro.sim.routing import ASRoutes, IGP
from repro.traceroute.model import Hop, Trace

_MAX_TTL = 40
_GAP_LIMIT = 3


@dataclass
class Monitor:
    """A vantage point: a host hanging off one router."""

    name: str
    asn: int
    address: int
    gateway_router: int
    lan_link: int


@dataclass(frozen=True)
class TracerConfig:
    """Probabilities for per-trace artifact behaviour."""

    transient_change_probability: float = 0.02
    destination_reply_probability: float = 0.7
    seed: int = 0


class TracerouteEngine:
    """Walks the network and renders traces."""

    def __init__(
        self,
        network: Network,
        as_routes: ASRoutes,
        igp: IGP,
        config: TracerConfig = TracerConfig(),
        obs: Observability = NULL_OBS,
    ) -> None:
        self.network = network
        self.as_routes = as_routes
        self.igp = igp
        self.config = config
        self.obs = obs
        self._owner_trie = PrefixTrie()
        for prefix, asn in network.plan.all_prefixes():
            self._owner_trie.insert(prefix, asn)
        self._nat_address: Dict[int, int] = self._find_nat_addresses()
        self._monitors: Dict[str, Monitor] = {}
        self._home_cache: Dict[int, int] = {}

    # -- setup ---------------------------------------------------------------

    def add_monitor(
        self,
        name: str,
        asn: int,
        rng: random.Random,
        router_id: Optional[int] = None,
    ) -> Monitor:
        """Attach a monitor host to a router of *asn*.

        The gateway router is chosen at random unless *router_id* pins
        it (hand-authored testbeds do).
        """
        network = self.network
        if router_id is None:
            router_id = rng.choice(network.routers_by_as[asn])
        allocator = network.plan.allocator(asn)
        subnet = allocator.link_subnet(use_31=False)
        gateway_address, host_address = subnet.address + 1, subnet.address + 2
        link = network.new_link(MONITOR_LAN, subnet, asn)
        network.attach(link, router_id, gateway_address)
        monitor = Monitor(
            name=name,
            asn=asn,
            address=host_address,
            gateway_router=router_id,
            lan_link=link.link_id,
        )
        self._monitors[name] = monitor
        return monitor

    def _find_nat_addresses(self) -> Dict[int, int]:
        """The single public address each NATed stub exposes.

        Everything behind a NATed stub's border — internal routers and
        probed destinations alike — answers from this one address (a
        NAT pool address in the stub's own space), which is what makes
        such stubs invisible to the main algorithm and the target of
        the Alg 4 heuristic.
        """
        addresses: Dict[int, int] = {}
        for node in self.network.as_graph.nodes.values():
            if node.natted:
                addresses[node.asn] = self.network.plan.allocator(node.asn).host()
        return addresses

    # -- address helpers -----------------------------------------------------

    def owner_as(self, address: int) -> Optional[int]:
        """Which AS's allocation covers *address* (ground truth)."""
        return self._owner_trie.lookup_value(address)

    def home_router(self, address: int) -> Optional[int]:
        """The router that 'hosts' *address* for forwarding purposes."""
        owned = self.network.address_owner.get(address)
        if owned is not None:
            return owned[0]
        asn = self.owner_as(address)
        if asn is None:
            return None
        routers = self.network.routers_by_as.get(asn)
        if not routers:
            return None
        return routers[address % len(routers)]

    # -- forwarding ------------------------------------------------------------

    def _select(self, choices: List, salt: int, per_packet: bool, rng: random.Random):
        """ECMP selection: flow-hashed normally, uniform when per-packet."""
        if len(choices) == 1:
            return choices[0]
        if per_packet:
            return choices[rng.randrange(len(choices))]
        return choices[salt % len(choices)]

    def _walk(
        self,
        start_router: int,
        dst_address: int,
        flow_salt: int,
        rng: random.Random,
        max_steps: int = 80,
        prefer_far: bool = False,
    ) -> Tuple[List[Tuple[int, Optional[int]]], bool]:
        """Forward from *start_router* to the destination's home router.

        Returns ``(path, arrived)``: one ``(router_id,
        ingress_link_id)`` entry per router the packet arrives at after
        leaving the start router, and whether the walk actually reached
        the destination's home router (policy routing can leave a
        destination unreachable, e.g. a peer's space beyond a
        valley-free boundary).
        """
        network = self.network
        dst_as = self.owner_as(dst_address)
        home = self.home_router(dst_address)
        if dst_as is None or home is None:
            return [], False
        path: List[Tuple[int, Optional[int]]] = []
        current = start_router
        diverted = not prefer_far
        for _ in range(max_steps):
            router = network.routers[current]
            if current == home:
                break
            per_packet = router.per_packet_lb
            if router.asn == dst_as:
                hops = self.igp.next_hops(current, home)
                if not hops:
                    break
                link_id, nxt = self._select(hops, flow_salt, per_packet, rng)
                path.append((nxt, link_id))
                current = nxt
                continue
            next_as = self.as_routes.next_hop(router.asn, dst_as)
            if not diverted:
                # Transient routing change: the first AS-level decision
                # falls back to a non-best route, as if the best path
                # was just withdrawn.
                alternate = self.as_routes.alternate_next_hop(router.asn, dst_as)
                if alternate is not None:
                    next_as = alternate
                    diverted = True
            if next_as is None:
                break
            crossing = self._crossing_links(current, next_as)
            if crossing:
                link_id, nxt = self._select(crossing, flow_salt, per_packet, rng)
                path.append((nxt, link_id))
                current = nxt
                continue
            borders = network.border_routers(router.asn, next_as)
            if not borders:
                break
            distances = [
                (self.igp.distance(current, border), border)
                for border in borders
            ]
            reachable = sorted(
                (dist, border) for dist, border in distances if dist is not None
            )
            if not reachable:
                break
            # A transient routing change (prefer_far) temporarily sends
            # traffic through the most distant egress instead of the
            # nearest, the way a withdrawn best route falls back to a
            # longer one.
            pick = reachable[-1][0] if prefer_far else reachable[0][0]
            nearest = [border for dist, border in reachable if dist == pick]
            border = self._select(nearest, flow_salt, per_packet, rng)
            hops = self.igp.next_hops(current, border)
            if not hops:
                break
            link_id, nxt = self._select(hops, flow_salt, per_packet, rng)
            path.append((nxt, link_id))
            current = nxt
        return path, current == home

    def _crossing_links(self, router_id: int, next_as: int) -> List[Tuple[int, int]]:
        """Links on *router_id* that cross directly into *next_as*."""
        network = self.network
        crossings: List[Tuple[int, int]] = []
        for link_id in network.routers[router_id].links:
            link = network.links[link_id]
            if link.kind == EXTERNAL:
                other_router, _ = link.other_endpoint(router_id)
                if network.router_as(other_router) == next_as:
                    crossings.append((link_id, other_router))
            elif link.kind == IXP_LAN:
                session = network.ixp_sessions.get(
                    frozenset((network.router_as(router_id), next_as))
                )
                if session is not None and network.ixp_links[session] == link_id:
                    for other_router, _ in link.endpoints:
                        if network.router_as(other_router) == next_as:
                            crossings.append((link_id, other_router))
        return sorted(crossings)

    # -- responses -------------------------------------------------------------

    def _response_address(
        self,
        router_id: int,
        ingress_link: Optional[int],
        monitor: Monitor,
        flow_salt: int,
        rng: random.Random,
    ) -> Optional[int]:
        """What address the router at this hop replies with."""
        network = self.network
        router = network.routers[router_id]
        if router.silent:
            return None
        nat = self._nat_address.get(router.asn)
        if nat is not None:
            # The stub's border still reports its ingress on the
            # inter-AS link (the CPE's WAN interface); everything
            # deeper answers from the NAT pool address.
            ingress_external = (
                ingress_link is not None
                and network.links[ingress_link].kind == EXTERNAL
            )
            if not ingress_external:
                return nat
        if router.replies_with_egress:
            egress = self._reply_interface(router_id, monitor, flow_salt, rng)
            if egress is not None:
                return egress
        if ingress_link is not None:
            try:
                return network.links[ingress_link].address_of(router_id)
            except KeyError:
                pass
        # No ingress knowledge (first hop): fall back to any interface.
        for link_id in router.links:
            try:
                return network.links[link_id].address_of(router_id)
            except KeyError:
                continue
        return None

    def _reply_interface(
        self, router_id: int, monitor: Monitor, flow_salt: int, rng: random.Random
    ) -> Optional[int]:
        """The interface used to send the ICMP reply toward the monitor.

        This is what generates genuine third-party addresses: the reply
        leaves via a different neighbor than the probe arrived from.
        """
        reverse, _ = self._walk(router_id, monitor.address, flow_salt ^ 0x9E37, rng)
        if not reverse:
            return None
        first_link = reverse[0][1]
        if first_link is None:
            return None
        try:
            return self.network.links[first_link].address_of(router_id)
        except KeyError:
            return None

    # -- the public entry point ---------------------------------------------

    def trace(self, monitor_name: str, dst_address: int, flow_id: int) -> Trace:
        """Run one traceroute from a monitor toward *dst_address*."""
        monitor = self._monitors[monitor_name]
        seed = (
            monitor.address * 1000003 + dst_address * 31 + flow_id
        ) ^ self.config.seed
        rng = random.Random(seed & 0xFFFFFFFF)
        flow_salt = (dst_address * 2654435761 + flow_id) & 0xFFFFFFFF
        # A transient routing change diverts probes onto an alternate
        # path for a window of TTLs and then reverts; when the two
        # paths differ in length, earlier hops reappear later — the
        # interface cycles section 4.1 discards.
        reroute_window = None
        if rng.random() < self.config.transient_change_probability:
            start = rng.randint(2, 12)
            reroute_window = (start, start + rng.randint(2, 6))

        base_path, base_arrived = self._full_path(monitor, dst_address, flow_salt, rng)
        needs_per_probe = reroute_window is not None or any(
            self.network.routers[router_id].per_packet_lb
            for router_id, _ in base_path
        )
        dst_replies = (
            rng.random() < self.config.destination_reply_probability
        )

        hops: List[Hop] = []
        gaps = 0
        for ttl in range(1, _MAX_TTL + 1):
            if needs_per_probe:
                diverted = (
                    reroute_window is not None
                    and reroute_window[0] <= ttl < reroute_window[1]
                )
                probe_path, arrived = self._full_path(
                    monitor, dst_address, flow_salt, rng, prefer_far=diverted
                )
            else:
                probe_path, arrived = base_path, base_arrived
            if ttl > len(probe_path):
                # Beyond the home router: only the destination host is
                # left to answer (echo reply), or nobody is.  Behind a
                # NAT, the reply is sourced from the NAT pool address
                # regardless of the probed destination.  An unreachable
                # destination (policy routing dead end) never answers.
                if dst_replies and arrived:
                    dst_as = self.owner_as(dst_address)
                    reply = self._nat_address.get(dst_as, dst_address)
                    hops.append(Hop(reply, quoted_ttl=1, rtt_ms=float(ttl)))
                break
            hop, done = self._render_hop(
                probe_path, ttl, dst_address, monitor, flow_salt, rng
            )
            hops.append(hop)
            if done:
                break
            gaps = gaps + 1 if hop.address is None else 0
            if gaps >= _GAP_LIMIT:
                break
        while hops and hops[-1].address is None:
            hops.pop()
        if self.obs.enabled:
            self.obs.inc("sim.traces")
            self.obs.inc("sim.hops", len(hops))
        return Trace(monitor_name, dst_address, tuple(hops), flow_id)

    def _full_path(
        self,
        monitor: Monitor,
        dst_address: int,
        flow_salt: int,
        rng: random.Random,
        prefer_far: bool = False,
    ) -> Tuple[List[Tuple[int, Optional[int]]], bool]:
        """The router path (gateway first) plus whether it arrived."""
        gateway = [(monitor.gateway_router, monitor.lan_link)]
        walked, arrived = self._walk(
            monitor.gateway_router, dst_address, flow_salt, rng, prefer_far=prefer_far
        )
        if not walked and monitor.gateway_router == self.home_router(dst_address):
            arrived = True
        return gateway + walked, arrived

    def _render_hop(
        self,
        probe_path: List[Tuple[int, Optional[int]]],
        ttl: int,
        dst_address: int,
        monitor: Monitor,
        flow_salt: int,
        rng: random.Random,
    ) -> Tuple[Hop, bool]:
        """Render the response for the probe with this TTL."""
        router_id, ingress_link = probe_path[ttl - 1]
        router = self.network.routers[router_id]
        if ttl == len(probe_path):
            owned = self.network.address_owner.get(dst_address)
            if owned is not None and owned[0] == router_id:
                # Probing a router's own interface: the echo reply is
                # sourced from the probed address itself.
                return Hop(dst_address, quoted_ttl=1, rtt_ms=float(ttl)), True
        if router.buggy_ttl and ttl < len(probe_path):
            # The buggy router forwards the expiring probe; the next
            # router replies with quoted TTL 0 (section 4.1).
            next_router, next_link = probe_path[ttl]
            address = self._response_address(
                next_router, next_link, monitor, flow_salt, rng
            )
            return Hop(address, quoted_ttl=0), False
        address = self._response_address(router_id, ingress_link, monitor, flow_salt, rng)
        return Hop(address, quoted_ttl=1, rtt_ms=float(ttl)), False
