"""AS-level topology generation.

Produces a Gao-Rexford-style AS hierarchy: a clique of tier-1
providers, tier-2 transit networks buying from tier-1s and peering
among themselves, regional ISPs buying from tier-2s, and a large
population of stub ASes (some multihomed, some NATed, some barely
visible).  A research-and-education network modelled on Internet2 can
be included: a mid-tier AS whose transit customers' links are often
numbered from the *customer's* address space, the convention violation
at the heart of the paper's Fig 1.

Sibling groups (one organization holding several ASNs) and IXPs
(multipoint peering LANs) are generated here as well, since both shape
MAP-IT's counting rules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple


class Tier(Enum):
    """Role of an AS in the hierarchy."""

    TIER1 = "tier1"
    TIER2 = "tier2"
    REGIONAL = "regional"
    STUB = "stub"
    RE_NETWORK = "r&e"  # Internet2-like research & education network
    IXP = "ixp"


@dataclass
class ASNode:
    """One autonomous system."""

    asn: int
    tier: Tier
    name: str
    #: number of backbone routers to synthesize
    router_count: int = 2
    #: stub ASes behind a NAT expose a single address (section 4.8)
    natted: bool = False
    #: fraction of this AS's transit links numbered from the customer's
    #: space instead of the provider's (the Internet2-style violation)
    customer_space_bias: float = 0.0
    #: this AS's border routers never answer traceroute
    silent_borders: bool = False

    def __hash__(self) -> int:
        return self.asn


@dataclass(frozen=True)
class ASEdge:
    """One AS-level adjacency."""

    a: int
    b: int
    #: "transit" (a is provider of b) or "peer"
    kind: str

    def other(self, asn: int) -> int:
        return self.b if asn == self.a else self.a


@dataclass
class IXPSpec:
    """One IXP: a name, an optional ASN, and the member ASes."""

    name: str
    asn: Optional[int]
    members: List[int]
    #: bilateral peering sessions established across the LAN
    sessions: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class ASGraph:
    """The generated AS-level topology."""

    nodes: Dict[int, ASNode] = field(default_factory=dict)
    edges: List[ASEdge] = field(default_factory=list)
    sibling_groups: List[Set[int]] = field(default_factory=list)
    ixps: List[IXPSpec] = field(default_factory=list)

    def add_node(self, node: ASNode) -> None:
        self.nodes[node.asn] = node

    def add_transit(self, provider: int, customer: int) -> None:
        if not self.has_edge(provider, customer):
            self.edges.append(ASEdge(provider, customer, "transit"))

    def add_peering(self, a: int, b: int) -> None:
        if not self.has_edge(a, b):
            self.edges.append(ASEdge(min(a, b), max(a, b), "peer"))

    def has_edge(self, a: int, b: int) -> bool:
        return any(
            {edge.a, edge.b} == {a, b} for edge in self.edges
        )

    def providers(self, asn: int) -> List[int]:
        return [e.a for e in self.edges if e.kind == "transit" and e.b == asn]

    def customers(self, asn: int) -> List[int]:
        return [e.b for e in self.edges if e.kind == "transit" and e.a == asn]

    def peers(self, asn: int) -> List[int]:
        return [
            e.other(asn)
            for e in self.edges
            if e.kind == "peer" and asn in (e.a, e.b)
        ]

    def neighbors(self, asn: int) -> List[int]:
        return self.providers(asn) + self.customers(asn) + self.peers(asn)

    def by_tier(self, tier: Tier) -> List[ASNode]:
        return [node for node in self.nodes.values() if node.tier == tier]

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class ASGraphConfig:
    """Knobs for :func:`generate_as_graph`."""

    tier1_count: int = 3
    tier2_count: int = 8
    regional_count: int = 14
    stub_count: int = 45
    include_re_network: bool = True
    re_customer_count: int = 10
    peering_probability: float = 0.35
    regional_peering_probability: float = 0.15
    multihome_probability: float = 0.35
    stub_tier1_probability: float = 0.3
    nat_stub_fraction: float = 0.15
    silent_border_fraction: float = 0.05
    sibling_group_count: int = 3
    ixp_count: int = 2
    ixp_member_fraction: float = 0.3
    seed: int = 0


def generate_as_graph(config: ASGraphConfig = ASGraphConfig()) -> ASGraph:
    """Generate a deterministic AS hierarchy from *config*."""
    rng = random.Random(config.seed)
    graph = ASGraph()
    next_asn = 100

    def make_node(tier: Tier, name: str, routers: int, **kwargs) -> ASNode:
        nonlocal next_asn
        node = ASNode(asn=next_asn, tier=tier, name=name, router_count=routers, **kwargs)
        next_asn += rng.randint(1, 40)
        graph.add_node(node)
        return node

    tier1s = [
        make_node(Tier.TIER1, f"tier1-{i}", rng.randint(8, 12))
        for i in range(config.tier1_count)
    ]
    for i, first in enumerate(tier1s):
        for second in tier1s[i + 1 :]:
            graph.add_peering(first.asn, second.asn)

    tier2s = [
        make_node(
            Tier.TIER2,
            f"tier2-{i}",
            rng.randint(4, 7),
            silent_borders=rng.random() < config.silent_border_fraction,
        )
        for i in range(config.tier2_count)
    ]
    for node in tier2s:
        for provider in rng.sample(tier1s, k=min(len(tier1s), rng.randint(1, 2))):
            graph.add_transit(provider.asn, node.asn)
    for i, first in enumerate(tier2s):
        for second in tier2s[i + 1 :]:
            if rng.random() < config.peering_probability:
                graph.add_peering(first.asn, second.asn)

    re_network = None
    if config.include_re_network:
        # An Internet2-like network: transit from tier-1s, peers with
        # tier-2s, and R&E customers whose links it often numbers out
        # of the customer's space.
        re_network = make_node(
            Tier.RE_NETWORK, "re-backbone", 9, customer_space_bias=0.7
        )
        for provider in rng.sample(tier1s, k=min(2, len(tier1s))):
            graph.add_transit(provider.asn, re_network.asn)
        for peer in rng.sample(tier2s, k=min(3, len(tier2s))):
            graph.add_peering(re_network.asn, peer.asn)

    regionals = [
        make_node(Tier.REGIONAL, f"regional-{i}", rng.randint(2, 4))
        for i in range(config.regional_count)
    ]
    for node in regionals:
        providers = rng.sample(tier2s, k=min(len(tier2s), rng.randint(1, 2)))
        for provider in providers:
            graph.add_transit(provider.asn, node.asn)
    for i, first in enumerate(regionals):
        for second in regionals[i + 1 :]:
            if rng.random() < config.regional_peering_probability:
                graph.add_peering(first.asn, second.asn)

    if re_network is not None:
        for i in range(config.re_customer_count):
            customer = make_node(Tier.STUB, f"re-customer-{i}", rng.randint(1, 2))
            graph.add_transit(re_network.asn, customer.asn)
            if rng.random() < 0.3 and regionals:
                graph.add_transit(rng.choice(regionals).asn, customer.asn)

    # Tier-1s sell transit to enterprises directly — the paper's
    # biggest verified category for Level 3 is stub transit.
    transit_pool = tier2s + regionals
    for i in range(config.stub_count):
        stub = make_node(
            Tier.STUB,
            f"stub-{i}",
            rng.randint(1, 2),
            natted=rng.random() < config.nat_stub_fraction,
        )
        if rng.random() < config.stub_tier1_probability:
            providers = [rng.choice(tier1s)]
        else:
            providers = [rng.choice(transit_pool)]
        if rng.random() < config.multihome_probability:
            extra = rng.choice(transit_pool + tier1s)
            if extra.asn != providers[0].asn:
                providers.append(extra)
        for provider in providers:
            graph.add_transit(provider.asn, stub.asn)

    _make_sibling_groups(graph, rng, config.sibling_group_count)
    _make_ixps(graph, rng, config, next_asn)
    return graph


def _make_sibling_groups(graph: ASGraph, rng: random.Random, count: int) -> None:
    """Merge pairs of mid-tier ASes into sibling organizations."""
    candidates = graph.by_tier(Tier.TIER2) + graph.by_tier(Tier.REGIONAL)
    rng.shuffle(candidates)
    for i in range(min(count, len(candidates) // 2)):
        first, second = candidates[2 * i], candidates[2 * i + 1]
        graph.sibling_groups.append({first.asn, second.asn})
        # Siblings usually interconnect; model it as transit so routes
        # flow between the halves of the organization.
        graph.add_transit(first.asn, second.asn)


def _make_ixps(
    graph: ASGraph, rng: random.Random, config: ASGraphConfig, next_asn: int
) -> None:
    """Create IXPs whose members establish bilateral peerings."""
    candidates = [
        node.asn
        for node in graph.nodes.values()
        if node.tier in (Tier.TIER2, Tier.REGIONAL)
    ]
    for i in range(config.ixp_count):
        member_count = max(3, int(len(candidates) * config.ixp_member_fraction))
        members = rng.sample(candidates, k=min(member_count, len(candidates)))
        ixp = IXPSpec(name=f"ixp-{i}", asn=next_asn + i, members=members)
        for j, first in enumerate(members):
            for second in members[j + 1 :]:
                if rng.random() < 0.5 and not graph.has_edge(first, second):
                    ixp.sessions.append((first, second))
        graph.ixps.append(ixp)
