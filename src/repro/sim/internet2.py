"""The paper's Internet2 neighborhood as a hand-authored testbed.

Recreates, with the paper's literal addresses wherever the text gives
them, the networks of Figs 1, 2 and 5:

* **AS11537 Internet2** — a four-router backbone (New York, Cleveland,
  Atlanta, Chicago) numbered from 198.71.44.0/22;
* **AS2603 NORDUnet** — peers at New York over 109.105.98.8/30, the
  link numbered from *NORDUnet's* space: 109.105.98.9 on the NORDUnet
  router, **109.105.98.10** as the New York router's ingress — the
  paper's central worked example;
* **AS237 Merit** — peers at New York from its own 216.249.136.0/24;
* **AS3754 NYSERNet** — customer at New York over 199.109.5.0/30
  (customer-space numbering, the Internet2 convention violation);
* **AS10466 MAGPI** — customer at Atlanta, Internet2-numbered link;
* **AS3807 U. Montana** — customer at Chicago over two parallel links
  numbered from Internet2's space (198.71.46.196/31 and .216/31), with
  internal gear in 192.73.48.0/24 — the Fig 5 inverse-inference
  topology;
* **AS55 UPenn** — a stub below MAGPI (Fig 1's indirect connectivity).

Monitors sit in NORDUnet, Merit, and UPenn, so traces cross Internet2
in several directions, exposing the ingress interfaces of Fig 2.
"""

from __future__ import annotations

from repro.sim.asgraph import Tier
from repro.sim.testbed import Testbed, TestbedBuilder

#: The paper's actors.
INTERNET2 = 11537
NORDUNET = 2603
MERIT = 237
NYSERNET = 3754
MAGPI = 10466
MONTANA = 3807
UPENN = 55


def internet2_testbed(seed: int = 0) -> Testbed:
    """Build the Fig 1/2/5 neighborhood."""
    tb = TestbedBuilder(seed=seed)
    tb.add_as(INTERNET2, "internet2", "198.71.44.0/22", tier=Tier.RE_NETWORK)
    tb.add_as(NORDUNET, "nordunet", "109.105.96.0/22", tier=Tier.TIER2)
    tb.add_as(MERIT, "merit", "216.249.136.0/24", tier=Tier.REGIONAL)
    tb.add_as(NYSERNET, "nysernet", "199.109.0.0/16", tier=Tier.REGIONAL)
    tb.add_as(MAGPI, "magpi", "205.233.255.0/24", tier=Tier.REGIONAL)
    tb.add_as(MONTANA, "montana", "192.73.48.0/24", tier=Tier.STUB)
    tb.add_as(UPENN, "upenn", "158.130.0.0/16", tier=Tier.STUB)

    # Internet2 backbone (all links from Internet2's space).
    for router in ("newy", "clev", "atla", "chic"):
        tb.add_router(router, INTERNET2)
    tb.link("newy", "clev", "198.71.45.0/31")
    tb.link("newy", "atla", "198.71.45.4/31")
    tb.link("clev", "chic", "198.71.45.8/31")
    tb.link("atla", "chic", "198.71.45.12/31")
    tb.link("clev", "atla", "198.71.46.180/31")

    # NORDUnet: one border router, link from NORDUnet space (Fig 2).
    tb.add_router("nord-border", NORDUNET)
    tb.add_router("nord-core", NORDUNET)
    tb.link("nord-core", "nord-border", "109.105.97.0/31")
    tb.link("nord-border", "newy", "109.105.98.8/30")  # .9 nord, .10 newy
    tb.peer(NORDUNET, INTERNET2)

    # Merit: link from Merit's space.
    tb.add_router("merit-border", MERIT)
    tb.add_router("merit-core", MERIT)
    tb.link("merit-core", "merit-border", "216.249.136.0/31")
    tb.link("merit-border", "newy", "216.249.136.196/31")
    tb.peer(MERIT, INTERNET2)

    # NYSERNet: customer, link numbered from the *customer's* space —
    # the convention violation of Fig 1 / section 3.  199.109.5.1 is
    # the NYSERNet router's ingress, seen right after New York.
    tb.add_router("nyser", NYSERNET)
    tb.link("nyser", "newy", "199.109.5.0/30", owner=NYSERNET)
    tb.transit(INTERNET2, NYSERNET)

    # Montana: two parallel customer links from Internet2 space (Fig 5)
    # plus internal gear in its own /24.
    tb.add_router("mont-border", MONTANA)
    tb.add_router("mont-core", MONTANA)
    tb.link("chic", "mont-border", "198.71.46.196/31")
    tb.link("chic", "mont-border", "198.71.46.216/31")
    tb.link("mont-border", "mont-core", "192.73.48.120/31")
    tb.transit(INTERNET2, MONTANA)

    # MAGPI at Atlanta (Internet2-numbered), UPenn below MAGPI.
    tb.add_router("magpi", MAGPI)
    tb.link("atla", "magpi", "198.71.46.32/31")
    tb.transit(INTERNET2, MAGPI)
    tb.add_router("upenn", UPENN)
    tb.link("magpi", "upenn", "205.233.255.36/30")
    tb.transit(MAGPI, UPENN)

    # Vantage points.
    tb.monitor("mon-nord", "nord-core")
    tb.monitor("mon-merit", "merit-core")
    tb.monitor("mon-upenn", "upenn")
    return tb.build()
