"""Scenario assembly: one call from config to a complete dataset.

A :class:`Scenario` bundles everything one MAP-IT experiment needs —
traces, the IP2AS stack, sibling/relationship/IXP data, ground truth,
and handles to the underlying network — generated deterministically
from a seed.  The default dimensions produce an Internet2-like R&E
network plus tier-1s suitable for reproducing the paper's three
verification networks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS
from repro.bgp.table import CollectorDump
from repro.ixp.dataset import IXPDataset
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.sim.asgraph import ASGraph, ASGraphConfig, Tier, generate_as_graph
from repro.sim.exports import build_ip2as, export_as2org, export_relationships
from repro.sim.groundtruth import GroundTruth
from repro.sim.network import Network, NetworkConfig, build_network
from repro.sim.routing import ASRoutes, IGP
from repro.sim.tracer import Monitor, TracerConfig, TracerouteEngine
from repro.traceroute.model import Trace


@dataclass(frozen=True)
class ScenarioConfig:
    """All the knobs, in one place, seeded."""

    seed: int = 0
    as_graph: ASGraphConfig = field(default_factory=ASGraphConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    tracer: TracerConfig = field(default_factory=TracerConfig)
    monitor_count: int = 10
    #: probe targets sampled per announced prefix
    targets_per_prefix: int = 4
    #: BGP collectors (hosted at the largest ASes, like RouteViews)
    collector_count: int = 6
    ixp_directory_completeness: float = 0.9
    sibling_completeness: float = 0.85
    cymru_coverage: float = 0.6

    def reseeded(self, seed: int) -> "ScenarioConfig":
        """A copy with every layer reseeded consistently."""
        from dataclasses import replace

        return replace(
            self,
            seed=seed,
            as_graph=replace(self.as_graph, seed=seed),
            network=replace(self.network, seed=seed),
            tracer=replace(self.tracer, seed=seed),
        )


@dataclass
class Scenario:
    """A fully-built synthetic measurement campaign."""

    config: ScenarioConfig
    graph: ASGraph
    network: Network
    as_routes: ASRoutes
    igp: IGP
    engine: TracerouteEngine
    monitors: List[Monitor]
    traces: List[Trace]
    ip2as: IP2AS
    as2org: AS2Org
    relationships: RelationshipDataset
    ground_truth: GroundTruth
    #: the raw datasets the composite IP2AS was assembled from, kept
    #: so a scenario can be persisted as a dataset directory
    collector_dumps: List[CollectorDump] = field(default_factory=list)
    cymru: CymruTable = field(default_factory=CymruTable)
    ixp_dataset: IXPDataset = field(default_factory=IXPDataset)

    @property
    def re_asn(self) -> Optional[int]:
        """The Internet2-like R&E network's ASN, when present."""
        nodes = self.graph.by_tier(Tier.RE_NETWORK)
        return nodes[0].asn if nodes else None

    @property
    def tier1_asns(self) -> List[int]:
        """The tier-1 ASNs (the Level3/TeliaSonera stand-ins)."""
        return sorted(node.asn for node in self.graph.by_tier(Tier.TIER1))

    def verification_asns(self) -> List[int]:
        """The three networks the paper verifies against."""
        targets: List[int] = []
        if self.re_asn is not None:
            targets.append(self.re_asn)
        targets.extend(self.tier1_asns[:2])
        return targets

    def trace_blocks(self, shard_size: int = 4096):
        """The campaign as packed columnar blocks of *shard_size* traces.

        Streamed shard export: the scenario-preset twin of
        :func:`repro.sim.stress.stress_blocks`, so sweep cells and the
        streamed fold (:func:`repro.perf.ingest.fold_graph_from_blocks`)
        consume every world tier through one interface.  Blocks cover
        ``self.traces`` exactly once in order.
        """
        from repro.perf.flat import pack_traces

        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        for start in range(0, len(self.traces), shard_size):
            yield pack_traces(self.traces[start : start + shard_size])

    def router_addresses(self) -> Dict[int, Tuple[int, ...]]:
        """Every router's interface addresses, sorted.

        Structural export for the differential shrinker
        (:mod:`repro.diff.shrink`): dropping a whole router at a time
        minimizes worlds far faster than trace-level ddmin alone.
        """
        by_router: Dict[int, List[int]] = {}
        for address, router_id, _ in self.network.interfaces():
            by_router.setdefault(router_id, []).append(address)
        return {
            router: tuple(sorted(addresses))
            for router, addresses in by_router.items()
        }


def build_scenario(config: ScenarioConfig = ScenarioConfig()) -> Scenario:
    """Generate topology, routing, monitors, and the trace campaign."""
    config = config.reseeded(config.seed)
    graph = generate_as_graph(config.as_graph)
    network = build_network(graph, config.network)
    as_routes = ASRoutes(graph)
    igp = IGP(network)
    engine = TracerouteEngine(network, as_routes, igp, config.tracer)

    rng = random.Random(config.seed ^ 0xC0FFEE)
    monitors = _place_monitors(engine, graph, rng, config.monitor_count)
    targets = _select_targets(network, rng, config.targets_per_prefix)
    traces: List[Trace] = []
    for monitor in monitors:
        for index, target in enumerate(targets):
            traces.append(engine.trace(monitor.name, target, flow_id=index))

    collector_asns = _collector_asns(graph, config.collector_count)
    ip2as, dumps, cymru, ixp_dataset = build_ip2as(
        network,
        as_routes,
        collector_asns,
        rng,
        ixp_completeness=config.ixp_directory_completeness,
        cymru_coverage=config.cymru_coverage,
    )
    as2org = export_as2org(graph, rng, config.sibling_completeness)
    relationships = export_relationships(graph)
    # Ground truth is read after monitor placement so monitor LANs are
    # classified as internal interfaces.
    ground_truth = GroundTruth.from_network(network)
    return Scenario(
        config=config,
        graph=graph,
        network=network,
        as_routes=as_routes,
        igp=igp,
        engine=engine,
        monitors=monitors,
        traces=traces,
        ip2as=ip2as,
        as2org=as2org,
        relationships=relationships,
        ground_truth=ground_truth,
        collector_dumps=dumps,
        cymru=cymru,
        ixp_dataset=ixp_dataset,
    )


def _place_monitors(
    engine: TracerouteEngine, graph: ASGraph, rng: random.Random, count: int
) -> List[Monitor]:
    """Spread monitors across edge and mid-tier ASes.

    Like ARK, most vantage points live in stubs and regional networks;
    one monitor lands in the R&E network when present (the paper notes
    exactly one verification network hosted a monitor).
    """
    hosts: List[int] = []
    re_nodes = graph.by_tier(Tier.RE_NETWORK)
    if re_nodes:
        hosts.append(re_nodes[0].asn)
    pool = [
        node.asn
        for node in graph.nodes.values()
        if node.tier in (Tier.STUB, Tier.REGIONAL) and not node.natted
    ]
    rng.shuffle(pool)
    hosts.extend(pool[: max(0, count - len(hosts))])
    return [
        engine.add_monitor(f"mon-{index:02d}", asn, rng)
        for index, asn in enumerate(hosts)
    ]


def _select_targets(
    network: Network, rng: random.Random, per_prefix: int
) -> List[int]:
    """Sample probe targets from every announced prefix (ARK-style)."""
    targets: List[int] = []
    for asn in sorted(network.plan.announced):
        for prefix in network.plan.announced[asn]:
            for _ in range(per_prefix):
                offset = rng.randrange(max(1, prefix.size - 2)) + 1
                targets.append(prefix.address + offset)
    rng.shuffle(targets)
    return targets


def _collector_asns(graph: ASGraph, count: int) -> List[int]:
    """Host collectors at the best-connected ASes (tier-1s first)."""
    ranked = sorted(
        graph.nodes.values(),
        key=lambda node: (node.tier != Tier.TIER1, node.tier != Tier.TIER2, node.asn),
    )
    return [node.asn for node in ranked[:count]]
