"""Hand-authored topologies: the testbed builder.

The generated scenarios of :mod:`repro.sim.scenario` cover statistical
experiments; reproducing a *specific* neighborhood — the paper's Fig 2
wiring, a customer's real deployment — needs exact routers, links, and
addresses.  :class:`TestbedBuilder` is a small facade over the Network
machinery for that:

    tb = TestbedBuilder()
    tb.add_as(11537, "internet2", "198.71.44.0/22")
    tb.add_as(2603, "nordunet", "109.105.96.0/22")
    tb.add_router("newy", 11537)
    tb.add_router("nord", 2603)
    tb.link("nord", "newy", "109.105.98.8/30")   # owner = prefix owner
    tb.peer(2603, 11537)
    tb.monitor("mon-se", "nord")
    testbed = tb.build()
    traces = testbed.trace_all(flows=2)

Built testbeds use the same valley-free routing, IGP, traceroute
engine, ground truth, and IP2AS export paths as generated scenarios,
so results are directly comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.ip2as import IP2AS, IP2ASBuilder
from repro.bgp.origins import OriginTable
from repro.net.prefix import Prefix, host_addresses
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.sim.asgraph import ASGraph, ASNode, Tier
from repro.sim.groundtruth import GroundTruth
from repro.sim.network import EXTERNAL, INTERNAL, Network
from repro.sim.addressing import AddressPlan, ASAllocator
from repro.sim.routing import ASRoutes, IGP
from repro.sim.tracer import Monitor, TracerConfig, TracerouteEngine
from repro.traceroute.model import Trace


@dataclass
class Testbed:
    """A built hand-authored topology, ready to trace."""

    #: not a test case, despite the name (pytest collection hint)
    __test__ = False

    network: Network
    graph: ASGraph
    engine: TracerouteEngine
    as_routes: ASRoutes
    igp: IGP
    monitors: List[Monitor]
    ip2as: IP2AS
    as2org: AS2Org
    relationships: RelationshipDataset
    ground_truth: GroundTruth
    names: Dict[int, str]

    def trace(self, monitor: str, dst: Union[int, str], flow_id: int = 0) -> Trace:
        """One traceroute from a named monitor."""
        if isinstance(dst, str):
            from repro.net.ipv4 import parse_address

            dst = parse_address(dst)
        return self.engine.trace(monitor, dst, flow_id)

    def trace_all(self, flows: int = 1, targets_per_as: int = 3) -> List[Trace]:
        """A campaign: every monitor probes hosts in every AS."""
        rng = random.Random(0xBEEF)
        targets: List[int] = []
        for asn in sorted(self.network.plan.announced):
            for prefix in self.network.plan.announced[asn]:
                for _ in range(targets_per_as):
                    offset = rng.randrange(max(1, prefix.size - 2)) + 1
                    targets.append(prefix.address + offset)
        traces = []
        for monitor in self.monitors:
            for flow in range(flows):
                for index, target in enumerate(targets):
                    traces.append(
                        self.engine.trace(monitor.name, target, flow_id=flow * 1000 + index)
                    )
        return traces


class TestbedBuilder:
    """Declarative construction of exact topologies."""

    # not a test case, despite the name (pytest collection hint)
    __test__ = False

    def __init__(self, seed: int = 0) -> None:
        self._graph = ASGraph()
        self._network: Optional[Network] = None
        self._plan = AddressPlan()
        self._routers: Dict[str, int] = {}
        self._links: List[Tuple[str, str, Prefix, Optional[int]]] = []
        self._monitors: List[Tuple[str, str]] = []
        self._siblings: List[Tuple[int, int]] = []
        self._unannounced: List[Prefix] = []
        self._seed = seed

    # -- declarations -----------------------------------------------------

    def add_as(
        self,
        asn: int,
        name: str,
        *prefixes: str,
        tier: Tier = Tier.REGIONAL,
        announce: bool = True,
    ) -> "TestbedBuilder":
        """Declare an AS and its address space."""
        parsed = [Prefix.parse(text) for text in prefixes]
        self._graph.add_node(ASNode(asn=asn, tier=tier, name=name, router_count=0))
        self._plan.allocators[asn] = ASAllocator(asn=asn, prefixes=list(parsed))
        self._plan.announced[asn] = list(parsed) if announce else []
        self._plan.unannounced[asn] = [] if announce else list(parsed)
        return self

    def add_router(self, name: str, asn: int) -> "TestbedBuilder":
        """Declare a router inside an AS."""
        if name in self._routers:
            raise ValueError(f"duplicate router name {name!r}")
        self._routers[name] = asn
        return self

    def link(
        self,
        first: str,
        second: str,
        subnet: str,
        owner: Optional[int] = None,
    ) -> "TestbedBuilder":
        """Wire two routers with a /30 or /31.

        The router named first takes the subnet's first host address.
        *owner* defaults to the AS whose declared space contains the
        subnet.
        """
        prefix = Prefix.parse(subnet)
        if prefix.length not in (30, 31):
            raise ValueError("point-to-point links need a /30 or /31")
        self._links.append((first, second, prefix, owner))
        return self

    def transit(self, provider: int, customer: int) -> "TestbedBuilder":
        self._graph.add_transit(provider, customer)
        return self

    def peer(self, a: int, b: int) -> "TestbedBuilder":
        self._graph.add_peering(a, b)
        return self

    def siblings(self, a: int, b: int) -> "TestbedBuilder":
        self._graph.sibling_groups.append({a, b})
        self._siblings.append((a, b))
        return self

    def monitor(self, name: str, at_router: str) -> "TestbedBuilder":
        self._monitors.append((name, at_router))
        return self

    # -- build -------------------------------------------------------------

    def _owner_of(self, prefix: Prefix) -> int:
        for asn, allocator in self._plan.allocators.items():
            if any(block.contains_prefix(prefix) for block in allocator.prefixes):
                return asn
        raise ValueError(f"{prefix} is not inside any declared AS space")

    def build(self, tracer_config: Optional[TracerConfig] = None) -> Testbed:
        """Materialize the network and all derived machinery."""
        network = Network(as_graph=self._graph, plan=self._plan)
        # Hand-assigned link subnets must never collide with later
        # automatic allocations (monitor LANs, NAT pool addresses).
        for _, _, prefix, _ in self._links:
            self._plan.allocators[self._owner_of(prefix)].reserve(prefix)
        router_ids: Dict[str, int] = {}
        for name, asn in self._routers.items():
            router_ids[name] = network.new_router(asn, name).router_id
        for first, second, prefix, owner in self._links:
            owner_as = owner if owner is not None else self._owner_of(prefix)
            first_id, second_id = router_ids[first], router_ids[second]
            as_a = network.router_as(first_id)
            as_b = network.router_as(second_id)
            kind = INTERNAL if as_a == as_b else EXTERNAL
            link = network.new_link(kind, prefix, owner_as)
            hosts = list(host_addresses(prefix))
            network.attach(link, first_id, hosts[0])
            network.attach(link, second_id, hosts[1])
            if kind == INTERNAL:
                network.internal_adjacency[first_id].append((link.link_id, second_id))
                network.internal_adjacency[second_id].append((link.link_id, first_id))
            else:
                network.external_links.setdefault(
                    frozenset((as_a, as_b)), []
                ).append(link.link_id)
        for node in self._graph.nodes.values():
            node.router_count = len(network.routers_by_as.get(node.asn, []))

        as_routes = ASRoutes(self._graph)
        igp = IGP(network)
        engine = TracerouteEngine(
            network, as_routes, igp, tracer_config or TracerConfig(seed=self._seed)
        )
        rng = random.Random(self._seed)
        monitors = [
            engine.add_monitor(
                name,
                network.router_as(router_ids[at_router]),
                rng,
                router_id=router_ids[at_router],
            )
            for name, at_router in self._monitors
        ]

        origins = OriginTable()
        for asn, prefixes in self._plan.announced.items():
            for prefix in prefixes:
                origins.record(prefix, asn)
        ip2as = IP2ASBuilder().add_bgp(origins).build()

        as2org = AS2Org()
        for a, b in self._siblings:
            as2org.add_pair(a, b)
        relationships = RelationshipDataset()
        for edge in self._graph.edges:
            if edge.kind == "transit":
                relationships.add_p2c(edge.a, edge.b)
            else:
                relationships.add_p2p(edge.a, edge.b)
        ground_truth = GroundTruth.from_network(network)
        names = {asn: node.name for asn, node in self._graph.nodes.items()}
        return Testbed(
            network=network,
            graph=self._graph,
            engine=engine,
            as_routes=as_routes,
            igp=igp,
            monitors=monitors,
            ip2as=ip2as,
            as2org=as2org,
            relationships=relationships,
            ground_truth=ground_truth,
            names=names,
        )
