"""Named scenario presets.

* :func:`small_scenario` — seconds-fast, for unit tests and examples;
* :func:`paper_scenario` — the evaluation-scale topology used by every
  benchmark: three tier-1s (two of which play Level 3 / TeliaSonera),
  an Internet2-like R&E network with a customer cone that numbers
  transit links from customer space, a deep tier-2/regional hierarchy,
  IXPs, sibling organizations, and a large stub population with NATed
  and low-visibility members;
* :func:`dense_scenario` — a heavier variant for scaling studies.
"""

from __future__ import annotations

from repro.sim.asgraph import ASGraphConfig
from repro.sim.scenario import Scenario, ScenarioConfig, build_scenario
from repro.sim.stress import StressConfig


def tiny_config(seed: int = 0) -> ScenarioConfig:
    """The smallest world that still exercises every pass.

    Sub-second end to end — sized for the chaos harness, which runs the
    full pipeline many times per schedule (golden run, faulted run,
    resumed run) and needs each to be cheap.
    """
    return ScenarioConfig(
        seed=seed,
        as_graph=ASGraphConfig(
            tier1_count=2,
            tier2_count=2,
            regional_count=3,
            stub_count=6,
            re_customer_count=2,
            sibling_group_count=1,
            ixp_count=1,
        ),
        monitor_count=3,
        targets_per_prefix=2,
        collector_count=2,
    )


def small_config(seed: int = 0) -> ScenarioConfig:
    """A tiny world: ~30 ASes, a few hundred traces."""
    return ScenarioConfig(
        seed=seed,
        as_graph=ASGraphConfig(
            tier1_count=2,
            tier2_count=4,
            regional_count=5,
            stub_count=12,
            re_customer_count=5,
            sibling_group_count=1,
            ixp_count=1,
        ),
        monitor_count=5,
        targets_per_prefix=3,
        collector_count=3,
    )


def paper_config(seed: int = 0) -> ScenarioConfig:
    """The evaluation-scale world behind the table/figure benchmarks."""
    return ScenarioConfig(
        seed=seed,
        as_graph=ASGraphConfig(
            tier1_count=3,
            tier2_count=12,
            regional_count=20,
            stub_count=70,
            re_customer_count=16,
            sibling_group_count=4,
            ixp_count=2,
        ),
        monitor_count=16,
        targets_per_prefix=6,
        collector_count=8,
    )


def dense_config(seed: int = 0) -> ScenarioConfig:
    """A heavier world for scaling and robustness studies."""
    return ScenarioConfig(
        seed=seed,
        as_graph=ASGraphConfig(
            tier1_count=4,
            tier2_count=18,
            regional_count=30,
            stub_count=120,
            re_customer_count=20,
            sibling_group_count=6,
            ixp_count=3,
        ),
        monitor_count=24,
        targets_per_prefix=8,
        collector_count=10,
    )


def stress_config(seed: int = 0) -> StressConfig:
    """The acceptance-tier stress world: 10⁴ ASes, shard-streamed.

    Built by :mod:`repro.sim.stress`, not the network simulator —
    traces arrive as generated :class:`~repro.perf.flat.FlatTraces`
    blocks and are never fully resident.
    """
    return StressConfig(
        seed=seed, as_count=10_000, monitor_count=8, trace_count=150_000
    )


def stress_large_config(seed: int = 0) -> StressConfig:
    """The top of the stress tier: 10⁵ ASes, million-trace campaigns."""
    return StressConfig(
        seed=seed, as_count=100_000, monitor_count=16, trace_count=1_000_000
    )


def stress_smoke_config(seed: int = 0) -> StressConfig:
    """A seconds-fast stress world for CI smoke and unit tests.

    Small enough to fold quickly, large enough that the campaign spans
    many generated shards — the streaming accounting still means
    something.
    """
    return StressConfig(
        seed=seed,
        as_count=2_000,
        monitor_count=4,
        trace_count=12_000,
        shard_size=1024,
    )


def tiny_scenario(seed: int = 0) -> Scenario:
    return build_scenario(tiny_config(seed))


def small_scenario(seed: int = 0) -> Scenario:
    return build_scenario(small_config(seed))


def paper_scenario(seed: int = 0) -> Scenario:
    return build_scenario(paper_config(seed))


def dense_scenario(seed: int = 0) -> Scenario:
    return build_scenario(dense_config(seed))
