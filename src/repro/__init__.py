"""MAP-IT: Multipass Accurate Passive Inferences from Traceroute.

A complete reproduction of Marder & Smith, IMC 2016: the MAP-IT
algorithm for inferring inter-AS link interfaces from traceroute data,
together with every substrate it consumes (BGP-derived IP-to-AS
mapping, IXP/sibling/relationship datasets, trace sanitization), the
baselines it is compared against, a synthetic-Internet simulator that
stands in for the CAIDA ARK measurement infrastructure, and the
evaluation harness regenerating the paper's tables and figures.

Quickstart::

    from repro import MapItConfig, run_mapit
    from repro.sim import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(seed=7))
    result = run_mapit(
        scenario.traces,
        scenario.ip2as,
        org=scenario.as2org,
        rel=scenario.relationships,
        config=MapItConfig(f=0.5),
    )
    for inference in result.inferences[:10]:
        print(inference)
"""

from repro.core import LinkInference, MapIt, MapItConfig, MapItResult, run_mapit

__version__ = "1.0.0"

__all__ = [
    "LinkInference",
    "MapIt",
    "MapItConfig",
    "MapItResult",
    "run_mapit",
    "__version__",
]
