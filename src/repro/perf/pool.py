"""Fork-pool substrate for the sharded execution layer.

The hot inputs (the raw trace lines, the parsed trace list) are large;
pickling them to every worker would eat the parallel win.  Instead the
parent stashes the shared payload in a module global immediately before
creating a ``fork`` pool — forked children inherit the parent's address
space copy-on-write, so workers receive only ``(start, end)`` index
ranges and read the payload for free via :func:`shared_payload`.  Only
the (much smaller) per-shard results are pickled back.

The pooled path runs under the supervisor in
:mod:`repro.robust.supervise`: per-shard deadlines, dead/hung-worker
detection, retries with backoff, and inline degradation on the final
attempt.  When jobs <= 1, the item list is empty, or the platform has
no ``fork`` start method, :func:`fork_map` degrades to running the
worker inline in the parent — the degraded path is bit-for-bit the
parallel path minus the processes, so callers never branch on platform.

A SIGTERM (or Ctrl-C) during a pooled map terminates the children
promptly, restores the payload stash, and surfaces as
``KeyboardInterrupt`` so the CLI can exit 130 — no traceback spray
from every worker.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.observer import NULL_OBS, Observability

#: shard index range: [start, end) over the shared payload's items
Shard = Tuple[int, int]

_PAYLOAD: Any = None


def shared_payload() -> Any:
    """The parent's payload, as inherited by a forked worker."""
    return _PAYLOAD


def default_jobs() -> int:
    """The worker count used when a caller does not pass one.

    Reads ``MAPIT_JOBS`` (the CI matrix and batch jobs set it) and
    falls back to 1 — the serial path stays the default everywhere.
    ``MAPIT_JOBS=0`` means *auto*: every available core, mirroring
    ``--jobs 0`` (docs/CLI.md).  Negative or unparseable values fall
    back to 1 — the environment cannot usage-error a run the way a
    flag can.
    """
    try:
        value = int(os.environ.get("MAPIT_JOBS", "1"))
    except ValueError:
        return 1
    if value == 0:
        return os.cpu_count() or 1
    return max(1, value)


def resolve_jobs(value: Optional[int]) -> int:
    """Resolve a caller-supplied worker count to an effective one.

    ``None`` defers to :func:`default_jobs` (the ``$MAPIT_JOBS``
    fallback), ``0`` means auto — ``os.cpu_count()`` clamped to at
    least 1 — and negatives raise ``ValueError`` so CLI layers can
    reject them as a usage error instead of silently clamping.
    """
    if value is None:
        return default_jobs()
    if value < 0:
        raise ValueError(f"jobs must be >= 0 (0 = auto), got {value}")
    if value == 0:
        return os.cpu_count() or 1
    return value


def shard_ranges(count: int, shards: int) -> List[Shard]:
    """Split ``range(count)`` into at most *shards* contiguous ranges.

    Ranges are returned in order and cover every index exactly once, so
    an order-preserving concatenation of per-shard results equals the
    serial result.  Sizes differ by at most one.  ``count == 0``
    returns no ranges at all — an empty input must never dispatch a
    worker over zero items.  O(shards); allocates nothing that crosses
    a process boundary except the tuples themselves.
    """
    if count <= 0:
        return []
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    ranges: List[Shard] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _sigterm_to_interrupt(signum, frame):
    """Make SIGTERM follow the SIGINT path: unwind, clean up, exit 130."""
    raise KeyboardInterrupt


class _graceful_sigterm:
    """Route SIGTERM through ``KeyboardInterrupt`` while a pool runs.

    Only the main thread can re-bind signal handlers; elsewhere this is
    a no-op and SIGTERM keeps its default hard-kill semantics.
    """

    def __enter__(self):
        self._previous = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(
                    signal.SIGTERM, _sigterm_to_interrupt
                )
            except (ValueError, OSError):
                self._previous = None
        return self

    def __exit__(self, *exc_info):
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)
        return False


def fork_map(
    worker: Callable[[Shard], Any],
    payload: Any,
    count: int,
    jobs: int,
    shards: Optional[Sequence[Shard]] = None,
    *,
    timeout: Optional[float] = None,
    obs: Observability = NULL_OBS,
    budget=None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Run *worker* over index shards of *payload*, in processes.

    *worker* must be a module-level function (pickled by reference)
    that reads the payload through :func:`shared_payload`.  Results
    come back in shard order.  With ``jobs <= 1`` — or without fork
    support — the shards run inline in the parent.  *on_result*, when
    given, fires with ``(shard_index, value)`` as each shard completes
    (exactly once per shard, completion order) — on the inline path it
    fires after each serial shard, so checkpointing callers behave the
    same with and without a pool.

    *timeout* is the per-shard deadline in seconds; when ``None`` it
    falls back to ``MAPIT_SHARD_TIMEOUT``.  Pooled shards that time
    out, crash, or raise are retried and finally degraded to inline
    execution by the supervisor; *budget*, when armed, counts the
    rescued-shard fraction against the run's
    :class:`~repro.robust.errors.ErrorBudget`.

    What pickles: *nothing* of the payload (copy-on-write through the
    module global), one small shard tuple per task going out, and each
    worker's return value coming back — keep returns to packed
    ``bytes``/counter bundles (:mod:`repro.perf.flat`), as every byte
    returned is pickled in the worker and unpickled in the parent.
    Cost beyond the workers' own time: one ``fork`` per pool worker
    plus O(total result bytes) for the return trip.
    """
    from repro.robust.supervise import (
        SuperviseConfig,
        default_shard_timeout,
        supervised_pool_map,
    )

    global _PAYLOAD
    ranges = list(shards) if shards is not None else shard_ranges(count, jobs)
    # mapitlint: disable=FORK001 -- parent-side CoW stash, set pre-fork
    _PAYLOAD = payload
    try:
        if jobs <= 1 or count == 0 or len(ranges) <= 1 or not fork_available():
            results = []
            for index, shard in enumerate(ranges):
                value = worker(shard)
                results.append(value)
                if on_result is not None:
                    on_result(index, value)
            return results
        if timeout is None:
            timeout = default_shard_timeout()
        with _graceful_sigterm():
            return supervised_pool_map(
                worker,
                ranges,
                jobs,
                config=SuperviseConfig(timeout=timeout),
                obs=obs,
                budget=budget,
                on_result=on_result,
            )
    finally:
        # mapitlint: disable=FORK001 -- parent-side cleanup post-join
        _PAYLOAD = None
