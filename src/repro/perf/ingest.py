"""Sharded trace ingestion: the parallel twin of ``repro.robust.ingest``.

The source text is split into contiguous shards; each worker runs the
same per-record pipeline as the serial ingester — blank/comment
skipping, :func:`repro.robust.ingest.parse_record`, per-mode error
handling — over its shard with *absolute* line numbers, and returns a
compact partial result.  The parent concatenates partials in shard
order, so the merged traces, error list, reject list, and counts are
exactly what one serial pass would have produced, then hands off to
:func:`repro.robust.ingest.finalize_ingest` for the budget check,
quarantine write, and observability — the shared tail guarantees the
two ingesters are indistinguishable from the outside.

Parsed traces never cross the fork boundary as objects.  Workers that
must return their parse encode it as a columnar
:class:`~repro.perf.flat.FlatTraces` block — one ``bytes`` object,
near-memcpy to pickle — and the parent decodes (or, on the fused path,
never decodes at all).  The fused path is
:func:`stream_graph_from_file`: the ``run`` pipeline's loader, whose
workers parse *and* sanitize *and* fold neighbor sets over their text
shard in one pass, returning only a packed counter bundle
(:class:`~repro.perf.flat.FlatGraphBundle`) plus, when a cache store
is pending, their shard's columnar block.  One fork, object-free
transfer, deterministic merge.

Strict mode needs care: the serial ingester raises at the first
malformed record.  Raising inside a pool worker would surface as a
wrapped remote traceback, so strict workers instead stop at their first
error and report it as data; the parent re-raises the error with the
smallest line number, reconstructing the exact
:class:`~repro.traceroute.parse.TraceParseError` the serial path throws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.graph.neighbors import (
    InterfaceGraph,
    accumulate_neighbors,
    finish_interface_graph,
)
from repro.net.special import default_special_registry
from repro.obs.observer import NULL_OBS, Observability
from repro.perf.flat import (
    FlatEncodeError,
    FlatGraphBundle,
    FlatTraces,
    accumulate_flat,
    bundle_tables,
    concat_flat_bytes,
    pack_traces,
    unpack_traces,
)
from repro.perf.graph import finish_graph_from_bundles
from repro.perf.pool import Shard, fork_map, shared_payload
from repro.robust.errors import (
    MAX_DETAILED_ERRORS,
    SNIPPET_LIMIT,
    ErrorBudget,
    IngestError,
    IngestReport,
)
from repro.robust.ingest import FORMATS, MODES, finalize_ingest, parse_record
from repro.traceroute.model import Trace
from repro.traceroute.parse import TraceParseError, trace_format_for_path
from repro.traceroute.sanitize import sanitize_traces


@dataclass
class _ShardResult:
    """What one worker sends back: the parse outcome of its line range.

    Traces travel as a columnar ``block`` (one picklable ``bytes``);
    ``traces`` is only populated on the rare fallback when a parsed
    field falls outside the flat encoding's integer ranges.
    """

    block: Optional[bytes] = None
    traces: List[Trace] = field(default_factory=list)
    parsed: int = 0
    malformed: int = 0
    skipped: int = 0
    errors: List[IngestError] = field(default_factory=list)
    rejects: List[str] = field(default_factory=list)
    #: strict mode: (reason, line_number, text) of the first bad record
    strict_error: Optional[Tuple[str, int, str]] = None


def _parse_lines(
    result,
    lines: List[str],
    first_line_number: int,
    format: str,
    source: str,
    mode: str,
) -> Optional[List[Trace]]:
    """The serial per-record loop over *lines*, tallying into *result*.

    Returns the parsed traces, or ``None`` after recording a strict
    error (the caller stops immediately, like the serial ingester).
    O(lines); shared by the line-sharded and text-sharded workers so
    there is exactly one copy of the policy semantics.
    """
    traces: List[Trace] = []
    for offset, raw in enumerate(lines):
        line_number = first_line_number + offset
        line = raw.strip()
        if not line:
            continue
        if format == "text" and line.startswith("#"):
            continue
        try:
            trace = parse_record(line, line_number, format)
            if trace is None:
                result.skipped += 1
                continue
        except TraceParseError as exc:
            if mode == "strict":
                result.strict_error = (exc.reason, line_number, line)
                return None
            result.malformed += 1
            if len(result.errors) < MAX_DETAILED_ERRORS:
                result.errors.append(
                    IngestError(source, line_number, exc.reason, line[:SNIPPET_LIMIT])
                )
            if mode == "quarantine":
                result.rejects.append(line)
            continue
        result.parsed += 1
        traces.append(trace)
    return traces


def _ingest_shard(shard: Shard) -> _ShardResult:
    """Parse one contiguous line range (runs in a worker process).

    O(lines in shard); pickles back counts, capped errors, and one
    columnar block — never a list of trace objects.
    """
    lines, format, source, mode = shared_payload()
    start, end = shard
    result = _ShardResult()
    traces = _parse_lines(result, lines[start:end], start + 1, format, source, mode)
    if traces is None:
        return result
    try:
        result.block = pack_traces(traces).to_bytes()
    except FlatEncodeError:
        result.traces = traces
    return result


def ingest_traces_parallel(
    lines: List[str],
    jobs: int,
    *,
    format: str = "text",
    source: str = "traces",
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> Tuple[List[Trace], IngestReport]:
    """Parse *lines* across *jobs* workers under an ingestion policy.

    Drop-in equivalent of :func:`repro.robust.ingest.ingest_traces` for
    an in-memory line list: same traces, same report, same exceptions.
    The line list reaches workers copy-on-write; each worker pickles
    back a columnar block that the parent decodes in shard order
    (O(total hops) rehydration, only paid when the caller needs trace
    objects — the ``run`` pipeline uses :func:`stream_graph_from_file`
    instead and never decodes).  *shard_timeout* is the supervisor's
    per-shard deadline (docs/ROBUSTNESS.md).
    """
    if mode not in MODES:
        raise ValueError(f"unknown ingest mode {mode!r}; expected one of {MODES}")
    if mode == "quarantine" and quarantine_dir is None:
        raise ValueError("quarantine mode requires a quarantine_dir")
    if format not in FORMATS:
        raise ValueError(f"unknown trace format {format!r}; expected one of {FORMATS}")
    with obs.span("ingest"):
        results = fork_map(
            _ingest_shard,
            (lines, format, source, mode),
            len(lines),
            jobs,
            timeout=shard_timeout,
            obs=obs,
            budget=budget,
        )
    _raise_earliest_strict_error(results)
    report = IngestReport(source=source, mode=mode)
    traces: List[Trace] = []
    rejects: List[str] = []
    for result in _merge_shard_tallies(results, report, rejects):
        if result.block is not None:
            traces.extend(unpack_traces(FlatTraces.from_bytes(result.block)))
        else:
            traces.extend(result.traces)
    finalize_ingest(
        report, rejects, budget=budget, quarantine_dir=quarantine_dir, obs=obs
    )
    return traces, report


def _raise_earliest_strict_error(results) -> None:
    """Re-raise the strict-mode error with the smallest line number —
    the exact record a serial pass would have raised on."""
    strict_errors = [r.strict_error for r in results if r.strict_error is not None]
    if strict_errors:
        reason, line_number, text = min(strict_errors, key=lambda item: item[1])
        raise TraceParseError(reason, line_number, text)


def _merge_shard_tallies(results, report: IngestReport, rejects: List[str]):
    """Fold shard counts/errors/rejects into *report* in shard order.

    Shard order is line order, so plain concatenation reproduces the
    serial outcome — including which errors land inside the detailed
    cap: each shard returns at most MAX_DETAILED_ERRORS records, and
    truncating the in-order concatenation keeps exactly the first MAX.
    Yields each result back so callers can splice their payloads in the
    same order.  O(shards + errors + rejects).
    """
    for result in results:
        report.parsed += result.parsed
        report.malformed += result.malformed
        report.skipped += result.skipped
        rejects.extend(result.rejects)
        remaining = MAX_DETAILED_ERRORS - len(report.errors)
        if remaining > 0:
            report.errors.extend(result.errors[:remaining])
        yield result


def ingest_trace_file_parallel(
    path: Union[str, Path],
    jobs: int,
    *,
    format: Optional[str] = None,
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> Tuple[List[Trace], IngestReport]:
    """Sharded equivalent of :func:`repro.robust.ingest.ingest_trace_file`.

    The whole file is read into memory up front — the line list is what
    workers inherit through the fork — which is the right trade for the
    bundle sizes this pipeline targets (the paper's full dataset is
    tens of MB of text).
    """
    path = Path(path)
    if format is None:
        format = trace_format_for_path(path.name)
    if mode == "quarantine" and quarantine_dir is None:
        quarantine_dir = path.parent / "quarantine"
    with open(path, errors="replace") as handle:
        lines = handle.readlines()
    return ingest_traces_parallel(
        lines,
        jobs,
        format=format,
        source=path.name,
        mode=mode,
        budget=budget,
        quarantine_dir=quarantine_dir,
        obs=obs,
        shard_timeout=shard_timeout,
    )


# ----------------------------------------------------------------------
# the fused streaming loader (parse + sanitize + neighbor fold, one fork)


@dataclass
class _FusedShardResult(_ShardResult):
    """A fused worker's return: ingest tallies plus the shard's packed
    graph bundle.  ``block`` is populated only when the parent asked
    for a cache payload (and the shard parsed clean)."""

    bundle: Optional[FlatGraphBundle] = None


def _fused_shard(shard: Shard) -> _FusedShardResult:
    """Parse, sanitize, and fold one text shard (worker process).

    The copy-on-write payload is the *whole source text* as one string
    plus a char-offset → line-number map: a handful of objects, so the
    fork never walks a million-element line list.  The shard tuple is a
    character range aligned to line boundaries.  O(bytes in shard);
    pickles back tallies, one packed counter bundle, and (only when a
    store is pending) one columnar block.
    """
    text, line_starts, format, source, mode, want_block = shared_payload()
    start, end = shard
    result = _FusedShardResult()
    segment = text[start:end]
    lines = segment.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    traces = _parse_lines(result, lines, line_starts[start], format, source, mode)
    if traces is None:
        return result
    if want_block and result.malformed == 0:
        try:
            result.block = pack_traces(traces).to_bytes()
        except FlatEncodeError:
            result.block = None
    report = sanitize_traces(traces)
    is_special = default_special_registry().is_special
    forward = {}
    backward = {}
    seen = set()
    accumulate_neighbors(report.traces, forward, backward, seen, is_special)
    counts = (len(report.traces), report.discarded, report.buggy_hops_removed)
    result.bundle = bundle_tables(
        forward, backward, seen, report.all_addresses, counts
    )
    return result


def _shard_spans(text: str, shards: int) -> Tuple[List[Shard], Dict[int, int]]:
    """Split *text* into newline-aligned character ranges.

    Returns the ranges plus a map from each range's start offset to its
    absolute 1-based line number (computed with C-speed ``str.count``).
    Ranges cover the text exactly once in order, so shard-order merges
    equal a serial pass.  When the file is smaller than the shard count
    (tiny presets, sweep cells) the boundary scan can carve *degenerate*
    spans containing nothing but whitespace; those are collapsed into a
    neighboring span before dispatch, so the supervisor never forks a
    worker that has zero records to parse.  O(len(text)) for the
    boundary scans.
    """
    length = len(text)
    if length == 0:
        return [], {}
    boundaries = {0}
    for index in range(1, max(1, shards)):
        newline = text.find("\n", length * index // shards)
        if newline != -1 and newline + 1 < length:
            boundaries.add(newline + 1)
    starts = sorted(boundaries)
    spans = [
        (start, starts[i + 1] if i + 1 < len(starts) else length)
        for i, start in enumerate(starts)
    ]
    merged: List[Shard] = []
    for start, end in spans:
        if merged and not text[start:end].strip():
            # Whitespace-only span: extend the previous shard over it.
            merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    if len(merged) > 1 and not text[merged[0][0] : merged[0][1]].strip():
        # A whitespace-only *leading* span merges forward instead.
        first_start = merged[0][0]
        merged = [(first_start, merged[1][1])] + merged[2:]
    spans = merged
    # Coverage must stay exact: contiguous, starting at 0, ending at EOF.
    assert spans[0][0] == 0 and spans[-1][1] == length, spans
    assert all(
        spans[i][1] == spans[i + 1][0] for i in range(len(spans) - 1)
    ), spans
    line_starts = {start: text.count("\n", 0, start) + 1 for start, _ in spans}
    return spans, line_starts


def stream_graph_from_file(
    path: Union[str, Path],
    jobs: int,
    *,
    format: Optional[str] = None,
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
    want_payload: bool = False,
) -> Tuple[InterfaceGraph, IngestReport, Optional[bytes]]:
    """Parse a traces file and build its interface graph in one fork.

    The ``run`` pipeline's hot path: each worker stream-parses its text
    shard, sanitizes, and folds neighbor sets, returning a packed
    counter bundle — parsed traces never cross the fork boundary in
    either direction.  The parent re-raises strict errors (earliest
    line), merges tallies in shard order, runs the shared
    :func:`finalize_ingest` tail (same ``ingest.end`` event, budget
    check, quarantine write), then merges bundles into the same
    canonical graph — and same ``graph.built`` event — as the serial
    ingest-then-build sequence.

    With *want_payload* true (a cache store is pending) clean-parsing
    workers also return their shard's columnar block; the returned
    payload is the spliced whole-file block, or ``None`` when the parse
    was dirty or any shard fell back.  O(file bytes) end to end;
    pickled traffic is O(distinct addresses), not O(hops).
    """
    path = Path(path)
    if format is None:
        format = trace_format_for_path(path.name)
    if mode not in MODES:
        raise ValueError(f"unknown ingest mode {mode!r}; expected one of {MODES}")
    if mode == "quarantine" and quarantine_dir is None:
        quarantine_dir = path.parent / "quarantine"
    if format not in FORMATS:
        raise ValueError(f"unknown trace format {format!r}; expected one of {FORMATS}")
    with open(path, errors="replace") as handle:
        text = handle.read()
    spans, line_starts = _shard_spans(text, max(1, jobs))
    with obs.span("ingest+graph"):
        results = fork_map(
            _fused_shard,
            (text, line_starts, format, path.name, mode, want_payload),
            len(spans),
            jobs,
            shards=spans,
            timeout=shard_timeout,
            obs=obs,
            budget=budget,
        )
        _raise_earliest_strict_error(results)
        report = IngestReport(source=path.name, mode=mode)
        rejects: List[str] = []
        blocks: List[Optional[bytes]] = []
        for result in _merge_shard_tallies(results, report, rejects):
            blocks.append(result.block)
        finalize_ingest(
            report, rejects, budget=budget, quarantine_dir=quarantine_dir, obs=obs
        )
        graph = finish_graph_from_bundles(
            [result.bundle for result in results if result.bundle is not None], obs
        )
    payload: Optional[bytes] = None
    if want_payload and report.ok and all(block is not None for block in blocks):
        payload = concat_flat_bytes([block for block in blocks if block is not None])
    return graph, report, payload


# ----------------------------------------------------------------------
# the streamed block fold (stress tier: generated shards, bounded RSS)


@dataclass(frozen=True)
class StreamFoldStats:
    """Deterministic accounting of one streamed block fold.

    Pure function of the folded blocks — no timings, no RSS — so sweep
    cell results that embed it stay byte-identical across resumes.
    ``stream_bytes`` is the total columnar volume that passed through
    the fold; ``peak_block_bytes`` is the largest single block, i.e. the
    fold's residency bound beyond the accumulated tables.
    """

    shards: int
    traces: int
    retained: int
    discarded: int
    stream_bytes: int
    peak_block_bytes: int


def fold_graph_from_blocks(
    blocks, obs: Observability = NULL_OBS
) -> Tuple[InterfaceGraph, StreamFoldStats]:
    """Fold an *iterator* of columnar blocks into one interface graph.

    The stress tier's ingest path: blocks arrive one at a time from a
    generator (:func:`repro.sim.stress.stress_blocks` or any other
    shard-by-shard producer) and are folded with the flat kernel as they
    appear — at no point is more than one block resident beyond the
    accumulated neighbor tables, so a multi-million-trace world folds in
    memory bounded by ``peak_block_bytes`` plus the table size.
    Downstream-equivalent to decoding every block and running the serial
    sanitize + build sequence: same tables (sorted-key canonical form),
    same gauges, same ``graph.built`` event.  O(total hops).
    """
    is_special = default_special_registry().is_special
    forward: Dict[int, set] = {}
    backward: Dict[int, set] = {}
    seen: set = set()
    universe: set = set()
    retained = discarded = buggy = 0
    shards = traces = stream_bytes = peak_block_bytes = 0
    with obs.span("stream_fold"):
        for flat in blocks:
            shards += 1
            traces += len(flat)
            nbytes = flat.nbytes
            stream_bytes += nbytes
            peak_block_bytes = max(peak_block_bytes, nbytes)
            counts = accumulate_flat(
                flat, 0, len(flat), forward, backward, seen, universe, is_special
            )
            retained += counts[0]
            discarded += counts[1]
            buggy += counts[2]
        forward = {address: forward[address] for address in sorted(forward)}
        backward = {address: backward[address] for address in sorted(backward)}
        universe.update(seen)
        if obs.enabled:
            obs.gauge("sanitize.retained", retained)
            obs.gauge("sanitize.discarded", discarded)
            obs.gauge("sanitize.buggy_hops_removed", buggy)
            obs.gauge("perf.flat.shards", shards)
            obs.inc("perf.flat.bundle_bytes", stream_bytes)
        graph = finish_interface_graph(
            InterfaceGraph(forward=forward, backward=backward),
            seen,
            universe,
            is_special,
            obs,
        )
    stats = StreamFoldStats(
        shards=shards,
        traces=traces,
        retained=retained,
        discarded=discarded,
        stream_bytes=stream_bytes,
        peak_block_bytes=peak_block_bytes,
    )
    return graph, stats
