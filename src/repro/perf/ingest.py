"""Sharded trace ingestion: the parallel twin of ``repro.robust.ingest``.

The source file's lines are split into contiguous shards; each worker
runs the same per-record pipeline as the serial ingester — blank/comment
skipping, :func:`repro.robust.ingest.parse_record`, per-mode error
handling — over its shard with *absolute* line numbers, and returns a
compact partial result.  The parent concatenates partials in shard
order, so the merged traces, error list, reject list, and counts are
exactly what one serial pass would have produced, then hands off to
:func:`repro.robust.ingest.finalize_ingest` for the budget check,
quarantine write, and observability — the shared tail guarantees the
two ingesters are indistinguishable from the outside.

Strict mode needs care: the serial ingester raises at the first
malformed record.  Raising inside a pool worker would surface as a
wrapped remote traceback, so strict workers instead stop at their first
error and report it as data; the parent re-raises the error with the
smallest line number, reconstructing the exact
:class:`~repro.traceroute.parse.TraceParseError` the serial path throws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.obs.observer import NULL_OBS, Observability
from repro.perf.pool import Shard, fork_map, shared_payload
from repro.robust.errors import (
    MAX_DETAILED_ERRORS,
    SNIPPET_LIMIT,
    ErrorBudget,
    IngestError,
    IngestReport,
)
from repro.robust.ingest import FORMATS, MODES, finalize_ingest, parse_record
from repro.traceroute.model import Trace
from repro.traceroute.parse import TraceParseError, trace_format_for_path


@dataclass
class _ShardResult:
    """What one worker sends back: the parse outcome of its line range."""

    traces: List[Trace] = field(default_factory=list)
    parsed: int = 0
    malformed: int = 0
    skipped: int = 0
    errors: List[IngestError] = field(default_factory=list)
    rejects: List[str] = field(default_factory=list)
    #: strict mode: (reason, line_number, text) of the first bad record
    strict_error: Optional[Tuple[str, int, str]] = None


def _ingest_shard(shard: Shard) -> _ShardResult:
    """Parse one contiguous line range (runs in a worker process)."""
    lines, format, source, mode = shared_payload()
    start, end = shard
    result = _ShardResult()
    for offset in range(start, end):
        line_number = offset + 1
        line = lines[offset].strip()
        if not line:
            continue
        if format == "text" and line.startswith("#"):
            continue
        try:
            trace = parse_record(line, line_number, format)
            if trace is None:
                result.skipped += 1
                continue
        except TraceParseError as exc:
            if mode == "strict":
                result.strict_error = (exc.reason, line_number, line)
                return result
            result.malformed += 1
            if len(result.errors) < MAX_DETAILED_ERRORS:
                result.errors.append(
                    IngestError(source, line_number, exc.reason, line[:SNIPPET_LIMIT])
                )
            if mode == "quarantine":
                result.rejects.append(line)
            continue
        result.parsed += 1
        result.traces.append(trace)
    return result


def ingest_traces_parallel(
    lines: List[str],
    jobs: int,
    *,
    format: str = "text",
    source: str = "traces",
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> Tuple[List[Trace], IngestReport]:
    """Parse *lines* across *jobs* workers under an ingestion policy.

    Drop-in equivalent of :func:`repro.robust.ingest.ingest_traces` for
    an in-memory line list: same traces, same report, same exceptions.
    *shard_timeout* is the supervisor's per-shard deadline
    (docs/ROBUSTNESS.md).
    """
    if mode not in MODES:
        raise ValueError(f"unknown ingest mode {mode!r}; expected one of {MODES}")
    if mode == "quarantine" and quarantine_dir is None:
        raise ValueError("quarantine mode requires a quarantine_dir")
    if format not in FORMATS:
        raise ValueError(f"unknown trace format {format!r}; expected one of {FORMATS}")
    with obs.span("ingest"):
        results = fork_map(
            _ingest_shard,
            (lines, format, source, mode),
            len(lines),
            jobs,
            timeout=shard_timeout,
            obs=obs,
            budget=budget,
        )
    strict_errors = [r.strict_error for r in results if r.strict_error is not None]
    if strict_errors:
        reason, line_number, text = min(strict_errors, key=lambda item: item[1])
        raise TraceParseError(reason, line_number, text)
    report = IngestReport(source=source, mode=mode)
    traces: List[Trace] = []
    rejects: List[str] = []
    # Shard order is line order, so plain concatenation reproduces the
    # serial outcome — including which errors land inside the detailed
    # cap: each shard returns at most MAX_DETAILED_ERRORS records, and
    # truncating the in-order concatenation keeps exactly the first MAX.
    for result in results:
        report.parsed += result.parsed
        report.malformed += result.malformed
        report.skipped += result.skipped
        traces.extend(result.traces)
        rejects.extend(result.rejects)
        remaining = MAX_DETAILED_ERRORS - len(report.errors)
        if remaining > 0:
            report.errors.extend(result.errors[:remaining])
    finalize_ingest(
        report, rejects, budget=budget, quarantine_dir=quarantine_dir, obs=obs
    )
    return traces, report


def ingest_trace_file_parallel(
    path: Union[str, Path],
    jobs: int,
    *,
    format: Optional[str] = None,
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> Tuple[List[Trace], IngestReport]:
    """Sharded equivalent of :func:`repro.robust.ingest.ingest_trace_file`.

    The whole file is read into memory up front — the line list is what
    workers inherit through the fork — which is the right trade for the
    bundle sizes this pipeline targets (the paper's full dataset is
    tens of MB of text).
    """
    path = Path(path)
    if format is None:
        format = trace_format_for_path(path.name)
    if mode == "quarantine" and quarantine_dir is None:
        quarantine_dir = path.parent / "quarantine"
    with open(path, errors="replace") as handle:
        lines = handle.readlines()
    return ingest_traces_parallel(
        lines,
        jobs,
        format=format,
        source=path.name,
        mode=mode,
        budget=budget,
        quarantine_dir=quarantine_dir,
        obs=obs,
        shard_timeout=shard_timeout,
    )
