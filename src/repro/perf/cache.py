"""On-disk parsed-trace cache keyed by source-file checksums.

Parsing dominates bundle load time, yet the traces file rarely changes
between runs over the same dataset.  :class:`BundleCache` memoizes the
*parsed* traces on disk, keyed by the sha256 of the source file — the
same digest :func:`repro.io.atomic.file_sha256` produces and the
dataset manifest records as ``sha256:`` checksums — so a warm load
skips parsing entirely and any edit to the traces file changes the key
and misses.

Entries are written in the **v2 binary format**: a fixed
struct-packed header followed by the columnar
:class:`repro.perf.flat.FlatTraces` block::

    offset size  field
    0      8     magic  b"MAPITC2\\n"
    8      2     entry version (little-endian u16, currently 2)
    10     1     trace format code (1=text 2=jsonl 3=atlas)
    11     1     reserved (zero)
    12     4     parsed record count (u32)
    16     4     skipped record count (u32)
    20     8     payload length in bytes (u64)
    28     32    source file sha256 (raw digest)
    60     32    payload sha256 (raw digest)
    92     ...   payload: FlatTraces.to_bytes() columnar block

The v2 payload is plain struct/array data — decoding it executes no
code, which removes the v1 pickle trust caveat — and the columnar form
is exactly what the fused parallel loader maps workers over, so a warm
hit never materializes trace objects it doesn't need.

**Transparent v1 fallback**: entries written by earlier releases (a
JSON header line + a pickle of compact tuples) still verify and load —
:meth:`BundleCache.load_entry` sniffs the leading byte (``{`` = v1
JSON header, otherwise the v2 magic) and each verified hit is counted
under ``perf.cache.format.v1`` / ``perf.cache.format.v2``.  The entry
*filename* is unchanged across formats (the key identifies the source;
the entry self-describes its layout), so the first store after a v1
hit's source changes simply upgrades the file in place.  v1 payloads
are still pickles: keep the old trust rule (don't point ``--cache`` at
directories other users can write) until your cache has cycled to v2.

Every load verifies magic, version, format, source checksum, payload
length, and the payload's own sha256 before decoding; any failure is
counted as ``perf.cache.invalid``, treated as a miss, and the entry is
atomically rewritten after the re-parse — corruption is detected,
never served.  Only *clean* parses (zero malformed records) are
stored: a dirty source must re-parse every load so its policy side
effects (error reports, quarantine files, budget checks) still happen.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.io.atomic import atomic_write_bytes
from repro.obs.observer import NULL_OBS, Observability
from repro.perf.flat import FlatEncodeError, FlatTraces, pack_traces, unpack_traces
from repro.robust.errors import IngestReport
from repro.robust.faults import active_chaos
from repro.traceroute.model import Hop, Trace

MAGIC = "mapit-bundle-cache"

#: the on-disk layout this release writes; readers accept 1 and 2
CACHE_VERSION = 2

#: key-material version — deliberately frozen at 1 so v1 and v2 entries
#: share filenames and old entries are found (they self-describe)
KEY_VERSION = 1

#: leading bytes of a v2 binary entry
BINARY_MAGIC = b"MAPITC2\n"

_V2_HEADER = struct.Struct("<8sHBxIIQ32s32s")

_FORMAT_CODES = {"text": 1, "jsonl": 2, "atlas": 3}
_FORMAT_NAMES = {code: name for name, code in _FORMAT_CODES.items()}


def _pack(traces: List[Trace]) -> List[tuple]:
    """Legacy v1 tuple shape (kept for reading old entries and for
    tests that fabricate them)."""
    return [
        (
            trace.monitor,
            trace.dst,
            tuple((hop.address, hop.quoted_ttl, hop.rtt_ms) for hop in trace.hops),
            trace.flow_id,
        )
        for trace in traces
    ]


def _unpack(packed: List[tuple]) -> List[Trace]:
    """Rehydrate legacy v1 compact tuples into dataclasses."""
    return [
        Trace(
            monitor,
            dst,
            tuple(Hop(address, quoted, rtt) for address, quoted, rtt in hops),
            flow_id,
        )
        for monitor, dst, hops, flow_id in packed
    ]


def cache_key(source_sha256: str, format: str) -> str:
    """The entry digest for a source file's content hash and format.

    Key material is versioned independently of the entry layout
    (``KEY_VERSION``): bumping the *entry* format must not orphan old
    entries, because readers fall back transparently.
    """
    material = f"{MAGIC}\n{KEY_VERSION}\n{format}\n{source_sha256}"
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheHit:
    """A verified cache entry, decoded lazily.

    ``flat`` is populated for v2 entries (the columnar block, ready for
    the fused graph path without object materialization); v1 entries
    carry their unpickled compact tuples instead.  :meth:`traces`
    materializes dataclasses on demand either way.
    """

    parsed: int
    skipped: int
    entry_version: int
    flat: Optional[FlatTraces] = None
    packed_v1: Optional[list] = None

    @property
    def format_label(self) -> str:
        """Human-readable entry format (``v1`` or ``v2``), surfaced in
        bundle health output."""
        return f"v{self.entry_version}"

    def traces(self) -> List[Trace]:
        """Materialize the full trace list (O(total hops))."""
        if self.flat is not None:
            return unpack_traces(self.flat)
        return _unpack(self.packed_v1 or [])


class BundleCache:
    """A directory of checksummed parsed-trace entries.

    All methods are process-safe: entries are written atomically and
    re-verified on every read, so concurrent runs over the same dataset
    at worst duplicate work, never corrupt each other.
    """

    def __init__(
        self, directory: Union[str, Path], obs: Observability = NULL_OBS
    ) -> None:
        self.directory = Path(directory)
        self.obs = obs

    def entry_path(self, source_sha256: str, format: str) -> Path:
        return self.directory / f"{cache_key(source_sha256, format)}.mapitc"

    def load_entry(self, source_sha256: str, format: str) -> Optional[CacheHit]:
        """Return a verified :class:`CacheHit`, or ``None``.

        Sniffs the entry's leading byte to pick the decoder (``{`` =
        legacy v1 JSON header, otherwise v2 binary), verifies every
        header field and the payload digest, and counts the hit under
        ``perf.cache.format.<v1|v2>``.  ``None`` covers both a miss and
        a failed verification — the caller re-parses either way, and a
        corrupt entry is overwritten by the subsequent store.  O(entry
        bytes); nothing is unpickled or decoded before the checksums
        pass.
        """
        path = self.entry_path(source_sha256, format)
        try:
            data = path.read_bytes()
        except OSError:
            self.obs.inc("perf.cache.misses")
            return None
        try:
            if data[:1] == b"{":
                hit = self._decode_v1(data, source_sha256, format)
            else:
                hit = self._decode_v2(data, source_sha256, format)
        except Exception:  # noqa: BLE001 - any damage is just a miss
            self.obs.inc("perf.cache.invalid")
            return None
        self.obs.inc("perf.cache.hits")
        self.obs.inc(f"perf.cache.format.{hit.format_label}")
        return hit

    def load(
        self, source_sha256: str, format: str
    ) -> Optional[Tuple[List[Trace], int, int]]:
        """Compatibility wrapper: ``(traces, parsed, skipped)`` on a
        verified hit, materializing trace objects eagerly."""
        hit = self.load_entry(source_sha256, format)
        if hit is None:
            return None
        return hit.traces(), hit.parsed, hit.skipped

    def _decode_v1(self, data: bytes, source_sha256: str, format: str) -> CacheHit:
        split = data.index(b"\n")
        header = json.loads(data[:split])
        payload = data[split + 1 :]
        if (
            header.get("magic") != MAGIC
            or header.get("version") != 1
            or header.get("format") != format
            or header.get("source_sha256") != source_sha256
            or header.get("payload_sha256") != hashlib.sha256(payload).hexdigest()
        ):
            raise ValueError("cache entry failed verification")
        packed = pickle.loads(payload)
        parsed = header["parsed"]
        skipped = header["skipped"]
        if not isinstance(packed, list) or len(packed) != parsed:
            raise ValueError("cache payload does not match its header")
        return CacheHit(
            parsed=parsed, skipped=skipped, entry_version=1, packed_v1=packed
        )

    def _decode_v2(self, data: bytes, source_sha256: str, format: str) -> CacheHit:
        if len(data) < _V2_HEADER.size:
            raise ValueError("cache entry shorter than its header")
        (
            magic,
            version,
            format_code,
            parsed,
            skipped,
            payload_len,
            source_digest,
            payload_digest,
        ) = _V2_HEADER.unpack_from(data)
        payload = data[_V2_HEADER.size :]
        if (
            magic != BINARY_MAGIC
            or version != CACHE_VERSION
            or _FORMAT_NAMES.get(format_code) != format
            or source_digest != bytes.fromhex(source_sha256)
            or payload_len != len(payload)
            or payload_digest != hashlib.sha256(payload).digest()
        ):
            raise ValueError("cache entry failed verification")
        flat = FlatTraces.from_bytes(payload)
        if len(flat) != parsed:
            raise ValueError("cache payload does not match its header")
        return CacheHit(parsed=parsed, skipped=skipped, entry_version=2, flat=flat)

    def store(
        self,
        source_sha256: str,
        format: str,
        traces: List[Trace],
        report: IngestReport,
    ) -> bool:
        """Write a v2 entry for a *clean* parse; returns whether stored.

        Encodes the traces columnar (O(total hops)) and delegates to
        :meth:`store_payload`.  A trace that cannot be flat-encoded
        (pathological field values outside u32/i64) is simply not
        cached — an encode failure may cost the next run a re-parse,
        never this run its result.
        """
        if not report.ok:
            return False
        try:
            payload = pack_traces(traces).to_bytes()
        except FlatEncodeError:
            return False
        return self.store_payload(source_sha256, format, payload, report)

    def store_payload(
        self,
        source_sha256: str,
        format: str,
        payload: bytes,
        report: IngestReport,
    ) -> bool:
        """Write an already-encoded columnar payload as a v2 entry.

        The fused streaming loader calls this directly with the
        concatenated per-shard blocks, so a cold parallel run populates
        the cache without ever building trace objects in the parent.
        Atomic, clean-parses-only, chaos-injectable; O(payload bytes).
        """
        if not report.ok:
            return False
        format_code = _FORMAT_CODES.get(format)
        if format_code is None:
            return False
        header = _V2_HEADER.pack(
            BINARY_MAGIC,
            CACHE_VERSION,
            format_code,
            report.parsed,
            report.skipped,
            len(payload),
            bytes.fromhex(source_sha256),
            hashlib.sha256(payload).digest(),
        )
        path = self.entry_path(source_sha256, format)
        # Another run racing over the same dataset may have stored this
        # entry between our miss and now; the overwrite is harmless
        # (same key -> same content) but worth counting.
        contended = path.exists()
        try:
            chaos = active_chaos()
            if chaos is not None:
                chaos.maybe_fail_write("cache")
            self._ensure_directory()
            atomic_write_bytes(path, header + payload)
        except OSError:
            # A full or read-only disk costs the next run a re-parse,
            # never this run its result.
            self.obs.inc("perf.cache.store_failed")
            return False
        if contended:
            self.obs.inc("perf.cache.contended")
        self.obs.inc("perf.cache.stores")
        return True

    def _ensure_directory(self) -> None:
        """Create the cache directory, tolerating a concurrent creator.

        ``exist_ok=True`` still races on some filesystems when another
        run creates the directory (or replaces a dangling symlink)
        between the existence check and the mkdir — retry once before
        giving up.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            self.obs.inc("perf.cache.contended")
            self.directory.mkdir(parents=True, exist_ok=True)
