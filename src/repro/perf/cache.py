"""On-disk parsed-trace cache keyed by source-file checksums.

Parsing dominates bundle load time, yet the traces file rarely changes
between runs over the same dataset.  :class:`BundleCache` memoizes the
*parsed* trace list on disk, keyed by the sha256 of the source file —
the same digest :func:`repro.io.atomic.file_sha256` produces and the
dataset manifest records as ``sha256:`` checksums — so a warm load
skips parsing entirely and any edit to the traces file changes the key
and misses.

Entry layout (one file per source, named by the key digest)::

    {"magic": ..., "version": 1, "format": ..., "source_sha256": ...,
     "payload_sha256": ..., "parsed": N, "skipped": M}\\n
    <pickle of compact trace tuples>

Traces are stored as plain tuples ``(monitor, dst, hops, flow_id)``
with ``hops`` a tuple of ``(address, quoted_ttl, rtt_ms)`` — pickling
builtin containers is several times faster (and ~40% smaller) than
pickling the frozen dataclasses, and it decouples the entry format
from dataclass internals (a field reorder bumps CACHE_VERSION, not
silently corrupts old entries).

The JSON header line makes entries self-describing and carries the
payload's own sha256; :meth:`BundleCache.load` verifies every header
field *and* the payload digest before unpickling, so a truncated,
corrupted, or stale entry is detected and treated as a miss (counted
separately as ``perf.cache.invalid``) — never served.  Entries are
written atomically, and only for *clean* parses (zero malformed
records): a dirty source must re-parse every load so its policy side
effects (error reports, quarantine files, budget checks) still happen.

The payload is a pickle, so treat the cache directory with the same
trust as the dataset itself — don't point ``--cache`` at a directory
other users can write.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.io.atomic import atomic_write_bytes
from repro.obs.observer import NULL_OBS, Observability
from repro.robust.errors import IngestReport
from repro.robust.faults import active_chaos
from repro.traceroute.model import Hop, Trace

MAGIC = "mapit-bundle-cache"

#: bump when the entry layout or the compact tuple shape changes; old
#: entries then key differently and simply miss
CACHE_VERSION = 1


def _pack(traces: List[Trace]) -> List[tuple]:
    return [
        (
            trace.monitor,
            trace.dst,
            tuple((hop.address, hop.quoted_ttl, hop.rtt_ms) for hop in trace.hops),
            trace.flow_id,
        )
        for trace in traces
    ]


def _unpack(packed: List[tuple]) -> List[Trace]:
    return [
        Trace(
            monitor,
            dst,
            tuple(Hop(address, quoted, rtt) for address, quoted, rtt in hops),
            flow_id,
        )
        for monitor, dst, hops, flow_id in packed
    ]


def cache_key(source_sha256: str, format: str) -> str:
    """The entry digest for a source file's content hash and format."""
    material = f"{MAGIC}\n{CACHE_VERSION}\n{format}\n{source_sha256}"
    return hashlib.sha256(material.encode()).hexdigest()


class BundleCache:
    """A directory of checksummed parsed-trace entries."""

    def __init__(
        self, directory: Union[str, Path], obs: Observability = NULL_OBS
    ) -> None:
        self.directory = Path(directory)
        self.obs = obs

    def entry_path(self, source_sha256: str, format: str) -> Path:
        return self.directory / f"{cache_key(source_sha256, format)}.mapitc"

    def load(
        self, source_sha256: str, format: str
    ) -> Optional[Tuple[List[Trace], int, int]]:
        """Return ``(traces, parsed, skipped)`` on a verified hit.

        Returns ``None`` on a miss *or* on an entry that fails
        verification — the caller re-parses either way, and a corrupt
        entry is overwritten by the subsequent store.
        """
        path = self.entry_path(source_sha256, format)
        try:
            data = path.read_bytes()
        except OSError:
            self.obs.inc("perf.cache.misses")
            return None
        try:
            split = data.index(b"\n")
            header = json.loads(data[:split])
            payload = data[split + 1 :]
            if (
                header.get("magic") != MAGIC
                or header.get("version") != CACHE_VERSION
                or header.get("format") != format
                or header.get("source_sha256") != source_sha256
                or header.get("payload_sha256")
                != hashlib.sha256(payload).hexdigest()
            ):
                raise ValueError("cache entry failed verification")
            packed = pickle.loads(payload)
            parsed = header["parsed"]
            skipped = header["skipped"]
            if not isinstance(packed, list) or len(packed) != parsed:
                raise ValueError("cache payload does not match its header")
            traces = _unpack(packed)
        except Exception:  # noqa: BLE001 - any damage is just a miss
            self.obs.inc("perf.cache.invalid")
            return None
        self.obs.inc("perf.cache.hits")
        return traces, parsed, skipped

    def store(
        self,
        source_sha256: str,
        format: str,
        traces: List[Trace],
        report: IngestReport,
    ) -> bool:
        """Write an entry for a *clean* parse; returns whether it stored.

        Parses with malformed records are never cached: their traces
        depend on the ingestion mode, and serving them from cache would
        silently skip the error-budget and quarantine machinery.
        """
        if not report.ok:
            return False
        payload = pickle.dumps(_pack(traces), protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "magic": MAGIC,
            "version": CACHE_VERSION,
            "format": format,
            "source_sha256": source_sha256,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "parsed": report.parsed,
            "skipped": report.skipped,
        }
        path = self.entry_path(source_sha256, format)
        # Another run racing over the same dataset may have stored this
        # entry between our miss and now; the overwrite is harmless
        # (same key -> same content) but worth counting.
        contended = path.exists()
        try:
            chaos = active_chaos()
            if chaos is not None:
                chaos.maybe_fail_write("cache")
            self._ensure_directory()
            atomic_write_bytes(
                path,
                json.dumps(header, separators=(",", ":")).encode()
                + b"\n"
                + payload,
            )
        except OSError:
            # A full or read-only disk costs the next run a re-parse,
            # never this run its result.
            self.obs.inc("perf.cache.store_failed")
            return False
        if contended:
            self.obs.inc("perf.cache.contended")
        self.obs.inc("perf.cache.stores")
        return True

    def _ensure_directory(self) -> None:
        """Create the cache directory, tolerating a concurrent creator.

        ``exist_ok=True`` still races on some filesystems when another
        run creates the directory (or replaces a dangling symlink)
        between the existence check and the mkdir — retry once before
        giving up.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            self.obs.inc("perf.cache.contended")
            self.directory.mkdir(parents=True, exist_ok=True)
