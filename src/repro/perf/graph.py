"""Sharded sanitize + neighbor-set construction.

Trace shards are independent under both pipeline stages: sanitization
(section 4.1) is per-trace, and the neighbor-set fold (section 4.3)
records *membership*, not multiplicity — so a worker can fuse both
stages over its shard and return partial N_F/N_B tables, and the parent
merges them by set union.  Fusing matters: returning sanitized traces
from workers would pickle the whole dataset back through the pool; the
partial tables are far smaller — and they cross the boundary as packed
``uint32`` buffers (:class:`repro.perf.flat.FlatGraphBundle`), so the
result pickle is a handful of ``bytes`` objects, near-memcpy, instead
of an object graph of dicts-of-sets.

Determinism: set-union is commutative and associative, so the merged
tables contain exactly the serial members for every address regardless
of shard count; the merged dicts are rebuilt with sorted keys so even
their iteration order is a pure function of the input.  (The inference
engine is insensitive to neighbor-table iteration order — every
result-affecting traversal sorts — but canonical order makes the
parallel graph reproducible byte-for-byte on its own terms.)  The
shared tail :func:`repro.graph.neighbors.finish_interface_graph`
computes other-sides and emits the same ``graph.built`` observability
as the serial builder.

Two worker kernels share the bundle shape:

* :func:`_graph_shard` sanitizes a shard of parsed :class:`Trace`
  objects with the object kernel (the cold path, where objects exist
  anyway because parsing just produced them);
* :func:`_flat_graph_shard` folds a trace-index range of a columnar
  :class:`~repro.perf.flat.FlatTraces` block with
  :func:`~repro.perf.flat.accumulate_flat` (the warm-cache path, which
  never materializes a ``Hop``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.neighbors import (
    InterfaceGraph,
    accumulate_neighbors,
    finish_interface_graph,
)
from repro.net.special import default_special_registry
from repro.obs.observer import NULL_OBS, Observability
from repro.perf.flat import (
    FlatGraphBundle,
    FlatTraces,
    accumulate_flat,
    bundle_tables,
    merge_graph_bundles,
)
from repro.perf.pool import Shard, fork_map, shared_payload
from repro.traceroute.model import Trace
from repro.traceroute.sanitize import sanitize_traces


def _graph_shard(shard: Shard) -> FlatGraphBundle:
    """Sanitize one shard of parsed traces and fold it into a packed
    partial-table bundle (runs in a worker process).

    O(hops in shard); pickles back only the bundle's packed buffers.
    """
    traces: Sequence[Trace] = shared_payload()
    start, end = shard
    report = sanitize_traces(traces[start:end])
    is_special = default_special_registry().is_special
    forward = {}
    backward = {}
    seen = set()
    accumulate_neighbors(report.traces, forward, backward, seen, is_special)
    counts = (len(report.traces), report.discarded, report.buggy_hops_removed)
    return bundle_tables(forward, backward, seen, report.all_addresses, counts)


def _flat_graph_shard(shard: Shard) -> FlatGraphBundle:
    """Fold one trace-index range of a columnar block into a packed
    partial-table bundle (runs in a worker process).

    The copy-on-write payload is a :class:`FlatTraces` — a handful of
    flat buffers, so the fork inherits it without touching per-object
    refcounts.  O(hops in range); pickles back only packed buffers.
    """
    flat: FlatTraces = shared_payload()
    start, end = shard
    is_special = default_special_registry().is_special
    forward = {}
    backward = {}
    seen = set()
    universe = set()
    counts = accumulate_flat(
        flat, start, end, forward, backward, seen, universe, is_special
    )
    return bundle_tables(forward, backward, seen, universe, counts)


def finish_graph_from_bundles(
    bundles: List[FlatGraphBundle], obs: Observability = NULL_OBS
) -> InterfaceGraph:
    """Merge worker bundles and finish the interface graph.

    Deterministic parent-side tail shared by every sharded builder:
    set-union merge with sorted-key rebuild, the serial sanitize
    gauges, ``perf.flat.*`` transfer accounting, and the shared
    :func:`finish_interface_graph` (same ``graph.built`` event as the
    serial builder).  O(total members) in the merged tables.
    """
    forward, backward, seen, universe, counts = merge_graph_bundles(bundles)
    retained, discarded, buggy = counts
    universe.update(seen)
    if obs.enabled:
        obs.gauge("sanitize.retained", retained)
        obs.gauge("sanitize.discarded", discarded)
        obs.gauge("sanitize.buggy_hops_removed", buggy)
        obs.gauge("perf.flat.shards", len(bundles))
        obs.inc(
            "perf.flat.bundle_bytes", sum(bundle.nbytes for bundle in bundles)
        )
    return finish_interface_graph(
        InterfaceGraph(forward=forward, backward=backward),
        seen,
        universe,
        default_special_registry().is_special,
        obs,
    )


def build_graph_parallel(
    traces: Sequence[Trace],
    jobs: int,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> InterfaceGraph:
    """Sanitize *traces* and build the interface graph across *jobs*
    workers.

    Equivalent to ``sanitize_traces`` + ``build_interface_graph`` with
    ``all_addresses=report.all_addresses``: same neighbor sets, same
    other-side table, same ``graph.built`` event — the sharding is
    invisible downstream.  The trace list crosses into workers via the
    copy-on-write fork payload (nothing pickled in); only packed
    counter bundles are pickled out.  *shard_timeout* is the
    supervisor's per-shard deadline (docs/ROBUSTNESS.md).
    """
    traces = traces if isinstance(traces, (list, tuple)) else list(traces)
    with obs.span("sanitize+neighbor_sets"):
        results = fork_map(
            _graph_shard, traces, len(traces), jobs, timeout=shard_timeout, obs=obs
        )
    return finish_graph_from_bundles(results, obs)


def build_graph_flat(
    flat: FlatTraces,
    jobs: int,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> InterfaceGraph:
    """Build the interface graph straight from a columnar block.

    The warm-cache fast path: shards the trace-index space across
    *jobs* workers, each folding its range with the flat kernel — no
    :class:`Trace`/:class:`Hop` objects are ever created on either side
    of the fork.  Byte-identical downstream to the serial builder over
    the decoded traces (``tests/test_perf_flat.py`` and the golden
    suites hold the kernels equal).  *shard_timeout* as above.
    """
    with obs.span("sanitize+neighbor_sets"):
        results = fork_map(
            _flat_graph_shard, flat, len(flat), jobs, timeout=shard_timeout, obs=obs
        )
    return finish_graph_from_bundles(results, obs)
