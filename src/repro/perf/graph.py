"""Sharded sanitize + neighbor-set construction.

Trace shards are independent under both pipeline stages: sanitization
(section 4.1) is per-trace, and the neighbor-set fold (section 4.3)
records *membership*, not multiplicity — so a worker can fuse both
stages over its shard and return partial N_F/N_B tables, and the parent
merges them by set union.  Fusing matters: returning sanitized traces
from workers would pickle the whole dataset back through the pool; the
partial tables are far smaller.

Determinism: set-union is commutative and associative, so the merged
tables contain exactly the serial members for every address regardless
of shard count; the merged dicts are rebuilt with sorted keys so even
their iteration order is a pure function of the input.  (The inference
engine is insensitive to neighbor-table iteration order — every
result-affecting traversal sorts — but canonical order makes the
parallel graph reproducible byte-for-byte on its own terms.)  The
shared tail :func:`repro.graph.neighbors.finish_interface_graph`
computes other-sides and emits the same ``graph.built`` observability
as the serial builder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.neighbors import (
    InterfaceGraph,
    accumulate_neighbors,
    finish_interface_graph,
)
from repro.net.special import default_special_registry
from repro.obs.observer import NULL_OBS, Observability
from repro.perf.pool import Shard, fork_map, shared_payload
from repro.traceroute.model import Trace
from repro.traceroute.sanitize import sanitize_traces

#: what one worker returns: partial forward/backward tables, the seen
#: (retained, non-special) set, the pre-sanitize address universe, and
#: the shard's (retained, discarded, buggy_hops_removed) counts
_ShardGraph = Tuple[
    Dict[int, Set[int]],
    Dict[int, Set[int]],
    Set[int],
    Set[int],
    Tuple[int, int, int],
]


def _graph_shard(shard: Shard) -> _ShardGraph:
    """Sanitize one trace shard and fold it into partial neighbor tables
    (runs in a worker process)."""
    traces: Sequence[Trace] = shared_payload()
    start, end = shard
    report = sanitize_traces(traces[start:end])
    is_special = default_special_registry().is_special
    forward: Dict[int, Set[int]] = {}
    backward: Dict[int, Set[int]] = {}
    seen: Set[int] = set()
    accumulate_neighbors(report.traces, forward, backward, seen, is_special)
    counts = (len(report.traces), report.discarded, report.buggy_hops_removed)
    return forward, backward, seen, report.all_addresses, counts


def _merge_tables(partials: List[Dict[int, Set[int]]]) -> Dict[int, Set[int]]:
    """Union partial neighbor tables into one, with sorted-key order."""
    merged: Dict[int, Set[int]] = {}
    for partial in partials:
        for address, members in partial.items():
            existing = merged.get(address)
            if existing is None:
                merged[address] = members
            else:
                existing.update(members)
    return {address: merged[address] for address in sorted(merged)}


def build_graph_parallel(
    traces: Sequence[Trace],
    jobs: int,
    obs: Observability = NULL_OBS,
    shard_timeout: Optional[float] = None,
) -> InterfaceGraph:
    """Sanitize *traces* and build the interface graph across *jobs*
    workers.

    Equivalent to ``sanitize_traces`` + ``build_interface_graph`` with
    ``all_addresses=report.all_addresses``: same neighbor sets, same
    other-side table, same ``graph.built`` event — the sharding is
    invisible downstream.  *shard_timeout* is the supervisor's
    per-shard deadline (docs/ROBUSTNESS.md).
    """
    traces = traces if isinstance(traces, (list, tuple)) else list(traces)
    with obs.span("sanitize+neighbor_sets"):
        results = fork_map(
            _graph_shard, traces, len(traces), jobs, timeout=shard_timeout, obs=obs
        )
    graph = InterfaceGraph(
        forward=_merge_tables([r[0] for r in results]),
        backward=_merge_tables([r[1] for r in results]),
    )
    seen: Set[int] = set()
    universe: Set[int] = set()
    retained = discarded = buggy = 0
    for _, _, shard_seen, shard_all, counts in results:
        seen.update(shard_seen)
        universe.update(shard_all)
        retained += counts[0]
        discarded += counts[1]
        buggy += counts[2]
    universe.update(seen)
    if obs.enabled:
        obs.gauge("sanitize.retained", retained)
        obs.gauge("sanitize.discarded", discarded)
        obs.gauge("sanitize.buggy_hops_removed", buggy)
    return finish_interface_graph(
        graph, seen, universe, default_special_registry().is_special, obs
    )
