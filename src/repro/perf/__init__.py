"""Parallel/sharded execution layer and the parsed-bundle cache.

Everything in this package is an *optimization*, never a semantic
change: the sharded ingester and graph builder produce byte-identical
results to their serial twins (``tests/test_parallel_equivalence.py``
holds them to it), and the cache only short-circuits parses it can
prove — by checksum — would reproduce what is stored.  The serial path
(``jobs=1``, no cache) never imports this package.

Entry points:

* :func:`repro.perf.pool.fork_map` / :func:`~repro.perf.pool.default_jobs`
  — the fork-pool substrate (``MAPIT_JOBS`` sets the default);
* :func:`repro.perf.ingest.ingest_trace_file_parallel` — sharded trace
  parsing under the strict/lenient/quarantine policies;
* :func:`repro.perf.ingest.stream_graph_from_file` — the fused
  streaming loader (parse + sanitize + neighbor fold in one fork;
  only counter bundles cross the process boundary);
* :func:`repro.perf.graph.build_graph_parallel` /
  :func:`~repro.perf.graph.build_graph_flat` — sharded sanitize +
  neighbor-set construction over trace objects or columnar blocks;
* :mod:`repro.perf.flat` — the flat-array data layer: columnar trace
  blocks, packed counter bundles, batched LPM resolution;
* :class:`repro.perf.cache.BundleCache` — the checksummed on-disk
  parsed-trace cache (binary v2 entries, transparent v1 fallback).
"""

from repro.perf.cache import BundleCache, cache_key
from repro.perf.flat import FlatTraces, pack_traces, unpack_traces
from repro.perf.graph import build_graph_flat, build_graph_parallel
from repro.perf.ingest import (
    ingest_trace_file_parallel,
    ingest_traces_parallel,
    stream_graph_from_file,
)
from repro.perf.pool import default_jobs, fork_map, shard_ranges

__all__ = [
    "BundleCache",
    "cache_key",
    "FlatTraces",
    "pack_traces",
    "unpack_traces",
    "build_graph_flat",
    "build_graph_parallel",
    "ingest_trace_file_parallel",
    "ingest_traces_parallel",
    "stream_graph_from_file",
    "default_jobs",
    "fork_map",
    "shard_ranges",
]
