"""Flat int-keyed hot-path structures (the ``repro.perf.flat`` layer).

The expensive objects in a MAP-IT run are the *per-hop* Python objects:
a dense dataset holds hundreds of thousands of :class:`Hop` /
:class:`Trace` instances whose creation, refcount traffic, and pickling
dominate the parallel layer's cost.  Addresses are already integers
(``repro.net``), and every pipeline stage downstream of parsing only
needs integer adjacency — so this module provides the flat twins the
sharded execution layer moves around instead:

* :class:`FlatTraces` — a columnar, ``array``/``bytes``-backed encoding
  of a parsed trace list (one buffer per column, no per-hop objects).
  It round-trips exactly (``unpack_traces(pack_traces(ts)) == ts``),
  serializes to a self-describing binary block (the ``.mapitc`` v2
  cache payload), and supports O(1) slicing into trace index ranges so
  workers can decode or fold *their shard only*.
* :func:`accumulate_flat` — the §4.1 sanitize + §4.3 neighbor-set fold
  executed directly over the columns, producing exactly the tallies of
  ``sanitize_traces`` + ``accumulate_neighbors`` without materializing
  a single ``Hop`` (property-tested against the object kernel in
  ``tests/test_perf_flat.py``).
* :func:`encode_table` / :func:`merge_table_blob` /
  :func:`encode_addresses` / :func:`merge_address_blob` — the counter
  bundle codec: neighbor tables and address sets as packed ``uint32``
  runs.  A worker's entire result pickles as a handful of ``bytes``
  objects (near-memcpy) instead of an object graph.
* :class:`FlatGraphBundle` / :func:`merge_graph_bundles` — what one
  worker returns across the fork boundary and the deterministic
  parent-side merge (set union + sorted key rebuild, so worker
  scheduling order cannot leak into results).
* :func:`resolve_origins` / :func:`graph_address_universe` — batched
  LPM lookups: resolve a sorted address batch through
  :meth:`repro.bgp.ip2as.IP2AS.asn` once per run instead of letting the
  engine fault them in one neighbor at a time mid-pass.

Everything here is an optimization, never a semantic change: the
golden-bundle, oracle-differential, and chaos harnesses hold every
consumer to byte-identity with the object pipeline.
"""

from __future__ import annotations

import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.traceroute.model import Hop, Trace

#: array typecode with a 4-byte unsigned item (u32 addresses)
U32 = "I" if array("I").itemsize == 4 else "L"
if array(U32).itemsize != 4:  # pragma: no cover - no such CPython platform
    raise ImportError("repro.perf.flat requires a 4-byte unsigned array type")
#: signed 8-byte items (quoted TTLs and flow ids are unbounded ints)
I64 = "q"
#: IEEE double items (RTTs round-trip exactly)
F64 = "d"
#: single-byte flag items
U8 = "B"

_U32_MAX = 0xFFFFFFFF
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: hop flag bit: the hop responded (address column is meaningful)
_RESPONDED = 0x01

_BLOCK_MAGIC = b"FTC1"
_LITTLE, _BIG = 1, 2
_NATIVE_ENDIAN = _LITTLE if sys.byteorder == "little" else _BIG
_BLOCK_HEADER = struct.Struct("<4sBxxxIII")


class FlatEncodeError(ValueError):
    """A trace field does not fit the flat encoding's integer ranges.

    Raised by :func:`pack_traces` for out-of-range fields (an address
    outside u32, a quoted TTL or flow id outside i64, a monitor string
    over 4 GiB).  Callers fall back to the object path — an encode
    failure may cost speed, never correctness.
    """


@dataclass
class FlatTraces:
    """A parsed trace list as parallel columns.

    Per trace: ``monitor_off`` (n+1 cumulative byte offsets into
    ``monitors``), ``dst``, ``flow``, and ``hop_start`` (n+1 cumulative
    hop indices).  Per hop: ``hop_flags`` (bit 0 = responded),
    ``hop_addr`` (0 when unresponsive), ``hop_quoted``, ``hop_rtt``.
    Memory is a handful of flat buffers regardless of trace count —
    forked workers inherit them copy-on-write without the per-object
    refcount writes that make large object heaps fork-hostile.
    """

    monitor_off: array
    monitors: bytes
    dst: array
    flow: array
    hop_start: array
    hop_flags: array
    hop_addr: array
    hop_quoted: array
    hop_rtt: array

    def __len__(self) -> int:
        return len(self.dst)

    @property
    def hop_count(self) -> int:
        return len(self.hop_flags)

    @property
    def nbytes(self) -> int:
        """Total buffer size in bytes (the ``perf.flat.*`` accounting)."""
        return (
            len(self.monitors)
            + sum(
                column.itemsize * len(column)
                for column in (
                    self.monitor_off,
                    self.dst,
                    self.flow,
                    self.hop_start,
                    self.hop_flags,
                    self.hop_addr,
                    self.hop_quoted,
                    self.hop_rtt,
                )
            )
        )

    # -- binary block -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing binary block.

        Layout: a 16-byte header (magic, endianness tag, trace count,
        hop count, monitor-blob length) followed by the columns in
        declaration order, each a raw native-endian array dump.  O(total
        bytes); produces the ``.mapitc`` v2 payload and the shard blobs
        pickled back from workers.
        """
        header = _BLOCK_HEADER.pack(
            _BLOCK_MAGIC,
            _NATIVE_ENDIAN,
            len(self.dst),
            len(self.hop_flags),
            len(self.monitors),
        )
        parts = [header, self.monitor_off.tobytes(), self.monitors]
        parts.extend(
            column.tobytes()
            for column in (
                self.dst,
                self.flow,
                self.hop_start,
                self.hop_flags,
                self.hop_addr,
                self.hop_quoted,
                self.hop_rtt,
            )
        )
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FlatTraces":
        """Decode a :meth:`to_bytes` block (O(total bytes), C-speed
        ``array.frombytes`` per column; byte-swapped when the block was
        written on an opposite-endian host).

        Raises :class:`ValueError` on a malformed or truncated block —
        cache readers treat that as a verification failure.
        """
        if len(blob) < _BLOCK_HEADER.size:
            raise ValueError("flat trace block shorter than its header")
        magic, endian, n_traces, n_hops, monitors_len = _BLOCK_HEADER.unpack_from(blob)
        if magic != _BLOCK_MAGIC:
            raise ValueError("flat trace block has a bad magic")
        if endian not in (_LITTLE, _BIG):
            raise ValueError("flat trace block has a bad endianness tag")
        swap = endian != _NATIVE_ENDIAN
        offset = _BLOCK_HEADER.size

        def take(typecode: str, count: int, itemsize: int) -> array:
            nonlocal offset
            column = array(typecode)
            end = offset + count * itemsize
            if end > len(blob):
                raise ValueError("flat trace block truncated")
            column.frombytes(blob[offset:end])
            if swap and itemsize > 1:
                column.byteswap()
            offset = end
            return column

        monitor_off = take(U32, n_traces + 1, 4)
        monitors_end = offset + monitors_len
        if monitors_end > len(blob):
            raise ValueError("flat trace block truncated")
        monitors = bytes(blob[offset:monitors_end])
        offset = monitors_end
        flat = cls(
            monitor_off=monitor_off,
            monitors=monitors,
            dst=take(U32, n_traces, 4),
            flow=take(I64, n_traces, 8),
            hop_start=take(U32, n_traces + 1, 4),
            hop_flags=take(U8, n_hops, 1),
            hop_addr=take(U32, n_hops, 4),
            hop_quoted=take(I64, n_hops, 8),
            hop_rtt=take(F64, n_hops, 8),
        )
        if offset != len(blob):
            raise ValueError("flat trace block has trailing bytes")
        return flat


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value <= _U32_MAX:
        raise FlatEncodeError(f"{what} {value!r} does not fit in u32")
    return value


def _check_i64(value: int, what: str) -> int:
    if not _I64_MIN <= value <= _I64_MAX:
        raise FlatEncodeError(f"{what} {value!r} does not fit in i64")
    return value


def pack_traces(traces: Sequence[Trace]) -> FlatTraces:
    """Encode parsed traces into columns.

    O(total hops); one pass, no intermediate objects beyond the column
    arrays.  Raises :class:`FlatEncodeError` when a field falls outside
    the binary ranges (u32 addresses, i64 TTL/flow) — callers degrade
    to the object path.
    """
    monitor_off = array(U32, [0])
    monitor_parts: List[bytes] = []
    monitors_len = 0
    dst = array(U32)
    flow = array(I64)
    hop_start = array(U32, [0])
    hop_flags = array(U8)
    hop_addr = array(U32)
    hop_quoted = array(I64)
    hop_rtt = array(F64)
    n_hops = 0
    for trace in traces:
        encoded = trace.monitor.encode("utf-8")
        monitors_len += len(encoded)
        _check_u32(monitors_len, "monitor offset")
        monitor_parts.append(encoded)
        monitor_off.append(monitors_len)
        dst.append(_check_u32(trace.dst, "destination address"))
        flow.append(_check_i64(trace.flow_id, "flow id"))
        for hop in trace.hops:
            if hop.address is None:
                hop_flags.append(0)
                hop_addr.append(0)
            else:
                hop_flags.append(_RESPONDED)
                hop_addr.append(_check_u32(hop.address, "hop address"))
            hop_quoted.append(_check_i64(hop.quoted_ttl, "quoted TTL"))
            hop_rtt.append(float(hop.rtt_ms))
        n_hops += len(trace.hops)
        _check_u32(n_hops, "hop count")
        hop_start.append(n_hops)
    return FlatTraces(
        monitor_off=monitor_off,
        monitors=b"".join(monitor_parts),
        dst=dst,
        flow=flow,
        hop_start=hop_start,
        hop_flags=hop_flags,
        hop_addr=hop_addr,
        hop_quoted=hop_quoted,
        hop_rtt=hop_rtt,
    )


def unpack_traces(
    flat: FlatTraces, start: int = 0, end: Optional[int] = None
) -> List[Trace]:
    """Materialize ``flat[start:end]`` back into :class:`Trace` objects.

    O(hops in range).  The inverse of :func:`pack_traces`: the returned
    traces compare equal to the originals field-for-field (floats are
    stored as IEEE doubles, so RTTs round-trip bit-exactly).
    """
    if end is None:
        end = len(flat)
    monitor_off, monitors = flat.monitor_off, flat.monitors
    dst, flow, hop_start = flat.dst, flat.flow, flat.hop_start
    flags, addr, quoted, rtt = (
        flat.hop_flags,
        flat.hop_addr,
        flat.hop_quoted,
        flat.hop_rtt,
    )
    traces: List[Trace] = []
    for index in range(start, end):
        monitor = monitors[monitor_off[index]:monitor_off[index + 1]].decode("utf-8")
        first, last = hop_start[index], hop_start[index + 1]
        hops = tuple(
            Hop(
                addr[i] if flags[i] & _RESPONDED else None,
                quoted[i],
                rtt[i],
            )
            for i in range(first, last)
        )
        traces.append(Trace(monitor, dst[index], hops, flow[index]))
    return traces


def concat_flat_bytes(blocks: Sequence[bytes]) -> bytes:
    """Concatenate :meth:`FlatTraces.to_bytes` blocks into one block.

    Pure column splicing (array extends plus cumulative-offset fixups,
    all C-speed): the parent assembles one cache payload from per-shard
    blobs without ever materializing a trace object.  O(total bytes).
    """
    parts = [FlatTraces.from_bytes(block) for block in blocks]
    if not parts:
        return pack_traces([]).to_bytes()
    merged = parts[0]
    for part in parts[1:]:
        monitor_base = len(merged.monitors)
        hop_base = merged.hop_start[-1]
        merged.monitor_off.extend(
            monitor_base + offset for offset in part.monitor_off[1:]
        )
        merged.monitors += part.monitors
        merged.dst.extend(part.dst)
        merged.flow.extend(part.flow)
        merged.hop_start.extend(hop_base + offset for offset in part.hop_start[1:])
        merged.hop_flags.extend(part.hop_flags)
        merged.hop_addr.extend(part.hop_addr)
        merged.hop_quoted.extend(part.hop_quoted)
        merged.hop_rtt.extend(part.hop_rtt)
    return merged.to_bytes()


# ----------------------------------------------------------------------
# the flat sanitize + neighbor-set kernel


def accumulate_flat(
    flat: FlatTraces,
    start: int,
    end: int,
    forward: Dict[int, Set[int]],
    backward: Dict[int, Set[int]],
    seen: Set[int],
    universe: Set[int],
    is_special: Callable[[int], bool],
    dirty: Optional[Set[Tuple[int, bool]]] = None,
) -> Tuple[int, int, int]:
    """Sanitize and fold ``flat[start:end]`` into neighbor tables.

    The columnar twin of ``sanitize_traces`` + ``accumulate_neighbors``
    (§4.1 + §4.3), run in one pass over the hop columns without
    constructing a single :class:`Hop`:

    * responsive hops land in *universe* before any stripping (the
      other-side heuristic deliberately sees discarded traces);
    * quoted-TTL-0 hops become gaps and are counted as buggy removals
      (counted even when the trace is later discarded, exactly like the
      serial sanitizer);
    * a trace with an interface cycle (same address twice, separated by
      more than one position, over the *stripped* hops) is discarded;
    * retained adjacency folds into *forward*/*backward* with special
      addresses breaking adjacency and excluded from *seen*.

    Returns ``(retained, discarded, buggy_hops_removed)``.  O(hops in
    range); equality with the object kernel is property-tested in
    ``tests/test_perf_flat.py``.

    *dirty*, when given, collects the interface halves whose neighbor
    set actually gained a member — ``(address, FORWARD)`` when a
    forward set grew, ``(address, BACKWARD)`` when a backward set grew
    — which is exactly the structural-dirtiness input
    :meth:`repro.core.mapit.MapIt.run_incremental` needs (the serve
    daemon's dirty-region tracking, docs/SERVE.md).
    """
    hop_start = flat.hop_start
    flags, addr_column, quoted = flat.hop_flags, flat.hop_addr, flat.hop_quoted
    retained = discarded = buggy = 0
    for index in range(start, end):
        first, last = hop_start[index], hop_start[index + 1]
        addresses: List[Optional[int]] = []
        buggy_here = 0
        for i in range(first, last):
            if flags[i] & _RESPONDED:
                address = addr_column[i]
                universe.add(address)
                if quoted[i] == 0:
                    buggy_here += 1
                    addresses.append(None)
                else:
                    addresses.append(address)
            else:
                addresses.append(None)
        buggy += buggy_here
        last_position: Dict[int, int] = {}
        cycle = False
        for position, address in enumerate(addresses):
            if address is None:
                continue
            previous = last_position.get(address)
            if previous is not None and position - previous > 1:
                cycle = True
                break
            last_position[address] = position
        if cycle:
            discarded += 1
            continue
        retained += 1
        previous_address: Optional[int] = None
        for address in addresses:
            if address is None or is_special(address):
                previous_address = None
                continue
            seen.add(address)
            if previous_address is not None:
                if dirty is None:
                    forward.setdefault(previous_address, set()).add(address)
                    backward.setdefault(address, set()).add(previous_address)
                else:
                    members = forward.setdefault(previous_address, set())
                    if address not in members:
                        members.add(address)
                        dirty.add((previous_address, True))
                    members = backward.setdefault(address, set())
                    if previous_address not in members:
                        members.add(previous_address)
                        dirty.add((address, False))
            previous_address = address
    return retained, discarded, buggy


# ----------------------------------------------------------------------
# counter-bundle codec


def encode_table(table: Dict[int, Set[int]]) -> bytes:
    """Pack a neighbor table as ``[address, count, members...]*`` u32 runs.

    Keys and members are emitted sorted, so the blob is a pure function
    of the table's *contents*.  O(entries + members log members).
    """
    packed = array(U32)
    for address in sorted(table):
        members = table[address]
        packed.append(address)
        packed.append(len(members))
        packed.extend(sorted(members))
    return packed.tobytes()


def merge_table_blob(blob: bytes, into: Dict[int, Set[int]]) -> None:
    """Union an :func:`encode_table` blob into *into* (O(members)).

    Set union is commutative and associative, so merging shard blobs in
    any order produces the members a serial fold would.
    """
    packed = array(U32)
    packed.frombytes(blob)
    index, length = 0, len(packed)
    while index < length:
        address, count = packed[index], packed[index + 1]
        index += 2
        members = into.get(address)
        chunk = packed[index:index + count]
        if members is None:
            into[address] = set(chunk)
        else:
            members.update(chunk)
        index += count


def encode_addresses(addresses: Set[int]) -> bytes:
    """Pack an address set as a sorted u32 array (O(n log n))."""
    return array(U32, sorted(addresses)).tobytes()


def merge_address_blob(blob: bytes, into: Set[int]) -> None:
    """Union an :func:`encode_addresses` blob into *into* (O(n))."""
    packed = array(U32)
    packed.frombytes(blob)
    into.update(packed)


@dataclass
class FlatGraphBundle:
    """What one graph worker sends back across the fork boundary.

    Four packed buffers (forward table, backward table, seen set,
    pre-sanitize address universe) plus three ints — the whole bundle
    pickles as plain ``bytes`` (near-memcpy), which is the point:
    parsed traces never cross the boundary, only integer tallies do.
    """

    forward: bytes
    backward: bytes
    seen: bytes
    universe: bytes
    retained: int = 0
    discarded: int = 0
    buggy_hops_removed: int = 0

    @property
    def nbytes(self) -> int:
        """Payload size crossing the fork boundary, in bytes."""
        return (
            len(self.forward)
            + len(self.backward)
            + len(self.seen)
            + len(self.universe)
        )


def bundle_tables(
    forward: Dict[int, Set[int]],
    backward: Dict[int, Set[int]],
    seen: Set[int],
    universe: Set[int],
    counts: Tuple[int, int, int],
) -> FlatGraphBundle:
    """Pack one shard's accumulated tables into a transfer bundle."""
    retained, discarded, buggy = counts
    return FlatGraphBundle(
        forward=encode_table(forward),
        backward=encode_table(backward),
        seen=encode_addresses(seen),
        universe=encode_addresses(universe),
        retained=retained,
        discarded=discarded,
        buggy_hops_removed=buggy,
    )


def merge_graph_bundles(
    bundles: Sequence[FlatGraphBundle],
) -> Tuple[
    Dict[int, Set[int]], Dict[int, Set[int]], Set[int], Set[int], Tuple[int, int, int]
]:
    """Merge shard bundles into canonical tables.

    Returns ``(forward, backward, seen, universe, (retained, discarded,
    buggy))`` with both tables rebuilt in sorted-key order — the same
    canonical form the serial builder's consumers observe, so no worker
    scheduling order can leak into results.  O(total members).
    """
    forward: Dict[int, Set[int]] = {}
    backward: Dict[int, Set[int]] = {}
    seen: Set[int] = set()
    universe: Set[int] = set()
    retained = discarded = buggy = 0
    for bundle in bundles:
        merge_table_blob(bundle.forward, forward)
        merge_table_blob(bundle.backward, backward)
        merge_address_blob(bundle.seen, seen)
        merge_address_blob(bundle.universe, universe)
        retained += bundle.retained
        discarded += bundle.discarded
        buggy += bundle.buggy_hops_removed
    forward = {address: forward[address] for address in sorted(forward)}
    backward = {address: backward[address] for address in sorted(backward)}
    return forward, backward, seen, universe, (retained, discarded, buggy)


# ----------------------------------------------------------------------
# batched LPM resolution


def graph_address_universe(graph) -> Set[int]:
    """Every address an inference pass can ask the IP2AS mapper about:
    neighbor-table keys plus every neighbor-set member (O(edges))."""
    addresses: Set[int] = set()
    for table in (graph.forward, graph.backward):
        addresses.update(table)
        for members in table.values():
            addresses.update(members)
    return addresses


def resolve_origins(ip2as, addresses: Iterable[int]) -> Dict[int, int]:
    """Resolve *addresses* through the LPM layers in one sorted batch.

    Sorting groups trie walks through shared prefixes (warm node
    caches) and makes the returned dict's iteration order canonical.
    O(n log n + n · trie depth); results are exactly per-address
    :meth:`~repro.bgp.ip2as.IP2AS.asn` calls — this is an amortization,
    never a semantic change.
    """
    asn = ip2as.asn
    return {address: asn(address) for address in sorted(set(addresses))}
