"""IXP prefix and ASN datasets (PeeringDB / PCH style)."""

from repro.ixp.dataset import IXPDataset, IXPRecord

__all__ = ["IXPDataset", "IXPRecord"]
