"""IXP prefix directory, in the style of PeeringDB and PCH exports.

The paper combines IXP prefix lists from PeeringDB and Packet Clearing
House, plus IXP AS numbers that PeeringDB provides for some exchanges,
to avoid drawing point-to-point conclusions about multipoint IXP LANs.
The data is known to be "sometimes stale and incomplete"; the simulator
can deliberately withhold records to exercise that failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


@dataclass(frozen=True)
class IXPRecord:
    """One IXP LAN: its peering prefix, optional IXP ASN, and a name."""

    prefix: Prefix
    asn: Optional[int] = None
    name: str = ""

    def to_line(self) -> str:
        asn_text = str(self.asn) if self.asn is not None else "-"
        return f"{self.prefix}|{asn_text}|{self.name}"

    @classmethod
    def from_line(cls, line: str) -> "IXPRecord":
        prefix_text, asn_text, name = (line.strip().split("|", 2) + ["", ""])[:3]
        asn = None if asn_text in ("", "-") else int(asn_text)
        return cls(Prefix.parse(prefix_text), asn, name)


class IXPDataset:
    """Queryable collection of IXP LAN prefixes."""

    def __init__(self, records: Iterable[IXPRecord] = ()) -> None:
        self._trie = PrefixTrie()
        self._records: List[IXPRecord] = []
        for record in records:
            self.add(record)

    def add(self, record: IXPRecord) -> None:
        """Register one IXP LAN."""
        self._trie.insert(record.prefix, record)
        self._records.append(record)

    def add_prefix(self, prefix: Prefix, asn: Optional[int] = None, name: str = "") -> None:
        self.add(IXPRecord(prefix, asn, name))

    def covers(self, address: int) -> bool:
        """True when *address* is on a known IXP LAN."""
        return address in self._trie

    def record_for(self, address: int) -> Optional[IXPRecord]:
        """The IXP record covering *address*, or None."""
        return self._trie.lookup_value(address)

    def asn_for(self, address: int) -> Optional[int]:
        """The IXP's ASN when the directory knows it."""
        record = self._trie.lookup_value(address)
        return record.asn if record is not None else None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IXPRecord]:
        return iter(self._records)

    def dump_lines(self) -> Iterator[str]:
        """Serialize as ``prefix|asn|name`` lines."""
        for record in self._records:
            yield record.to_line()

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "IXPDataset":
        """Parse the format produced by :meth:`dump_lines`."""
        dataset = cls()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            dataset.add(IXPRecord.from_line(line))
        return dataset

    def merged_with(self, other: "IXPDataset") -> "IXPDataset":
        """Union of two directories (PeeringDB + PCH in the paper).

        Duplicate prefixes keep the first record seen that carries an
        ASN, otherwise the first record.
        """
        by_prefix = {}
        for record in list(self) + list(other):
            existing = by_prefix.get(record.prefix)
            if existing is None or (existing.asn is None and record.asn is not None):
                by_prefix[record.prefix] = record
        return IXPDataset(by_prefix.values())
