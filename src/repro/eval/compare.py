"""Fig 8 reproduction: MAP-IT against the existing approaches.

Runs the Simple heuristic, the Convention heuristic, the two ITDK-style
router-graph pipelines (MIDAR-like and kapar-like alias profiles), and
MAP-IT at f=0.5 over the same trace dataset, scoring all five against
every verification network.  Expected shape, per the paper: MAP-IT
dominates; Simple and Convention show drastically lower precision (and
Convention specifically misfires on the R&E network whose transit links
are numbered from customer space); the ITDK variants land in between on
precision and below on recall, with MIDAR-like ahead of kapar-like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.alias import AliasProfile
from repro.baselines.convention import convention_heuristic
from repro.baselines.itdk import run_itdk
from repro.baselines.simple import simple_heuristic
from repro.core import MapItConfig
from repro.eval.experiment import Experiment
from repro.eval.metrics import Score

MAPIT = "MAP-IT"
SIMPLE = "Simple"
CONVENTION = "Convention"
ITDK_MIDAR = "ITDK-MIDAR"
ITDK_KAPAR = "ITDK-Kapar"

ALL_METHODS = (MAPIT, SIMPLE, CONVENTION, ITDK_MIDAR, ITDK_KAPAR)


@dataclass
class ComparisonResult:
    """method -> network -> Score."""

    scores: Dict[str, Dict[str, Score]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for method, by_network in self.scores.items():
            for label, score in by_network.items():
                rows.append(
                    {
                        "method": method,
                        "network": label,
                        "precision": round(score.precision, 3),
                        "recall": round(score.recall, 3),
                        "TP": score.tp,
                        "FP": score.fp,
                        "FN": score.fn,
                    }
                )
        return rows


def compare_methods(
    experiment: Experiment,
    methods: tuple = ALL_METHODS,
    mapit_config: Optional[MapItConfig] = None,
    obs=None,
) -> ComparisonResult:
    """Run every requested method over the experiment's dataset.

    *obs* observes the MAP-IT run (the baselines are not instrumented).
    """
    scenario = experiment.scenario
    traces = experiment.report.traces
    result = ComparisonResult()
    for method in methods:
        if method == MAPIT:
            inferences = experiment.run_mapit(
                mapit_config or MapItConfig(f=0.5), obs=obs
            ).inferences
        elif method == SIMPLE:
            inferences = simple_heuristic(traces, scenario.ip2as)
        elif method == CONVENTION:
            inferences = convention_heuristic(
                traces, scenario.ip2as, scenario.relationships
            )
        elif method == ITDK_MIDAR:
            inferences = run_itdk(
                traces,
                scenario.network,
                scenario.ip2as,
                profile=AliasProfile.midar_like(),
                seed=scenario.config.seed,
            )
        elif method == ITDK_KAPAR:
            inferences = run_itdk(
                traces,
                scenario.network,
                scenario.ip2as,
                profile=AliasProfile.kapar_like(),
                seed=scenario.config.seed,
            )
        else:
            raise ValueError(f"unknown method {method!r}")
        result.scores[method] = experiment.score(inferences)
    return result
