"""Multi-seed aggregation of evaluation scores.

One seed is an anecdote.  This module runs the same evaluation across
several seeded worlds and reports per-network mean/min/max precision
and recall, plus a pooled (micro-averaged) score — the robustness
evidence behind EXPERIMENTS.md's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import MapItConfig
from repro.eval.experiment import prepare_experiment
from repro.eval.metrics import Score


@dataclass
class MetricSummary:
    """Mean/min/max of one metric across seeds."""

    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum

    def row(self) -> Dict[str, float]:
        return {
            "mean": round(self.mean, 3),
            "min": round(self.minimum, 3),
            "max": round(self.maximum, 3),
        }


@dataclass
class SeedAggregate:
    """Per-network metric summaries plus the pooled score."""

    precision: Dict[str, MetricSummary] = field(default_factory=dict)
    recall: Dict[str, MetricSummary] = field(default_factory=dict)
    pooled: Score = field(default_factory=Score)
    seeds: List[int] = field(default_factory=list)

    def record(self, seed: int, scores: Dict[str, Score]) -> None:
        self.seeds.append(seed)
        for label, score in scores.items():
            self.precision.setdefault(label, MetricSummary()).add(score.precision)
            self.recall.setdefault(label, MetricSummary()).add(score.recall)
            self.pooled = self.pooled.merged_with(score)

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for label in sorted(self.precision):
            rows.append(
                {
                    "network": label,
                    "precision_mean": self.precision[label].row()["mean"],
                    "precision_min": self.precision[label].row()["min"],
                    "recall_mean": self.recall[label].row()["mean"],
                    "recall_min": self.recall[label].row()["min"],
                    "seeds": len(self.seeds),
                }
            )
        rows.append(
            {
                "network": "pooled",
                "precision_mean": round(self.pooled.precision, 3),
                "precision_min": "",
                "recall_mean": round(self.pooled.recall, 3),
                "recall_min": "",
                "seeds": len(self.seeds),
            }
        )
        return rows


def aggregate_over_seeds(
    scenario_factory: Callable[[int], object],
    seeds: Sequence[int],
    config: Optional[MapItConfig] = None,
) -> SeedAggregate:
    """Run MAP-IT over one scenario per seed and aggregate the scores.

    *scenario_factory* is e.g. :func:`repro.sim.presets.paper_scenario`.
    """
    aggregate = SeedAggregate()
    for seed in seeds:
        experiment = prepare_experiment(scenario_factory(seed))
        result = experiment.run_mapit(config or MapItConfig(f=0.5))
        aggregate.record(seed, experiment.score(result.inferences))
    return aggregate
