"""Fig 6 reproduction: the impact of the *f* parameter.

Runs MAP-IT at f = 0.0, 0.1, …, 1.0 over one experiment and scores
each run against every verification network.  The paper's expected
shape: precision improves with f up to a plateau (I2 hits 100% at
f=0.5) and degrades again at f >= 0.9 where the algorithm is too
constrained to refine mappings; recall is flat at low f and collapses
at high f.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import MapItConfig
from repro.eval.experiment import Experiment
from repro.eval.metrics import Score

DEFAULT_F_VALUES = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass
class FSweepResult:
    """Per-f, per-network scores."""

    scores: Dict[float, Dict[str, Score]] = field(default_factory=dict)

    def series(self, label: str, metric: str) -> List[Tuple[float, float]]:
        """One curve of Fig 6: (f, precision|recall) for one network."""
        points: List[Tuple[float, float]] = []
        for f in sorted(self.scores):
            score = self.scores[f].get(label)
            if score is not None:
                points.append((f, getattr(score, metric)))
        return points

    def rows(self) -> List[Dict[str, object]]:
        """Flat rows for printing: one per (f, network)."""
        rows: List[Dict[str, object]] = []
        for f in sorted(self.scores):
            for label, score in self.scores[f].items():
                rows.append(
                    {
                        "f": f,
                        "network": label,
                        "precision": round(score.precision, 3),
                        "recall": round(score.recall, 3),
                        "TP": score.tp,
                        "FP": score.fp,
                        "FN": score.fn,
                    }
                )
        return rows


def sweep_f(
    experiment: Experiment,
    f_values: Iterable[float] = DEFAULT_F_VALUES,
    base_config: Optional[MapItConfig] = None,
    obs=None,
) -> FSweepResult:
    """Run the full sweep.

    *obs* (an :class:`~repro.obs.observer.Observability`) observes every
    run in the sweep; ``run.start`` events delimit the per-f segments.
    """
    base = base_config or MapItConfig()
    result = FSweepResult()
    for f in f_values:
        mapit_result = experiment.run_mapit(base.with_f(f), obs=obs)
        result.scores[f] = experiment.score(mapit_result.inferences)
    return result
