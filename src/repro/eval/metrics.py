"""Precision/recall primitives shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Score:
    """True/false positives and false negatives, with derived rates."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    #: breakdown of what went wrong, for diagnostics
    fp_reasons: Dict[str, int] = field(default_factory=dict)

    def count_fp(self, reason: str) -> None:
        self.fp += 1
        self.fp_reasons[reason] = self.fp_reasons.get(reason, 0) + 1

    @property
    def precision(self) -> float:
        """Fraction of inferences that were correct (paper section 5.2)."""
        total = self.tp + self.fp
        return self.tp / total if total else 1.0

    @property
    def recall(self) -> float:
        """Fraction of eligible ground-truth links inferred."""
        total = self.tp + self.fn
        return self.tp / total if total else 1.0

    def merged_with(self, other: "Score") -> "Score":
        reasons = dict(self.fp_reasons)
        for reason, count in other.fp_reasons.items():
            reasons[reason] = reasons.get(reason, 0) + count
        return Score(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            fp_reasons=reasons,
        )

    def row(self) -> Dict[str, float]:
        """A Table 1-style row."""
        return {
            "TP": self.tp,
            "FP": self.fp,
            "FN": self.fn,
            "Precision%": round(100.0 * self.precision, 1),
            "Recall%": round(100.0 * self.recall, 1),
        }

    def __str__(self) -> str:
        return (
            f"TP={self.tp} FP={self.fp} FN={self.fn} "
            f"P={100 * self.precision:.1f}% R={100 * self.recall:.1f}%"
        )
