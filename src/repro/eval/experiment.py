"""Shared experiment plumbing for all tables and figures.

One :class:`Experiment` prepares everything the evaluations need from a
scenario: sanitized traces, the interface graph, the Internet2-style
complete verification dataset for the R&E network, and DNS-derived
approximate datasets for the two tier-1 operators — mirroring the
paper's three verification networks (labelled I2, T1-A, T1-B here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core import MapIt, MapItConfig, MapItResult
from repro.core.results import LinkInference
from repro.eval.metrics import Score
from repro.eval.verify import (
    VerificationDataset,
    build_verification,
    score_inferences,
)
from repro.graph.neighbors import InterfaceGraph, build_interface_graph
from repro.obs.observer import Observability
from repro.sim.scenario import Scenario
from repro.traceroute.sanitize import SanitizeReport, sanitize_traces


@dataclass
class Experiment:
    """A scenario plus everything derived from it for evaluation."""

    scenario: Scenario
    report: SanitizeReport
    graph: InterfaceGraph
    seen: Set[int]
    datasets: Dict[str, VerificationDataset] = field(default_factory=dict)

    def labels(self) -> List[str]:
        return list(self.datasets)

    def new_mapit(
        self,
        config: Optional[MapItConfig] = None,
        obs: Optional[Observability] = None,
    ) -> MapIt:
        """A MAP-IT instance over this experiment's interface graph."""
        scenario = self.scenario
        return MapIt(
            self.graph,
            scenario.ip2as,
            org=scenario.as2org,
            rel=scenario.relationships,
            config=config,
            obs=obs,
        )

    def run_mapit(
        self,
        config: Optional[MapItConfig] = None,
        obs: Optional[Observability] = None,
    ) -> MapItResult:
        return self.new_mapit(config, obs=obs).run()

    def score(self, inferences: List[LinkInference]) -> Dict[str, Score]:
        """Score one inference list against every verification network."""
        return {
            label: score_inferences(
                inferences, dataset, self.scenario.as2org, self.graph
            )
            for label, dataset in self.datasets.items()
        }


def prepare_experiment(
    scenario: Scenario,
    dns_for_tier1: bool = True,
    hostname_coverage: float = 0.9,
    hostname_staleness: float = 0.02,
) -> Experiment:
    """Sanitize, build the graph, and assemble verification datasets."""
    report = sanitize_traces(scenario.traces)
    graph = build_interface_graph(report.traces, all_addresses=report.all_addresses)
    seen = set(report.retained_addresses)
    experiment = Experiment(
        scenario=scenario, report=report, graph=graph, seen=seen
    )
    address_as = scenario.ip2as.asn
    if scenario.re_asn is not None:
        experiment.datasets["I2"] = build_verification(
            scenario.ground_truth,
            scenario.re_asn,
            graph,
            seen,
            address_as,
            complete=True,
        )
    tier1s = scenario.tier1_asns[:2]
    if dns_for_tier1 and tier1s:
        # Imported here, not at module top: repro.dns itself depends on
        # repro.eval.verify, and importing it eagerly would close an
        # import cycle through this package's __init__.
        from repro.dns.naming import generate_hostnames
        from repro.dns.verification import build_dns_verification, tag_table

        hostnames = generate_hostnames(
            scenario.network,
            scenario.ground_truth,
            tier1s,
            seed=scenario.config.seed,
            coverage=hostname_coverage,
            stale_probability=hostname_staleness,
        )
        tags = tag_table(scenario.network)
        for index, asn in enumerate(tier1s):
            label = f"T1-{chr(ord('A') + index)}"
            experiment.datasets[label] = build_dns_verification(
                asn, hostnames, graph, seen, address_as, tags
            )
    else:
        for index, asn in enumerate(tier1s):
            label = f"T1-{chr(ord('A') + index)}"
            experiment.datasets[label] = build_verification(
                scenario.ground_truth, asn, graph, seen, address_as, complete=True
            )
    return experiment
