"""Dataset statistics (paper sections 4.1–4.3 and 5).

Collates the counters the paper quotes for its input data: traces
kept/discarded, address retention, the /31 fraction from the other-side
heuristic, neighbor-set size distribution, IP2AS coverage, and the
neighbor-set overlap fraction footnote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.eval.experiment import Experiment
from repro.traceroute.stats import dataset_stats


@dataclass(frozen=True)
class PipelineStats:
    """Everything the paper reports about its pipeline inputs."""

    total_traces: int
    discarded_traces: int
    discard_fraction: float
    address_retention: float
    buggy_hops_removed: int
    distinct_addresses: int
    adjacent_addresses: int
    multi_neighbor_forward: int
    multi_neighbor_backward: int
    fraction_31: float
    overlap_fraction: float
    ip2as_coverage: float

    def rows(self) -> Dict[str, object]:
        return {
            "traces (retained)": self.total_traces - self.discarded_traces,
            "traces discarded (cycles)": self.discarded_traces,
            "discard fraction [paper: 2.7%]": round(self.discard_fraction, 4),
            "address retention [paper: 89.1%]": round(self.address_retention, 4),
            "buggy quoted-TTL=0 hops removed": self.buggy_hops_removed,
            "distinct addresses": self.distinct_addresses,
            "addresses adjacent to another": self.adjacent_addresses,
            "interfaces with |N_F| > 1": self.multi_neighbor_forward,
            "interfaces with |N_B| > 1": self.multi_neighbor_backward,
            "fraction /31-addressed [paper: 40.4%]": round(self.fraction_31, 4),
            "N_F/N_B overlap fraction [paper: 0.3%]": round(self.overlap_fraction, 4),
            "IP2AS coverage [paper: 99.2%]": round(self.ip2as_coverage, 4),
        }


def pipeline_stats(experiment: Experiment) -> PipelineStats:
    """Compute all section 4.1–4.3 statistics for one experiment."""
    report = experiment.report
    graph = experiment.graph
    stats = dataset_stats(report.traces)
    multi = graph.count_multi_neighbor()
    usable = [
        address
        for address in report.retained_addresses
        if not experiment.scenario.ip2as.is_private(address)
    ]
    other_sides = graph.other_sides
    return PipelineStats(
        total_traces=report.total,
        discarded_traces=report.discarded,
        discard_fraction=report.discard_fraction,
        address_retention=report.address_retention,
        buggy_hops_removed=report.buggy_hops_removed,
        distinct_addresses=stats.distinct_addresses,
        adjacent_addresses=stats.adjacent_addresses,
        multi_neighbor_forward=multi["forward"],
        multi_neighbor_backward=multi["backward"],
        fraction_31=other_sides.fraction_31() if other_sides is not None else 0.0,
        overlap_fraction=graph.overlap_fraction(),
        ip2as_coverage=experiment.scenario.ip2as.coverage(usable),
    )
