"""Ground-truth verification (paper section 5.2).

For one verification network (Internet2, Level 3, or TeliaSonera in the
paper; any AS of the synthetic topology here) we build a verification
dataset of its inter-AS links and internal interfaces, then score a set
of link inferences against it:

* **correct (TP)** — an inference on one of a link's interfaces naming
  the right AS pair (siblings count as equal); counted once per link;
* **errors (FP)** — inferences on dataset interfaces naming the wrong
  ASes; inferences on the network's internal interfaces; in
  complete-dataset mode (Internet2-style), any inference involving the
  network on an address outside the dataset; in hostname mode
  (Level 3 / TeliaSonera-style), inferences duplicating a dataset
  link's AS pair on an interface *adjacent* to that link;
* **missing (FN)** — eligible dataset links with no matching inference,
  where eligible means the link (or its other side) appears in the
  traces and either the link is numbered from the connected AS or at
  least one address of the connected AS is seen adjacent to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.core.results import LinkInference
from repro.eval.metrics import Score
from repro.graph.neighbors import InterfaceGraph
from repro.org.as2org import AS2Org
from repro.sim.groundtruth import GroundTruth

LinkKey = Tuple[int, int]


@dataclass(frozen=True)
class LinkRecord:
    """One ground-truth inter-AS link of the verification network."""

    addresses: Tuple[int, int]
    pair: Tuple[int, int]
    owner_as: int

    @property
    def key(self) -> LinkKey:
        return self.addresses


@dataclass
class VerificationDataset:
    """Everything needed to score inferences for one network."""

    target_as: int
    #: every known link of the target (indexable by either address)
    link_by_address: Dict[int, LinkRecord] = field(default_factory=dict)
    #: links that count toward recall (visibility-qualified)
    eligible: Dict[LinkKey, LinkRecord] = field(default_factory=dict)
    #: links dropped by the adjacency qualification (paper: 4 for I2)
    excluded: int = 0
    #: the target's internal interfaces seen in the traces
    internal: Set[int] = field(default_factory=set)
    #: Internet2-style complete dataset vs hostname-derived partial one
    complete: bool = True

    def links(self) -> Set[LinkKey]:
        return {record.key for record in self.link_by_address.values()}


def build_verification(
    ground_truth: GroundTruth,
    target_as: int,
    graph: InterfaceGraph,
    seen_addresses: Set[int],
    address_as: Callable[[int], int],
    complete: bool = True,
) -> VerificationDataset:
    """Assemble the verification dataset for *target_as*.

    *seen_addresses* is every address observed in the (sanitized)
    traces; *address_as* maps an address to its BGP-announced origin
    (the "in the connected AS" test uses announced space, exactly as
    the paper's footnote 1 defines membership).
    """
    dataset = VerificationDataset(target_as=target_as, complete=complete)
    visited: Set[LinkKey] = set()
    for interface in ground_truth.border.values():
        if target_as not in interface.pair():
            continue
        key = tuple(sorted((interface.address, interface.other_address)))
        if key in visited:
            continue
        visited.add(key)
        record = LinkRecord(
            addresses=key, pair=interface.pair(), owner_as=interface.owner_as
        )
        for address in key:
            dataset.link_by_address[address] = record
        if _is_eligible(record, target_as, graph, seen_addresses, address_as):
            dataset.eligible[key] = record
        else:
            dataset.excluded += 1
    for address in ground_truth.internal:
        if (
            ground_truth.router_as.get(address) == target_as
            and address in seen_addresses
        ):
            dataset.internal.add(address)
    return dataset


def _is_eligible(
    record: LinkRecord,
    target_as: int,
    graph: InterfaceGraph,
    seen_addresses: Set[int],
    address_as: Callable[[int], int],
) -> bool:
    """The paper's two recall qualifications."""
    if not any(address in seen_addresses for address in record.addresses):
        return False
    connected = [asn for asn in record.pair if asn != target_as]
    connected_as = connected[0] if connected else target_as
    if record.owner_as == connected_as:
        return True
    for address in record.addresses:
        neighbors = graph.n_forward(address) | graph.n_backward(address)
        if any(address_as(neighbor) == connected_as for neighbor in neighbors):
            return True
    return False


def _canonical_pair(pair: Tuple[int, int], org: AS2Org) -> Tuple[int, int]:
    low, high = sorted(org.canonical(asn) for asn in pair)
    return (low, high)


def score_inferences(
    inferences: Iterable[LinkInference],
    dataset: VerificationDataset,
    org: Optional[AS2Org] = None,
    graph: Optional[InterfaceGraph] = None,
) -> Score:
    """Score *inferences* against *dataset* per section 5.2."""
    org = org or AS2Org()
    score = Score()
    target = org.canonical(dataset.target_as)
    matched: Set[LinkKey] = set()
    for inference in inferences:
        record = dataset.link_by_address.get(inference.address)
        inferred_pair = _canonical_pair(inference.pair(), org)
        if record is not None:
            if inferred_pair == _canonical_pair(record.pair, org):
                matched.add(record.key)
            else:
                score.count_fp("wrong_pair")
            continue
        if inference.address in dataset.internal:
            score.count_fp("internal")
            continue
        if target not in inferred_pair:
            continue  # does not involve the verification network
        if dataset.complete:
            # Internet2 rule: the dataset lists every link, so any
            # inference involving the network elsewhere is an error.
            score.count_fp("unlisted")
        elif graph is not None and _adjacent_duplicate(
            inference, inferred_pair, dataset, graph, org
        ):
            # Level3/TeliaSonera rule: a dataset link's AS pair inferred
            # on an interface adjacent to that link is an error.
            score.count_fp("adjacent_beyond_link")
    score.tp = len(matched)
    score.fn = sum(1 for key in dataset.eligible if key not in matched)
    return score


def _adjacent_duplicate(
    inference: LinkInference,
    inferred_pair: Tuple[int, int],
    dataset: VerificationDataset,
    graph: InterfaceGraph,
    org: AS2Org,
) -> bool:
    """Does this inference sit right next to a dataset link it copies?"""
    neighbors = graph.n_forward(inference.address) | graph.n_backward(
        inference.address
    )
    for neighbor in neighbors:
        record = dataset.link_by_address.get(neighbor)
        if record is not None and inferred_pair == _canonical_pair(record.pair, org):
            return True
    return False
