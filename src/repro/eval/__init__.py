"""Evaluation harness: the paper's verification methodology and the
machinery behind each table and figure.

* :mod:`repro.eval.metrics` - precision/recall primitives;
* :mod:`repro.eval.verify` - section 5.2 scoring against ground truth;
* :mod:`repro.eval.experiment` - shared plumbing (datasets per network);
* :mod:`repro.eval.breakdown` - Table 1 (by AS relationship);
* :mod:`repro.eval.fsweep` - Fig 6 (the *f* parameter sweep);
* :mod:`repro.eval.steps` - Fig 7 (per-step impact);
* :mod:`repro.eval.compare` - Fig 8 (baseline comparison);
* :mod:`repro.eval.stats` - the section 4.1-4.3 dataset statistics.
"""

from repro.eval.breakdown import RelationshipBreakdown, breakdown_by_relationship
from repro.eval.compare import ComparisonResult, compare_methods
from repro.eval.experiment import Experiment, prepare_experiment
from repro.eval.fsweep import FSweepResult, sweep_f
from repro.eval.metrics import Score
from repro.eval.stats import PipelineStats, pipeline_stats
from repro.eval.steps import StepImpact, step_impact
from repro.eval.verify import VerificationDataset, build_verification, score_inferences

__all__ = [
    "ComparisonResult",
    "Experiment",
    "FSweepResult",
    "PipelineStats",
    "RelationshipBreakdown",
    "Score",
    "StepImpact",
    "VerificationDataset",
    "breakdown_by_relationship",
    "build_verification",
    "compare_methods",
    "pipeline_stats",
    "prepare_experiment",
    "score_inferences",
    "step_impact",
    "sweep_f",
]
