"""Fig 7 reproduction: the impact of each algorithm step.

MAP-IT is run with checkpoint recording; every checkpoint (each stage
of the first add step, each outer iteration, the stub heuristic) is
scored against every verification network.  The paper's expected
shape: the raw direct pass is noticeably imprecise (43.8% for
Internet2), contradiction fixes and especially inverse-inference
removal lift precision above 90%, later iterations refine further, and
the stub heuristic delivers a large recall jump for the stub-heavy
networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import MapItConfig, MapItResult
from repro.eval.experiment import Experiment
from repro.eval.metrics import Score


@dataclass
class StepImpact:
    """Scores after each labelled stage."""

    stages: List[str] = field(default_factory=list)
    scores: Dict[str, Dict[str, Score]] = field(default_factory=dict)
    result: Optional[MapItResult] = None

    def series(self, label: str, metric: str) -> List[Tuple[str, float]]:
        """One network's metric across the stages, in stage order."""
        return [
            (stage, getattr(self.scores[stage][label], metric))
            for stage in self.stages
            if label in self.scores[stage]
        ]

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for stage in self.stages:
            for label, score in self.scores[stage].items():
                rows.append(
                    {
                        "stage": stage,
                        "network": label,
                        "precision": round(score.precision, 3),
                        "recall": round(score.recall, 3),
                        "TP": score.tp,
                        "FP": score.fp,
                        "FN": score.fn,
                    }
                )
        return rows


def step_impact(
    experiment: Experiment,
    config: Optional[MapItConfig] = None,
    obs=None,
) -> StepImpact:
    """Run once with checkpoints and score every stage."""
    base = config or MapItConfig()
    from dataclasses import replace

    result = experiment.run_mapit(replace(base, record_checkpoints=True), obs=obs)
    impact = StepImpact(result=result)
    for checkpoint in result.checkpoints:
        if checkpoint.label in impact.scores:
            continue
        impact.stages.append(checkpoint.label)
        confident = [
            inference
            for inference in checkpoint.inferences
            if not inference.uncertain
        ]
        impact.scores[checkpoint.label] = experiment.score(confident)
    return impact
