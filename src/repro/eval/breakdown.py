"""Table 1 reproduction: results by AS relationship type.

Every verification-network link is classified as ISP Transit, Peer, or
Stub Transit using the relationship dataset (an AS missing from it
counts as a stub, per section 5.4), and TP/FP/FN are tallied per class.
False positives are attributed to the class of the ground-truth link
they sit on when there is one, otherwise to the class implied by the
inferred AS pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.results import LinkInference
from repro.eval.metrics import Score
from repro.eval.verify import VerificationDataset, _canonical_pair
from repro.graph.neighbors import InterfaceGraph
from repro.org.as2org import AS2Org
from repro.rel.relationships import LinkType, RelationshipDataset


@dataclass
class RelationshipBreakdown:
    """Per-class scores for one verification network."""

    by_class: Dict[LinkType, Score] = field(default_factory=dict)

    def total(self) -> Score:
        total = Score()
        for score in self.by_class.values():
            total = total.merged_with(score)
        return total

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for link_type in LinkType:
            score = self.by_class.get(link_type)
            if score is None:
                continue
            row: Dict[str, object] = {"class": link_type.value}
            row.update(score.row())
            rows.append(row)
        row = {"class": "Total"}
        row.update(self.total().row())
        rows.append(row)
        return rows


def breakdown_by_relationship(
    inferences: Iterable[LinkInference],
    dataset: VerificationDataset,
    relationships: RelationshipDataset,
    org: Optional[AS2Org] = None,
    graph: Optional[InterfaceGraph] = None,
) -> RelationshipBreakdown:
    """Score like section 5.2, tallying per relationship class."""
    org = org or AS2Org()
    breakdown = RelationshipBreakdown(
        by_class={link_type: Score() for link_type in LinkType}
    )

    def classify(pair: Tuple[int, int]) -> LinkType:
        return relationships.classify_link(pair[0], pair[1], org)

    target = org.canonical(dataset.target_as)
    matched: Dict[Tuple[int, int], LinkType] = {}
    for inference in inferences:
        record = dataset.link_by_address.get(inference.address)
        inferred_pair = _canonical_pair(inference.pair(), org)
        if record is not None:
            link_class = classify(record.pair)
            if inferred_pair == _canonical_pair(record.pair, org):
                matched[record.key] = link_class
            else:
                breakdown.by_class[link_class].count_fp("wrong_pair")
            continue
        if inference.address in dataset.internal:
            breakdown.by_class[classify(inference.pair())].count_fp("internal")
            continue
        if target not in inferred_pair:
            continue
        if dataset.complete:
            breakdown.by_class[classify(inference.pair())].count_fp("unlisted")
        elif graph is not None and _adjacent_pair_duplicate(
            inference, inferred_pair, dataset, graph, org
        ):
            breakdown.by_class[classify(inference.pair())].count_fp(
                "adjacent_beyond_link"
            )
    for key, link_class in matched.items():
        breakdown.by_class[link_class].tp += 1
    for key, record in dataset.eligible.items():
        if key not in matched:
            breakdown.by_class[classify(record.pair)].fn += 1
    return breakdown


def _adjacent_pair_duplicate(
    inference: LinkInference,
    inferred_pair: Tuple[int, int],
    dataset: VerificationDataset,
    graph: InterfaceGraph,
    org: AS2Org,
) -> bool:
    neighbors = graph.n_forward(inference.address) | graph.n_backward(
        inference.address
    )
    for neighbor in neighbors:
        record = dataset.link_by_address.get(neighbor)
        if record is not None and inferred_pair == _canonical_pair(record.pair, org):
            return True
    return False
