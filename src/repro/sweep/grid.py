"""Sweep grids: canonical (preset, seed, f-value) cell expansion.

A grid is the cartesian product of three axes.  Everything downstream —
the sweep identity, the journal's plan record, cell file names, resume
bookkeeping, and the final aggregate — keys off the *canonical* form
built here: axes deduplicated and sorted, cells expanded in one fixed
order.  Two invocations that mean the same sweep (however the flags
were ordered or repeated) therefore share one identity and one journal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.sim.presets import (
    dense_config,
    paper_config,
    small_config,
    stress_config,
    stress_large_config,
    stress_smoke_config,
    tiny_config,
)

#: bump when the cell result layout or expansion order changes; old
#: journals then key to a different sweep id and are not resumed
SWEEP_VERSION = 1

#: scenario presets: simulator-built worlds (materialized to dataset
#: directories by the worlds phase when the sweep kind needs them)
SCENARIO_PRESETS = {
    "tiny": tiny_config,
    "small": small_config,
    "paper": paper_config,
    "dense": dense_config,
}

#: stress presets: closed-form worlds generated shard-by-shard
#: (:mod:`repro.sim.stress`); never materialized to disk
STRESS_PRESETS = {
    "stress-smoke": stress_smoke_config,
    "stress": stress_config,
    "stress-large": stress_large_config,
}

#: what each cell computes: ``dataset`` scores a materialized world
#: against its ground truth (stress presets fold their generated
#: shards instead); ``experiment``/``compare`` rebuild the scenario
#: in memory and run the paper's evaluation/baseline pipelines
SWEEP_KINDS = ("dataset", "experiment", "compare")


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a preset's world at one seed, run at one f."""

    preset: str
    seed: int
    f: float

    @property
    def world_id(self) -> str:
        """The world this cell runs over (shared across f-values)."""
        return f"{self.preset}-s{self.seed:04d}"

    @property
    def cell_id(self) -> str:
        """Filename-safe unique cell name, stable across resumes."""
        return f"{self.world_id}-f{self.f:g}"

    @property
    def is_stress(self) -> bool:
        return self.preset in STRESS_PRESETS


@dataclass(frozen=True)
class SweepGrid:
    """A canonicalized sweep grid (build via :meth:`build`)."""

    presets: Tuple[str, ...]
    seeds: Tuple[int, ...]
    f_values: Tuple[float, ...]
    kind: str = "dataset"

    @classmethod
    def build(
        cls,
        presets: Iterable[str],
        seeds: Iterable[int],
        f_values: Iterable[float],
        kind: str = "dataset",
    ) -> "SweepGrid":
        """Canonicalize and validate the axes.

        Deduplicates and sorts each axis (flag order and repetition
        never change the sweep identity), rejects unknown presets and
        kinds, and rejects stress presets outside ``dataset`` kind —
        the experiment/compare pipelines need the in-memory scenario
        the closed-form stress worlds deliberately do not build.
        """
        if kind not in SWEEP_KINDS:
            raise ValueError(
                f"unknown sweep kind {kind!r}; expected one of {SWEEP_KINDS}"
            )
        preset_axis = tuple(sorted(set(presets)))
        seed_axis = tuple(sorted(set(seeds)))
        f_axis = tuple(sorted(set(float(f) for f in f_values)))
        if not preset_axis or not seed_axis or not f_axis:
            raise ValueError("a sweep grid needs at least one value per axis")
        for preset in preset_axis:
            if preset not in SCENARIO_PRESETS and preset not in STRESS_PRESETS:
                known = sorted(SCENARIO_PRESETS) + sorted(STRESS_PRESETS)
                raise ValueError(
                    f"unknown preset {preset!r}; expected one of {known}"
                )
            if preset in STRESS_PRESETS and kind != "dataset":
                raise ValueError(
                    f"stress preset {preset!r} only supports the dataset "
                    "kind (experiment/compare need the in-memory scenario)"
                )
        grid = cls(preset_axis, seed_axis, f_axis, kind)
        ids = [cell.cell_id for cell in grid.cells()]
        if len(set(ids)) != len(ids):
            raise ValueError("f-values collide in cell naming; space them out")
        return grid

    def cells(self) -> List[SweepCell]:
        """Every cell, in canonical (preset, seed, f) order."""
        return [
            SweepCell(preset, seed, f)
            for preset in self.presets
            for seed in self.seeds
            for f in self.f_values
        ]

    def worlds(self) -> List[Tuple[str, int]]:
        """Every distinct (preset, seed) world, in canonical order."""
        return [(preset, seed) for preset in self.presets for seed in self.seeds]


def sweep_identity(grid: SweepGrid, base_config) -> str:
    """The sweep id for a grid and its shared engine configuration.

    16 hex chars of a sha256 over everything that determines every
    cell's bytes; *base_config* is the cell :class:`MapItConfig` with
    ``f`` pinned to 0.0 (each cell substitutes its own f), contributing
    through its canonical frozen-dataclass repr — exactly the scheme
    :func:`repro.robust.journal.run_identity` uses for single runs.
    """
    material = "\n".join(
        (
            "mapit-sweep",
            str(SWEEP_VERSION),
            grid.kind,
            ",".join(grid.presets),
            ",".join(str(seed) for seed in grid.seeds),
            ",".join(repr(f) for f in grid.f_values),
            repr(base_config),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]
