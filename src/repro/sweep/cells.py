"""Worker-side sweep execution: one task in, canonical JSON out.

Every sweep task runs inside the supervised fork pool
(:func:`repro.perf.pool.fork_map`), so what crosses the boundary is a
``List[str]``: element 0 is a *meta* record (cache hits, worker
accounting — allowed to vary between runs), elements 1..n are the cell
result documents.  A cell document is a **pure function of (preset,
seed, f, config)** — no timings, no RSS, no cache status — which is
what makes a killed-and-resumed sweep byte-identical to an
uninterrupted one: however a cell's bytes were produced (fresh world or
reused, cache cold or warm, pooled or inline), they are the same bytes.

Task shapes by sweep kind:

* ``dataset`` — one task per cell.  Scenario presets load their
  materialized world through the ``.mapitc`` cache and score against
  ground truth per the manifest's verification ASNs (the ``mapit
  evaluate`` pipeline); stress presets fold their generated shard
  stream (:func:`repro.perf.ingest.fold_graph_from_blocks`) and report
  the streaming accounting instead of scores.
* ``experiment`` / ``compare`` — one task per *world*, covering every
  f-value: the in-memory scenario build dominates, so cells sharing a
  world share it, and the task returns one document per f.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro import MapItConfig
from repro.perf.pool import Shard, shared_payload
from repro.sweep.grid import SCENARIO_PRESETS, STRESS_PRESETS, SweepCell

#: payload tuple: (kind, tasks, workdir, cache_dir, stub, remove_rule,
#: shard_size); a task is (preset, seed, (f, ...))
SweepTask = Tuple[str, int, Tuple[float, ...]]


def cell_config(f: float, stub: bool, remove_rule: str) -> MapItConfig:
    """The engine configuration one cell runs with."""
    return MapItConfig(f=f, enable_stub_heuristic=stub, remove_rule=remove_rule)


def canonical_cell_json(document: Dict[str, Any]) -> str:
    """The one serialization every cell file uses (byte-stable)."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def _score_json(score) -> Dict[str, Any]:
    """A Score as sorted JSON-safe fields."""
    return {
        "tp": score.tp,
        "fp": score.fp,
        "fn": score.fn,
        "precision": round(score.precision, 6),
        "recall": round(score.recall, 6),
        "fp_reasons": {
            reason: score.fp_reasons[reason]
            for reason in sorted(score.fp_reasons)
        },
    }


def _dataset_cell(
    cell: SweepCell,
    workdir: str,
    cache_dir,
    stub: bool,
    remove_rule: str,
    meta: Dict[str, Any],
) -> Dict[str, Any]:
    """Score one materialized world at one f (the evaluate pipeline)."""
    from repro.eval.verify import build_verification, score_inferences
    from repro.core.mapit import run_mapit_graph
    from repro.graph.neighbors import build_interface_graph
    from repro.io import load_bundle
    from repro.traceroute.sanitize import sanitize_traces

    world_dir = Path(workdir) / "worlds" / cell.world_id
    bundle = load_bundle(world_dir, jobs=1, cache=cache_dir)
    if bundle.health.cache_format:
        meta["cache_hits"] += 1
    else:
        meta["cache_misses"] += 1
    report = sanitize_traces(bundle.traces)
    graph = build_interface_graph(
        report.traces, all_addresses=report.all_addresses
    )
    result = run_mapit_graph(
        graph,
        bundle.ip2as,
        org=bundle.as2org,
        rel=bundle.relationships,
        config=cell_config(cell.f, stub, remove_rule),
    )
    retained = set(report.retained_addresses)
    scores: Dict[str, Any] = {}
    for asn in bundle.manifest.get("verification_asns") or []:
        dataset = build_verification(
            bundle.ground_truth, asn, graph, retained, bundle.ip2as.asn
        )
        scores[f"AS{asn}"] = _score_json(
            score_inferences(result.inferences, dataset, bundle.as2org, graph)
        )
    return {
        "cell": cell.cell_id,
        "kind": "dataset",
        "preset": cell.preset,
        "seed": cell.seed,
        "f": cell.f,
        "scores": scores,
        "result": result.summary(),
    }


def _stress_cell(
    cell: SweepCell,
    shard_size,
    stub: bool,
    remove_rule: str,
    meta: Dict[str, Any],
) -> Dict[str, Any]:
    """Fold one generated stress world at one f, shard by shard."""
    from repro.core.mapit import run_mapit_graph
    from repro.perf.ingest import fold_graph_from_blocks
    from repro.sim.stress import (
        stress_blocks,
        stress_ip2as,
        stress_org,
        stress_relationships,
    )

    config = STRESS_PRESETS[cell.preset](cell.seed)
    if shard_size is not None:
        config = replace(config, shard_size=shard_size)
    graph, stats = fold_graph_from_blocks(stress_blocks(config))
    result = run_mapit_graph(
        graph,
        stress_ip2as(config),
        org=stress_org(config),
        rel=stress_relationships(config),
        config=cell_config(cell.f, stub, remove_rule),
    )
    meta["stress_shards"] += stats.shards
    meta["stress_stream_bytes"] += stats.stream_bytes
    meta["stress_peak_block_bytes"] = max(
        meta["stress_peak_block_bytes"], stats.peak_block_bytes
    )
    return {
        "cell": cell.cell_id,
        "kind": "stress",
        "preset": cell.preset,
        "seed": cell.seed,
        "f": cell.f,
        "world": {"ases": config.as_count, "monitors": config.monitor_count},
        "stream": {
            "shards": stats.shards,
            "traces": stats.traces,
            "retained": stats.retained,
            "discarded": stats.discarded,
            "stream_bytes": stats.stream_bytes,
            "peak_block_bytes": stats.peak_block_bytes,
        },
        "result": result.summary(),
    }


def _experiment_cells(
    kind: str,
    preset: str,
    seed: int,
    f_values: Tuple[float, ...],
    stub: bool,
    remove_rule: str,
) -> List[Dict[str, Any]]:
    """Run every f over one in-memory world (experiment/compare kinds)."""
    from repro.eval.experiment import prepare_experiment
    from repro.sim.scenario import build_scenario

    scenario = build_scenario(SCENARIO_PRESETS[preset](seed))
    experiment = prepare_experiment(scenario)
    documents: List[Dict[str, Any]] = []
    for f in f_values:
        cell = SweepCell(preset, seed, f)
        config = cell_config(f, stub, remove_rule)
        document: Dict[str, Any] = {
            "cell": cell.cell_id,
            "kind": kind,
            "preset": preset,
            "seed": seed,
            "f": f,
        }
        if kind == "experiment":
            result = experiment.run_mapit(config)
            document["scores"] = {
                label: _score_json(score)
                for label, score in experiment.score(result.inferences).items()
            }
            document["result"] = result.summary()
        else:
            from repro.eval.compare import compare_methods

            comparison = compare_methods(experiment, mapit_config=config)
            document["methods"] = {
                method: {
                    label: _score_json(score)
                    for label, score in by_network.items()
                }
                for method, by_network in comparison.scores.items()
            }
        documents.append(document)
    return documents


def cell_worker(shard: Shard) -> List[str]:
    """Run the sweep tasks in *shard* (worker process).

    Returns the meta record followed by one canonical cell document per
    (task, f); the orchestrator's ``on_result`` callback persists each
    document as it lands.
    """
    kind, tasks, workdir, cache_dir, stub, remove_rule, shard_size = (
        shared_payload()
    )
    start, end = shard
    meta: Dict[str, Any] = {
        "tasks": end - start,
        "cache_hits": 0,
        "cache_misses": 0,
        "stress_shards": 0,
        "stress_stream_bytes": 0,
        "stress_peak_block_bytes": 0,
    }
    documents: List[Dict[str, Any]] = []
    for preset, seed, f_values in tasks[start:end]:
        if kind in ("experiment", "compare"):
            documents.extend(
                _experiment_cells(kind, preset, seed, f_values, stub, remove_rule)
            )
            continue
        for f in f_values:
            cell = SweepCell(preset, seed, f)
            if cell.is_stress:
                documents.append(
                    _stress_cell(cell, shard_size, stub, remove_rule, meta)
                )
            else:
                documents.append(
                    _dataset_cell(
                        cell, workdir, cache_dir, stub, remove_rule, meta
                    )
                )
    encoded = [json.dumps(meta, sort_keys=True)]
    encoded.extend(canonical_cell_json(document) for document in documents)
    return encoded


def world_worker(shard: Shard) -> List[str]:
    """Materialize the worlds in *shard* as dataset directories.

    The manifest is written last and atomically, so a directory with a
    manifest is complete — a killed build leaves no manifest and the
    resume rebuilds it.  Returns the built world ids.
    """
    from repro.io import save_scenario
    from repro.sim.scenario import build_scenario

    tasks, workdir = shared_payload()
    start, end = shard
    built: List[str] = []
    for preset, seed in tasks[start:end]:
        world_id = f"{preset}-s{seed:04d}"
        directory = Path(workdir) / "worlds" / world_id
        scenario = build_scenario(SCENARIO_PRESETS[preset](seed))
        save_scenario(scenario, directory)
        built.append(world_id)
    return built
