"""Multi-world sweep orchestration (``mapit sweep``).

A sweep fans a grid of (preset, seed, f-value) cells across the
supervised process pool, checkpointing each completed cell in the run
journal and writing one canonical JSON result file per cell — so a
killed sweep resumes from its last durable cell and lands byte-identical
to an uninterrupted run (docs/CLI.md, docs/PERFORMANCE.md).
"""

from repro.sweep.grid import (
    SCENARIO_PRESETS,
    STRESS_PRESETS,
    SWEEP_KINDS,
    SweepCell,
    SweepGrid,
    sweep_identity,
)
from repro.sweep.orchestrator import SweepMismatchError, SweepPlan, run_sweep

__all__ = [
    "SCENARIO_PRESETS",
    "STRESS_PRESETS",
    "SWEEP_KINDS",
    "SweepCell",
    "SweepGrid",
    "SweepMismatchError",
    "SweepPlan",
    "run_sweep",
    "sweep_identity",
]
