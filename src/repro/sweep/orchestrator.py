"""The sweep orchestrator: plan, fan out, checkpoint, aggregate.

One :func:`run_sweep` call drives a whole grid:

1. **Identity.**  The sweep id is a sha256 prefix over the canonical
   grid and base config (:func:`repro.sweep.grid.sweep_identity`); a
   ``--resume`` id that does not match fails loudly with every
   differing field named (:class:`SweepMismatchError`) — the recorded
   plan is read back from the journal of the id the caller gave.
2. **Worlds.**  Dataset-kind scenario cells need materialized worlds;
   missing ones are built across the pool (one task per world,
   manifest-last so a killed build is detectably incomplete), existing
   ones are reused.
3. **Cells.**  Tasks fan across :func:`repro.perf.pool.fork_map` under
   the supervisor, one shard per task.  The ``on_result`` hook makes
   every cell durable the moment it lands: the canonical document is
   written atomically to ``out/cells/<cell_id>.json`` and a ``cell``
   unit (id + content sha256) is appended to the journal.  A resumed
   sweep skips every journaled cell whose file still verifies.
4. **Aggregate.**  Cell files are re-read in canonical grid order and
   combined into ``out/sweep.json`` — reading files rather than
   in-memory results makes the fresh and resumed paths literally the
   same code over the same bytes.

Peak-RSS accounting (``sweep.rss.*``) reads ``ru_maxrss`` at start and
end of the parent process: with ``--jobs 1`` the stress fold runs
inline, so the gauge bounds the streamed fold's parent residency.
"""

from __future__ import annotations

import hashlib
import json
import resource
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import MapItConfig
from repro.io.atomic import atomic_write_bytes
from repro.obs.observer import NULL_OBS, Observability
from repro.perf.pool import fork_map
from repro.robust.journal import RunJournal
from repro.sweep.cells import cell_worker, world_worker
from repro.sweep.grid import (
    SWEEP_VERSION,
    SweepCell,
    SweepGrid,
    sweep_identity,
)


class SweepMismatchError(ValueError):
    """``--resume`` was given an id recorded for a different sweep."""


@dataclass
class SweepPlan:
    """Everything one sweep invocation needs, resolved."""

    grid: SweepGrid
    workdir: Path
    out_dir: Path
    journal_dir: Path
    cache_dir: Optional[Path] = None
    jobs: int = 1
    shard_timeout: Optional[float] = None
    #: stress generator block size override (None = preset default)
    shard_size: Optional[int] = None
    enable_stub_heuristic: bool = True
    remove_rule: str = "majority"
    #: sweep id to resume, or None for a fresh run
    resume: Optional[str] = None

    @property
    def base_config(self) -> MapItConfig:
        """The shared engine config with f pinned (cells substitute)."""
        return MapItConfig(
            f=0.0,
            enable_stub_heuristic=self.enable_stub_heuristic,
            remove_rule=self.remove_rule,
        )


@dataclass
class SweepOutcome:
    """What :func:`run_sweep` hands back to the CLI."""

    sweep_id: str
    out_dir: Path
    completed: int = 0
    skipped: int = 0
    worlds_built: int = 0
    worlds_reused: int = 0
    rows: List[Dict[str, Any]] = field(default_factory=list)


def _rss_kb() -> int:
    """The process's lifetime peak RSS in KB (Linux ``ru_maxrss``)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _plan_payload(plan: SweepPlan) -> Dict[str, Any]:
    """The journaled plan record: the fields identity is made of."""
    return {
        "version": SWEEP_VERSION,
        "kind": plan.grid.kind,
        "presets": list(plan.grid.presets),
        "seeds": list(plan.grid.seeds),
        "f_values": list(plan.grid.f_values),
        "config": repr(plan.base_config),
    }


def _check_resume_identity(plan: SweepPlan, sweep_id: str) -> None:
    """Fail loudly when ``--resume`` names a different sweep.

    Reads the plan record the *given* id journaled and names every
    field that differs from the current invocation, so the error says
    what changed instead of silently restarting (or, worse, silently
    continuing with mixed results).
    """
    if plan.resume == sweep_id:
        return
    recorded_plans = RunJournal(plan.journal_dir, plan.resume).units("plan")
    if not recorded_plans:
        raise SweepMismatchError(
            f"--resume {plan.resume}: unknown sweep id (no journaled plan "
            f"in {plan.journal_dir}; this invocation is sweep {sweep_id})"
        )
    recorded = recorded_plans[-1]
    current = _plan_payload(plan)
    differences = [
        f"{key}: recorded {recorded.get(key)!r} != requested {current[key]!r}"
        for key in current
        if recorded.get(key) != current[key]
    ]
    detail = "; ".join(differences) if differences else "sweep version/layout"
    raise SweepMismatchError(
        f"--resume {plan.resume} does not match this grid and "
        f"configuration (expected sweep id {sweep_id}): {detail}"
    )


def _verified_cells(
    journal: RunJournal, cells_dir: Path
) -> Dict[str, str]:
    """cell_id -> sha256 for journaled cells whose files still verify."""
    verified: Dict[str, str] = {}
    for payload in journal.units("cell"):
        cell_id = payload.get("cell")
        sha = payload.get("sha256")
        if not cell_id or not sha:
            continue
        try:
            data = (cells_dir / f"{cell_id}.json").read_bytes()
        except OSError:
            continue
        if hashlib.sha256(data).hexdigest() == sha:
            verified[cell_id] = sha
    return verified


def _build_worlds(
    plan: SweepPlan,
    journal: RunJournal,
    outcome: SweepOutcome,
    obs: Observability,
) -> None:
    """Materialize missing scenario worlds (dataset kind only)."""
    if plan.grid.kind != "dataset":
        return
    needed = [
        (preset, seed)
        for preset, seed in plan.grid.worlds()
        if not SweepCell(preset, seed, 0.0).is_stress
    ]
    missing: List[Tuple[str, int]] = []
    for preset, seed in needed:
        world_dir = plan.workdir / "worlds" / f"{preset}-s{seed:04d}"
        if (world_dir / "manifest.json").exists():
            outcome.worlds_reused += 1
            obs.inc("sweep.worlds.reused")
        else:
            missing.append((preset, seed))
    if not missing:
        return

    def on_world(index: int, built: List[str]) -> None:
        for world_id in built:
            journal.append("world", {"world": world_id})
            outcome.worlds_built += 1
            obs.inc("sweep.worlds.built")
            if obs.enabled:
                obs.event("sweep.world", world=world_id)

    with obs.span("sweep.worlds"):
        fork_map(
            world_worker,
            (missing, str(plan.workdir)),
            len(missing),
            plan.jobs,
            shards=[(index, index + 1) for index in range(len(missing))],
            timeout=plan.shard_timeout,
            obs=obs,
            on_result=on_world,
        )


def _cell_tasks(
    plan: SweepPlan, pending: List[SweepCell]
) -> List[Tuple[str, int, Tuple[float, ...]]]:
    """Group pending cells into dispatch tasks.

    Dataset-kind cells dispatch individually (per-cell durability at
    its finest); experiment/compare cells group by world, because the
    in-memory scenario build dominates and is shared across f-values.
    """
    if plan.grid.kind == "dataset":
        return [(cell.preset, cell.seed, (cell.f,)) for cell in pending]
    grouped: Dict[Tuple[str, int], List[float]] = {}
    for cell in pending:
        grouped.setdefault((cell.preset, cell.seed), []).append(cell.f)
    return [
        (preset, seed, tuple(sorted(f_values)))
        for (preset, seed), f_values in sorted(grouped.items())
    ]


def run_sweep(plan: SweepPlan, obs: Observability = NULL_OBS) -> SweepOutcome:
    """Run (or resume) one sweep; see the module docstring for the flow."""
    sweep_id = sweep_identity(plan.grid, plan.base_config)
    if plan.resume:
        _check_resume_identity(plan, sweep_id)
    journal = RunJournal(plan.journal_dir, sweep_id, obs=obs)
    cells_dir = plan.out_dir / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)
    # A SIGKILL between atomic_write_bytes' write and rename strands a
    # `<cell>.json.tmp.<pid>` alongside the cells; sweep them so a
    # resumed run's output directory byte-matches an uninterrupted one.
    for stale in sorted(cells_dir.glob("*.json.tmp.*")):
        try:
            stale.unlink()
        except OSError:
            pass

    rss_start = _rss_kb()
    obs.gauge("sweep.rss.start_kb", rss_start)
    all_cells = plan.grid.cells()
    obs.gauge("sweep.cells.total", len(all_cells))

    done: Dict[str, str] = {}
    if plan.resume:
        done = _verified_cells(journal, cells_dir)
        if obs.enabled:
            obs.event(
                "sweep.resume", sweep_id=sweep_id, verified_cells=len(done)
            )
    else:
        # A fresh run owns its journal: drop any stale file so sequence
        # numbers start dense at zero.
        try:
            journal.path.unlink()
        except OSError:
            pass
        journal.append("plan", _plan_payload(plan))
    if obs.enabled:
        obs.event(
            "sweep.start",
            sweep_id=sweep_id,
            kind=plan.grid.kind,
            cells=len(all_cells),
            resumed=bool(plan.resume),
        )

    outcome = SweepOutcome(sweep_id=sweep_id, out_dir=plan.out_dir)
    outcome.skipped = len(done)
    for _ in range(len(done)):
        obs.inc("sweep.cells.skipped")

    _build_worlds(plan, journal, outcome, obs)

    pending = [cell for cell in all_cells if cell.cell_id not in done]
    tasks = _cell_tasks(plan, pending)

    stress_peak_block = 0

    def on_cells(index: int, encoded: List[str]) -> None:
        nonlocal stress_peak_block
        meta = json.loads(encoded[0])
        obs.inc("sweep.cache.hits", meta.get("cache_hits", 0))
        obs.inc("sweep.cache.misses", meta.get("cache_misses", 0))
        obs.inc("sweep.stress.shards", meta.get("stress_shards", 0))
        obs.inc(
            "sweep.stress.stream_bytes", meta.get("stress_stream_bytes", 0)
        )
        stress_peak_block = max(
            stress_peak_block, meta.get("stress_peak_block_bytes", 0)
        )
        for document_text in encoded[1:]:
            cell_id = json.loads(document_text)["cell"]
            data = document_text.encode()
            atomic_write_bytes(cells_dir / f"{cell_id}.json", data)
            sha = hashlib.sha256(data).hexdigest()
            journal.append("cell", {"cell": cell_id, "sha256": sha})
            outcome.completed += 1
            obs.inc("sweep.cells.completed")
            if obs.enabled:
                obs.event("sweep.cell", cell=cell_id, sha256=sha)

    if tasks:
        with obs.span("sweep.cells"):
            fork_map(
                cell_worker,
                (
                    plan.grid.kind,
                    tasks,
                    str(plan.workdir),
                    str(plan.cache_dir) if plan.cache_dir else None,
                    plan.enable_stub_heuristic,
                    plan.remove_rule,
                    plan.shard_size,
                ),
                len(tasks),
                plan.jobs,
                shards=[(index, index + 1) for index in range(len(tasks))],
                timeout=plan.shard_timeout,
                obs=obs,
                on_result=on_cells,
            )

    # Aggregate from the files, in canonical order: the fresh and the
    # resumed path both read the same bytes back.
    documents: List[Dict[str, Any]] = []
    for cell in all_cells:
        path = cells_dir / f"{cell.cell_id}.json"
        documents.append(json.loads(path.read_text()))
        if plan.grid.kind == "dataset" and cell.is_stress:
            stream = documents[-1].get("stream", {})
            stress_peak_block = max(
                stress_peak_block, stream.get("peak_block_bytes", 0)
            )
    aggregate = {
        "sweep_id": sweep_id,
        "version": SWEEP_VERSION,
        "kind": plan.grid.kind,
        "grid": {
            "presets": list(plan.grid.presets),
            "seeds": list(plan.grid.seeds),
            "f_values": list(plan.grid.f_values),
        },
        "cells": documents,
    }
    atomic_write_bytes(
        plan.out_dir / "sweep.json",
        (json.dumps(aggregate, sort_keys=True, indent=2) + "\n").encode(),
    )
    journal.append("done", {"cells": len(documents)})

    if stress_peak_block:
        obs.gauge("sweep.stress.peak_block_bytes", stress_peak_block)
    rss_peak = _rss_kb()
    obs.gauge("sweep.rss.peak_kb", rss_peak)
    if obs.enabled:
        obs.event(
            "sweep.done",
            sweep_id=sweep_id,
            completed=outcome.completed,
            skipped=outcome.skipped,
            rss_start_kb=rss_start,
            rss_peak_kb=rss_peak,
        )
    outcome.rows = [_summary_row(document) for document in documents]
    return outcome


def _summary_row(document: Dict[str, Any]) -> Dict[str, Any]:
    """One human-readable table row per cell for the CLI."""
    row: Dict[str, Any] = {
        "cell": document["cell"],
        "kind": document["kind"],
        "f": document["f"],
    }
    scores = document.get("scores")
    if scores is None and document.get("methods"):
        scores = document["methods"].get("MAP-IT") or next(
            iter(document["methods"].values()), None
        )
    if scores:
        tp = sum(score["tp"] for score in scores.values())
        fp = sum(score["fp"] for score in scores.values())
        fn = sum(score["fn"] for score in scores.values())
        row["TP"] = tp
        row["FP"] = fp
        row["FN"] = fn
        row["precision"] = round(tp / (tp + fp), 3) if tp + fp else 1.0
        row["recall"] = round(tp / (tp + fn), 3) if tp + fn else 1.0
    stream = document.get("stream")
    if stream:
        row["traces"] = stream["traces"]
        row["shards"] = stream["shards"]
        row["stream_mb"] = round(stream["stream_bytes"] / 1e6, 1)
    summary = document.get("result")
    if summary:
        row["inferences"] = summary["inferences"]
    return row
