"""Trace sanitization (paper section 4.1).

Two steps, exactly as described:

1. *Remove* every hop whose ICMP response quoted TTL=0 — the signature
   of buggy routers that forward TTL=1 packets instead of replying,
   which manufactures false adjacencies.  The rest of the trace is
   retained, with the removed hop replaced by a gap (null hop) so the
   addresses around it are not made adjacent.
2. *Discard* any trace containing an interface cycle — the same address
   appearing twice separated by at least one other hop (including gaps)
   — the signature of per-packet load balancing or a transient routing
   change.  An address appearing twice in a row is not a cycle.

The paper reports discarding 2.7% of traces while retaining 89.1% of
distinct addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.traceroute.model import Hop, Trace


def strip_buggy_hops(trace: Trace) -> Trace:
    """Replace quoted-TTL=0 hops with gaps (step 1)."""
    if not any(hop.responded and hop.quoted_ttl == 0 for hop in trace.hops):
        return trace
    hops = tuple(
        Hop(None) if (hop.responded and hop.quoted_ttl == 0) else hop
        for hop in trace.hops
    )
    return trace.replace_hops(hops)


def find_cycle(trace: Trace) -> Optional[int]:
    """Return the address of the first interface cycle, or None.

    A cycle is the same address appearing twice separated by at least
    one other hop position (responsive or not); immediate repetition of
    an address is tolerated, per Viger et al.'s definition used by the
    paper.
    """
    last_position = {}
    for position, hop in enumerate(trace.hops):
        if hop.address is None:
            continue
        previous = last_position.get(hop.address)
        if previous is not None and position - previous > 1:
            return hop.address
        last_position[hop.address] = position
    return None


@dataclass
class SanitizeReport:
    """Outcome of sanitizing a dataset.

    ``traces`` are the retained, cleaned traces.  ``all_addresses``
    includes addresses from discarded traces too — section 4.2's
    other-side heuristic deliberately uses them.
    """

    traces: List[Trace] = field(default_factory=list)
    discarded: int = 0
    buggy_hops_removed: int = 0
    all_addresses: Set[int] = field(default_factory=set)
    retained_addresses: Set[int] = field(default_factory=set)

    @property
    def total(self) -> int:
        return len(self.traces) + self.discarded

    @property
    def discard_fraction(self) -> float:
        """Fraction of traces discarded (paper: 2.7%)."""
        return self.discarded / self.total if self.total else 0.0

    @property
    def address_retention(self) -> float:
        """Fraction of distinct addresses retained (paper: 89.1%)."""
        if not self.all_addresses:
            return 0.0
        return len(self.retained_addresses) / len(self.all_addresses)


def sanitize_traces(traces: Iterable[Trace]) -> SanitizeReport:
    """Apply both sanitization steps to a dataset."""
    report = SanitizeReport()
    for trace in traces:
        for hop in trace.hops:
            if hop.address is not None:
                report.all_addresses.add(hop.address)
        cleaned = strip_buggy_hops(trace)
        if cleaned is not trace:
            removed = sum(
                1
                for original, replaced in zip(trace.hops, cleaned.hops)
                if original.responded and not replaced.responded
            )
            report.buggy_hops_removed += removed
        if find_cycle(cleaned) is not None:
            report.discarded += 1
            continue
        report.traces.append(cleaned)
        for hop in cleaned.hops:
            if hop.address is not None:
                report.retained_addresses.add(hop.address)
    return report
