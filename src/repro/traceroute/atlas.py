"""RIPE Atlas traceroute result ingestion.

Parses the JSON produced by RIPE Atlas traceroute measurements (one
measurement object per line or a JSON array), the other large public
traceroute corpus besides CAIDA ARK.  Only the fields MAP-IT needs are
consumed: per-hop responding addresses in probe order.  Multiple
responses for one hop (Atlas sends three probes per TTL) are reduced
to the first responding address, matching Paris-traceroute flow
stability; a hop whose responses disagree is a load-balancing artifact
the sanitizer will judge.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, Optional, Union

from repro.net.ipv4 import is_valid_address, parse_address
from repro.traceroute.model import Hop, Trace


def _hop_from_result(hop_record: dict) -> Hop:
    """Reduce one Atlas hop record (possibly 3 probe results) to a Hop."""
    probes = hop_record.get("result", ())
    if not isinstance(probes, (list, tuple)):
        return Hop(None)
    for probe in probes:
        if not isinstance(probe, dict):
            continue
        address_text = probe.get("from")
        if not address_text or not isinstance(address_text, str) or "x" in probe:
            continue  # timeout entries look like {"x": "*"}
        if not is_valid_address(address_text):
            continue  # IPv6 or malformed: out of scope
        # Atlas emits explicit nulls ("rtt": null, "ittl": null) for
        # fields it could not measure; treat them exactly like absent.
        ttl = probe.get("ittl")
        if ttl is None:
            ttl = 1
        rtt = probe.get("rtt")
        if rtt is None:
            rtt = 0.0
        try:
            return Hop(
                parse_address(address_text), quoted_ttl=int(ttl), rtt_ms=float(rtt)
            )
        except (TypeError, ValueError):
            continue  # non-numeric ttl/rtt: treat this probe as unusable
    return Hop(None)


def parse_atlas_measurement(record: dict) -> Optional[Trace]:
    """Convert one Atlas traceroute measurement object to a Trace.

    Returns None for non-IPv4 measurements or records without results.
    """
    if record.get("af") not in (None, 4):
        return None
    dst_text = record.get("dst_addr") or record.get("dst_name")
    if not dst_text or not is_valid_address(dst_text):
        return None
    hop_records = record.get("result")
    if not hop_records or not isinstance(hop_records, (list, tuple)):
        return None
    ordered = sorted(
        (
            entry
            for entry in hop_records
            if isinstance(entry, dict) and isinstance(entry.get("hop"), int)
        ),
        key=lambda entry: entry["hop"],
    )
    if not ordered:
        return None
    hops: List[Hop] = []
    expected = 1
    for entry in ordered:
        # Fill unreported TTLs with gaps so adjacency stays honest.
        while expected < entry["hop"]:
            hops.append(Hop(None))
            expected += 1
        hops.append(_hop_from_result(entry))
        expected += 1
    monitor = f"prb-{record.get('prb_id', 'unknown')}"
    return Trace(monitor, parse_address(dst_text), tuple(hops))


def parse_atlas(lines_or_text: Union[str, Iterable[str]]) -> Iterator[Trace]:
    """Parse Atlas results: a JSON array or JSON-lines.

    Accepts either the raw downloaded text or an iterable of lines.
    Non-IPv4 and malformed measurements are skipped.
    """
    if isinstance(lines_or_text, str):
        text = lines_or_text.strip()
        records: Iterable[dict]
        if text.startswith("["):
            records = json.loads(text)
        else:
            records = (json.loads(line) for line in text.splitlines() if line.strip())
    else:
        records = (json.loads(line) for line in lines_or_text if line.strip())
    for record in records:
        trace = parse_atlas_measurement(record)
        if trace is not None:
            yield trace
