"""Bulk operations over trace datasets.

Month-scale collections need routine dataset surgery before analysis:
deduplication (ARK probes the same /24 repeatedly), deterministic
subsampling, splitting by vantage point, and merging cycles'
collections.  All helpers are lazy where possible and deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.traceroute.model import Trace


def path_signature(trace: Trace) -> Tuple:
    """A hashable signature of the responsive hop sequence."""
    return tuple(hop.address for hop in trace.hops)


def dedupe_traces(traces: Iterable[Trace]) -> Iterator[Trace]:
    """Drop traces whose (monitor, destination, hops) repeat exactly.

    Keeps the first occurrence; order is otherwise preserved.  Useful
    when merging overlapping collection cycles.
    """
    seen: Set[Tuple] = set()
    for trace in traces:
        key = (trace.monitor, trace.dst, path_signature(trace))
        if key not in seen:
            seen.add(key)
            yield trace


def sample_traces(
    traces: Iterable[Trace], fraction: float, salt: int = 0
) -> Iterator[Trace]:
    """Deterministically keep roughly *fraction* of the traces.

    Selection hashes (monitor, dst, flow) so the same subset comes back
    on every run — resampling a growing dataset keeps earlier picks.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    threshold = int(fraction * (1 << 32))
    for trace in traces:
        key = (trace.dst * 2654435761 + trace.flow_id * 40503 + salt) & 0xFFFFFFFF
        mixed = (key ^ (key >> 16)) * 2246822519 & 0xFFFFFFFF
        if mixed < threshold:
            yield trace


def by_monitor(traces: Iterable[Trace]) -> Dict[str, List[Trace]]:
    """Group traces by vantage point."""
    grouped: Dict[str, List[Trace]] = {}
    for trace in traces:
        grouped.setdefault(trace.monitor, []).append(trace)
    return grouped


def filter_traces(
    traces: Iterable[Trace],
    monitor: Optional[str] = None,
    involving: Optional[int] = None,
    min_hops: int = 0,
) -> Iterator[Trace]:
    """Select traces by vantage point, visited address, or length."""
    for trace in traces:
        if monitor is not None and trace.monitor != monitor:
            continue
        if len(trace.hops) < min_hops:
            continue
        if involving is not None and involving not in set(trace.addresses()):
            continue
        yield trace


def merge_datasets(*datasets: Iterable[Trace]) -> Iterator[Trace]:
    """Concatenate collections, deduplicating across them."""
    def chained() -> Iterator[Trace]:
        for dataset in datasets:
            yield from dataset

    return dedupe_traces(chained())
