"""Trace and hop data model.

A :class:`Trace` is the unit MAP-IT consumes: the ordered hops of one
traceroute from a monitor toward a destination.  Hops record the
responding interface address (``None`` for an unresponsive ``*`` hop)
and the TTL quoted in the ICMP time-exceeded payload, which the
sanitizer uses to drop buggy-router responses (quoted TTL of zero,
section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.net.ipv4 import format_address


@dataclass(frozen=True)
class Hop:
    """One traceroute hop.

    ``address`` is the responding interface as an int, or ``None`` when
    the hop timed out.  ``quoted_ttl`` is the TTL of the probe packet as
    quoted inside the ICMP response; well-behaved routers quote 1, and
    the buggy routers of section 4.1 (forwarding TTL=1 packets) appear
    as responses with quoted TTL 0 one hop late.  ``rtt_ms`` is kept for
    realism and dataset fidelity; the algorithm ignores it.
    """

    address: Optional[int]
    quoted_ttl: int = 1
    rtt_ms: float = 0.0

    @property
    def responded(self) -> bool:
        return self.address is not None

    def __str__(self) -> str:
        if self.address is None:
            return "*"
        return format_address(self.address)


@dataclass(frozen=True)
class Trace:
    """One traceroute: monitor, destination, and the hop sequence."""

    monitor: str
    dst: int
    hops: Tuple[Hop, ...]
    flow_id: int = 0

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self) -> Iterator[Hop]:
        return iter(self.hops)

    def addresses(self) -> Iterator[int]:
        """Addresses of responsive hops, in order."""
        for hop in self.hops:
            if hop.address is not None:
                yield hop.address

    def replace_hops(self, hops: Tuple[Hop, ...]) -> "Trace":
        """A copy of this trace with different hops."""
        return Trace(self.monitor, self.dst, hops, self.flow_id)

    def __str__(self) -> str:
        path = " ".join(str(hop) for hop in self.hops)
        return f"{self.monitor} -> {format_address(self.dst)}: {path}"
