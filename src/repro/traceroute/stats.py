"""Dataset-level statistics matching the numbers quoted in the paper.

Section 5 reports: total traces, traces retained after cycle discard,
distinct interface addresses, and addresses seen adjacent to at least
one other address.  Section 4.3 reports how many interfaces have
forward/backward neighbor sets with more than one member.  These
counters let the benchmark harness print the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.traceroute.model import Trace


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics over a (sanitized) trace dataset."""

    traces: int
    distinct_addresses: int
    adjacent_addresses: int
    mean_hops: float

    def as_rows(self) -> Dict[str, float]:
        return {
            "traces": self.traces,
            "distinct_addresses": self.distinct_addresses,
            "adjacent_addresses": self.adjacent_addresses,
            "mean_hops": round(self.mean_hops, 2),
        }


def dataset_stats(traces: Iterable[Trace]) -> DatasetStats:
    """Compute dataset statistics in one pass."""
    count = 0
    hop_total = 0
    addresses: Set[int] = set()
    adjacent: Set[int] = set()
    for trace in traces:
        count += 1
        hop_total += len(trace.hops)
        previous = None
        for hop in trace.hops:
            address = hop.address
            if address is not None:
                addresses.add(address)
                if previous is not None:
                    adjacent.add(address)
                    adjacent.add(previous)
            previous = address
    return DatasetStats(
        traces=count,
        distinct_addresses=len(addresses),
        adjacent_addresses=len(adjacent),
        mean_hops=(hop_total / count) if count else 0.0,
    )
