"""Trace serialization: a compact text format and a JSON-lines format.

The text format is one trace per line::

    monitor|dst|hop hop hop ...

where each hop is ``*`` (no reply) or ``address[@quoted_ttl]``; a
quoted TTL of 1 is implied when omitted.  The JSON-lines format mirrors
scamper/warts-style output closely enough to demonstrate ingesting real
collections: one JSON object per line with ``src``, ``dst`` and a
``hops`` array of ``{"addr": ..., "probe_ttl": ..., "reply_ttl": ...,
"rtt": ...}`` objects; missing probe TTLs are treated as gaps.

Malformed records raise :class:`TraceParseError`, which carries the
line number and the offending text so resilient ingestion
(:mod:`repro.robust.ingest`) can skip, count, and quarantine bad lines
instead of aborting the whole load.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, Optional

from repro.net.ipv4 import AddressError, format_address, parse_address
from repro.traceroute.model import Hop, Trace


class TraceParseError(ValueError):
    """A trace record could not be parsed.

    ``reason`` says what was wrong, ``line_number`` is the 1-based
    position in the source (when known), and ``text`` is the offending
    raw line, so error reports can point at the exact input.
    """

    def __init__(
        self,
        reason: str,
        line_number: Optional[int] = None,
        text: Optional[str] = None,
    ) -> None:
        self.reason = reason
        self.line_number = line_number
        self.text = text
        where = f"line {line_number}: " if line_number is not None else ""
        snippet = f" in {text[:80]!r}" if text else ""
        super().__init__(f"{where}{reason}{snippet}")


def traces_to_text_lines(traces: Iterable[Trace]) -> Iterator[str]:
    """Serialize traces in the compact text format."""
    for trace in traces:
        hop_texts: List[str] = []
        for hop in trace.hops:
            if hop.address is None:
                hop_texts.append("*")
            elif hop.quoted_ttl != 1:
                hop_texts.append(f"{format_address(hop.address)}@{hop.quoted_ttl}")
            else:
                hop_texts.append(format_address(hop.address))
        yield f"{trace.monitor}|{format_address(trace.dst)}|{' '.join(hop_texts)}"


def parse_text_trace(line: str, line_number: Optional[int] = None) -> Trace:
    """Parse one non-blank line of the compact text format.

    Raises :class:`TraceParseError` for malformed input: fewer than two
    ``|`` separators, bad destination or hop addresses, or non-numeric
    quoted TTLs.
    """
    parts = line.split("|", 2)
    if len(parts) != 3:
        raise TraceParseError(
            f"expected monitor|dst|hops, got {len(parts)} field(s)",
            line_number,
            line,
        )
    monitor, dst_text, hops_text = parts
    try:
        dst = parse_address(dst_text)
    except AddressError as exc:
        raise TraceParseError(f"bad destination: {exc}", line_number, line) from exc
    hops: List[Hop] = []
    for token in hops_text.split():
        if token == "*":
            hops.append(Hop(None))
            continue
        addr_text, _, ttl_text = token.partition("@")
        try:
            quoted = int(ttl_text) if ttl_text else 1
        except ValueError as exc:
            raise TraceParseError(
                f"bad quoted TTL {ttl_text!r}", line_number, line
            ) from exc
        try:
            address = parse_address(addr_text)
        except AddressError as exc:
            raise TraceParseError(f"bad hop address: {exc}", line_number, line) from exc
        hops.append(Hop(address, quoted))
    return Trace(monitor, dst, tuple(hops))


def parse_text_traces(lines: Iterable[str]) -> Iterator[Trace]:
    """Parse the compact text format (strict: first bad line raises)."""
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_text_trace(line, line_number)


def traces_to_json_lines(traces: Iterable[Trace]) -> Iterator[str]:
    """Serialize traces in the scamper-like JSON-lines format."""
    for trace in traces:
        hops = []
        for index, hop in enumerate(trace.hops, start=1):
            if hop.address is None:
                continue
            hops.append(
                {
                    "addr": format_address(hop.address),
                    "probe_ttl": index,
                    "reply_ttl": hop.quoted_ttl,
                    "rtt": hop.rtt_ms,
                }
            )
        yield json.dumps(
            {
                "src": trace.monitor,
                "dst": format_address(trace.dst),
                "hop_count": len(trace.hops),
                "hops": hops,
            },
            separators=(",", ":"),
        )


def parse_json_trace(line: str, line_number: Optional[int] = None) -> Trace:
    """Parse one line of the scamper-like JSON-lines format.

    Raises :class:`TraceParseError` for invalid JSON, missing or null
    required fields, and malformed addresses.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceParseError(f"invalid JSON: {exc.msg}", line_number, line) from exc
    if not isinstance(record, dict):
        raise TraceParseError(
            f"expected a JSON object, got {type(record).__name__}", line_number, line
        )
    dst_text = record.get("dst")
    if not isinstance(dst_text, str):
        raise TraceParseError("missing or null 'dst'", line_number, line)
    try:
        dst = parse_address(dst_text)
    except AddressError as exc:
        raise TraceParseError(f"bad destination: {exc}", line_number, line) from exc
    replies = {}
    raw_hops = record.get("hops") or ()
    if not isinstance(raw_hops, (list, tuple)):
        raise TraceParseError("'hops' is not an array", line_number, line)
    for hop in raw_hops:
        if not isinstance(hop, dict) or not isinstance(hop.get("probe_ttl"), int):
            raise TraceParseError(
                "hop record missing integer 'probe_ttl'", line_number, line
            )
        replies[hop["probe_ttl"]] = hop
    count = record.get("hop_count") or (max(replies) if replies else 0)
    if not isinstance(count, int) or count < 0:
        raise TraceParseError(f"bad hop_count {count!r}", line_number, line)
    hops: List[Hop] = []
    for ttl in range(1, count + 1):
        reply = replies.get(ttl)
        if reply is None:
            hops.append(Hop(None))
            continue
        addr_text = reply.get("addr")
        if not isinstance(addr_text, str):
            raise TraceParseError("hop missing or null 'addr'", line_number, line)
        try:
            address = parse_address(addr_text)
        except AddressError as exc:
            raise TraceParseError(f"bad hop address: {exc}", line_number, line) from exc
        reply_ttl_raw = reply.get("reply_ttl")
        rtt_raw = reply.get("rtt")
        try:
            reply_ttl = 1 if reply_ttl_raw is None else int(reply_ttl_raw)
            rtt = 0.0 if rtt_raw is None else float(rtt_raw)
        except (TypeError, ValueError) as exc:
            raise TraceParseError(f"bad hop field: {exc}", line_number, line) from exc
        hops.append(Hop(address, reply_ttl, rtt))
    monitor = record.get("src") or ""
    if not isinstance(monitor, str):
        monitor = str(monitor)
    return Trace(monitor, dst, tuple(hops))


def parse_json_traces(lines: Iterable[str]) -> Iterator[Trace]:
    """Parse the scamper-like JSON-lines format (strict).

    Hops missing from the ``hops`` array (unresponsive probes) become
    ``*`` entries, reconstructed from the probe TTLs.
    """
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        yield parse_json_trace(line, line_number)


def trace_format_for_path(name: str) -> str:
    """Infer the trace format from a file name.

    ``*.jsonl`` is the scamper-like JSON-lines format, ``*.atlas`` /
    ``*.atlas.json`` the RIPE Atlas format, anything else the compact
    text format.  Shared by the serial ingester, the sharded parallel
    ingester, and the bundle cache so all three agree on the key.
    """
    if name.endswith(".jsonl"):
        return "jsonl"
    if ".atlas" in name:
        return "atlas"
    return "text"
