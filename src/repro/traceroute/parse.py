"""Trace serialization: a compact text format and a JSON-lines format.

The text format is one trace per line::

    monitor|dst|hop hop hop ...

where each hop is ``*`` (no reply) or ``address[@quoted_ttl]``; a
quoted TTL of 1 is implied when omitted.  The JSON-lines format mirrors
scamper/warts-style output closely enough to demonstrate ingesting real
collections: one JSON object per line with ``src``, ``dst`` and a
``hops`` array of ``{"addr": ..., "probe_ttl": ..., "reply_ttl": ...,
"rtt": ...}`` objects; missing probe TTLs are treated as gaps.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List

from repro.net.ipv4 import format_address, parse_address
from repro.traceroute.model import Hop, Trace


def traces_to_text_lines(traces: Iterable[Trace]) -> Iterator[str]:
    """Serialize traces in the compact text format."""
    for trace in traces:
        hop_texts: List[str] = []
        for hop in trace.hops:
            if hop.address is None:
                hop_texts.append("*")
            elif hop.quoted_ttl != 1:
                hop_texts.append(f"{format_address(hop.address)}@{hop.quoted_ttl}")
            else:
                hop_texts.append(format_address(hop.address))
        yield f"{trace.monitor}|{format_address(trace.dst)}|{' '.join(hop_texts)}"


def parse_text_traces(lines: Iterable[str]) -> Iterator[Trace]:
    """Parse the compact text format."""
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        monitor, dst_text, hops_text = line.split("|", 2)
        hops: List[Hop] = []
        for token in hops_text.split():
            if token == "*":
                hops.append(Hop(None))
                continue
            addr_text, _, ttl_text = token.partition("@")
            quoted = int(ttl_text) if ttl_text else 1
            hops.append(Hop(parse_address(addr_text), quoted))
        yield Trace(monitor, parse_address(dst_text), tuple(hops))


def traces_to_json_lines(traces: Iterable[Trace]) -> Iterator[str]:
    """Serialize traces in the scamper-like JSON-lines format."""
    for trace in traces:
        hops = []
        for index, hop in enumerate(trace.hops, start=1):
            if hop.address is None:
                continue
            hops.append(
                {
                    "addr": format_address(hop.address),
                    "probe_ttl": index,
                    "reply_ttl": hop.quoted_ttl,
                    "rtt": hop.rtt_ms,
                }
            )
        yield json.dumps(
            {
                "src": trace.monitor,
                "dst": format_address(trace.dst),
                "hop_count": len(trace.hops),
                "hops": hops,
            },
            separators=(",", ":"),
        )


def parse_json_traces(lines: Iterable[str]) -> Iterator[Trace]:
    """Parse the scamper-like JSON-lines format.

    Hops missing from the ``hops`` array (unresponsive probes) become
    ``*`` entries, reconstructed from the probe TTLs.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        replies = {hop["probe_ttl"]: hop for hop in record.get("hops", ())}
        count = record.get("hop_count") or (max(replies) if replies else 0)
        hops: List[Hop] = []
        for ttl in range(1, count + 1):
            reply = replies.get(ttl)
            if reply is None:
                hops.append(Hop(None))
            else:
                hops.append(
                    Hop(
                        parse_address(reply["addr"]),
                        int(reply.get("reply_ttl", 1)),
                        float(reply.get("rtt", 0.0)),
                    )
                )
        yield Trace(record.get("src", ""), parse_address(record["dst"]), tuple(hops))
