"""Traceroute trace model, parsing, and sanitization (paper section 4.1)."""

from repro.traceroute.model import Hop, Trace
from repro.traceroute.parse import (
    parse_text_traces,
    parse_json_traces,
    traces_to_json_lines,
    traces_to_text_lines,
)
from repro.traceroute.ops import (
    by_monitor,
    dedupe_traces,
    filter_traces,
    merge_datasets,
    sample_traces,
)
from repro.traceroute.sanitize import SanitizeReport, find_cycle, sanitize_traces
from repro.traceroute.stats import DatasetStats, dataset_stats

__all__ = [
    "DatasetStats",
    "Hop",
    "SanitizeReport",
    "Trace",
    "by_monitor",
    "dedupe_traces",
    "filter_traces",
    "merge_datasets",
    "sample_traces",
    "dataset_stats",
    "find_cycle",
    "parse_json_traces",
    "parse_text_traces",
    "sanitize_traces",
    "traces_to_json_lines",
    "traces_to_text_lines",
]
