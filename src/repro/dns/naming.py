"""Operator-style DNS hostnames for interfaces.

Large transit operators tag interconnection interfaces with the
connected network's name — the paper's examples are
``cogent-ic-309423-den-b1.c.telia.net`` (external) and
``ae-41-41.ebr1.berlin1.level3.net`` (internal).  We synthesize the
same two shapes for interfaces on routers of the chosen operators:

* external (inter-AS link) interfaces:
  ``<peer>-ic-<id>.edge<k>.<city>.<op>.net``
* internal interfaces: ``ae-<n>-<n>.<role><k>.<city>.<op>.net``

The paper's two noise sources are reproduced: some interfaces simply
lack hostnames (*coverage*), and some tags are stale — they name a
network the interface is no longer connected to (*stale_probability*).
Both inflate apparent false positives during verification, exactly as
section 5.1.2 warns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.sim.groundtruth import GroundTruth
from repro.sim.network import Network

_CITIES = (
    "newyork", "london", "frankfurt", "tokyo", "denver",
    "chicago", "paris", "seattle", "dallas", "vienna",
)


@dataclass
class HostnameDataset:
    """Address → hostname, like CAIDA's IPv4 DNS names dataset."""

    names: Dict[int, str] = field(default_factory=dict)

    def hostname(self, address: int) -> Optional[str]:
        return self.names.get(address)

    def __len__(self) -> int:
        return len(self.names)

    def dump_lines(self) -> Iterable[str]:
        from repro.net.ipv4 import format_address

        for address in sorted(self.names):
            yield f"{format_address(address)}\t{self.names[address]}"

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "HostnameDataset":
        from repro.net.ipv4 import parse_address

        dataset = cls()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            address_text, _, name = line.partition("\t")
            dataset.names[parse_address(address_text)] = name
        return dataset


def _peer_tag(network: Network, asn: int) -> str:
    """The short name an operator would use for a connected network."""
    node = network.as_graph.nodes.get(asn)
    return (node.name if node is not None else f"as{asn}").replace("_", "-")


def generate_hostnames(
    network: Network,
    ground_truth: GroundTruth,
    operator_asns: Iterable[int],
    seed: int = 0,
    coverage: float = 0.9,
    stale_probability: float = 0.02,
) -> HostnameDataset:
    """Synthesize hostnames for all interfaces of the given operators.

    Hostnames are generated for every interface on an operator's
    routers *and* for the far side of its inter-AS links (named by the
    neighbor's own convention), since the paper resolves both.
    """
    from repro.net.trie import PrefixTrie

    rng = random.Random(seed ^ 0xD45)
    dataset = HostnameDataset()
    operators = set(operator_asns)
    all_asns = sorted(network.as_graph.nodes)
    # Reverse DNS is delegated with the address space: whoever owns the
    # prefix names the interface, including the far side of its links.
    owner_trie = PrefixTrie()
    for prefix, asn in network.plan.all_prefixes():
        owner_trie.insert(prefix, asn)
    for address, (router_id, link_id) in sorted(network.address_owner.items()):
        space_owner = owner_trie.lookup_value(address)
        if space_owner not in operators:
            continue
        if rng.random() > coverage:
            continue
        operator = _peer_tag(network, space_owner)
        city = _CITIES[router_id % len(_CITIES)]
        border = ground_truth.border.get(address)
        if border is not None:
            # The tag names the link's other network from the space
            # owner's perspective.
            pair = border.pair()
            connected = pair[1] if pair[0] == space_owner else pair[0]
            if rng.random() < stale_probability:
                # Stale tag: the interface was re-purposed but the
                # hostname still names an old neighbor.
                connected = all_asns[(connected + 7) % len(all_asns)]
            peer = _peer_tag(network, connected)
            name = (
                f"{peer}-ic-{300000 + address % 90000}"
                f".edge{router_id % 9}.{city}.{operator}.net"
            )
        elif address in ground_truth.ixp:
            name = f"fabric-peering.{city}.{operator}.net"
        else:
            name = f"ae-{address % 60}-{address % 9}.ebr{router_id % 4}.{city}.{operator}.net"
        dataset.names[address] = name
    return dataset
