"""DNS hostname synthesis and hostname-derived verification (paper
section 5.1.2)."""

from repro.dns.naming import HostnameDataset, generate_hostnames
from repro.dns.verification import build_dns_verification, classify_hostname

__all__ = [
    "HostnameDataset",
    "build_dns_verification",
    "classify_hostname",
    "generate_hostnames",
]
