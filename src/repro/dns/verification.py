"""Hostname-derived approximate ground truth (paper section 5.1.2).

Given a hostname dataset, classify each interface of a target operator
as *external* (carries an interconnection tag naming the connected
network), *internal* (no tag, and the other side of its link has no tag
either), *fabric* (tags a switching fabric — removed, as the paper
removes 176 such interfaces), or *unknown* (uninterpretable — removed).
External interfaces plus their other sides become the verification
dataset's link records; the noise sources the paper describes (stale
tags, missing hostnames) flow straight into the scores.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.dns.naming import HostnameDataset
from repro.eval.verify import LinkRecord, VerificationDataset
from repro.graph.neighbors import InterfaceGraph

EXTERNAL_TAG = "external"
INTERNAL_TAG = "internal"
FABRIC_TAG = "fabric"
UNKNOWN_TAG = "unknown"


def classify_hostname(name: Optional[str]) -> Tuple[str, Optional[str]]:
    """Classify one hostname; returns ``(kind, peer_tag)``.

    Mirrors the paper's manual classification: ``<peer>-ic-…`` marks an
    interconnection and names the peer; ``ae-…`` is internal gear; a
    fabric tag marks a switching fabric, not a network.
    """
    if not name:
        return UNKNOWN_TAG, None
    label = name.split(".", 1)[0]
    if "-ic-" in label:
        return EXTERNAL_TAG, label.split("-ic-", 1)[0]
    if label.startswith("fabric-"):
        return FABRIC_TAG, None
    if label.startswith("ae-"):
        return INTERNAL_TAG, None
    return UNKNOWN_TAG, None


def build_dns_verification(
    target_as: int,
    hostnames: HostnameDataset,
    graph: InterfaceGraph,
    seen_addresses: Set[int],
    address_as: Callable[[int], int],
    tag_to_asn: Dict[str, int],
) -> VerificationDataset:
    """Assemble the Level3/TeliaSonera-style verification dataset.

    Candidates are the addresses announced by *target_as* that appear
    in the traces, plus their inferred other sides — exactly the
    paper's resolution set.  The dataset is marked incomplete
    (``complete=False``), so scoring applies the adjacent-duplicate
    error rule instead of the Internet2 everything-listed rule.
    """
    dataset = VerificationDataset(target_as=target_as, complete=False)
    candidates: Set[int] = set()
    for address in seen_addresses:
        if address_as(address) == target_as:
            candidates.add(address)
            other = graph.other_side(address)
            if other is not None:
                candidates.add(other)

    for address in sorted(candidates):
        kind, tag = classify_hostname(hostnames.hostname(address))
        other = graph.other_side(address)
        if kind == EXTERNAL_TAG:
            peer_asn = tag_to_asn.get(tag or "")
            if peer_asn is None:
                continue  # ambiguous tag: removed, as in the paper
            low, high = sorted((address, other if other is not None else address))
            record = LinkRecord(
                addresses=(low, high),
                pair=tuple(sorted((target_as, peer_asn))),
                owner_as=address_as(address),
            )
            for link_address in record.addresses:
                dataset.link_by_address.setdefault(link_address, record)
        elif kind == INTERNAL_TAG:
            other_kind, _ = classify_hostname(
                hostnames.hostname(other) if other is not None else None
            )
            if other_kind != EXTERNAL_TAG and address in seen_addresses:
                dataset.internal.add(address)

    # Recall qualification: the link or its other side must be seen,
    # and the connected AS must be visible next to it (or own the
    # link prefix).
    # dict.fromkeys dedups in first-seen order (a set would iterate in
    # arbitrary order and leak it into the eligible dict's ordering)
    for record in dict.fromkeys(dataset.link_by_address.values()):
        if _dns_eligible(record, target_as, graph, seen_addresses, address_as):
            dataset.eligible[record.key] = record
        else:
            dataset.excluded += 1
    return dataset


def _dns_eligible(
    record: LinkRecord,
    target_as: int,
    graph: InterfaceGraph,
    seen_addresses: Set[int],
    address_as: Callable[[int], int],
) -> bool:
    if not any(address in seen_addresses for address in record.addresses):
        return False
    connected = [asn for asn in record.pair if asn != target_as]
    connected_as = connected[0] if connected else target_as
    if record.owner_as == connected_as:
        return True
    for address in record.addresses:
        neighbors = graph.n_forward(address) | graph.n_backward(address)
        if any(address_as(neighbor) == connected_as for neighbor in neighbors):
            return True
    return False


def tag_table(network) -> Dict[str, int]:
    """Peer-tag → ASN table from the synthetic network's AS names."""
    table: Dict[str, int] = {}
    for asn, node in network.as_graph.nodes.items():
        table[node.name.replace("_", "-")] = asn
    return table
