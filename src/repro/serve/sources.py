"""Streaming line sources for the serve daemon.

Two transports feed :meth:`~repro.serve.daemon.ServeDaemon.offer`:

* :class:`FollowSource` — tail a growing file from a byte offset.  The
  offset yielded with each line is the position *after* it, which is
  exactly what a checkpoint must record: resuming from that offset
  re-reads nothing before the line and everything after it
  (at-least-once delivery; folds are idempotent set unions, so
  re-folding a replayed line is a no-op).
* :class:`SocketSource` — accept newline-delimited records on a unix
  domain socket.  Socket lines are at-most-once: they carry no offset
  and are not replayed after a crash, so the durable path is always a
  followed file (docs/SERVE.md spells out the consistency model).

Polling uses ``threading.Event.wait`` so a stop request interrupts a
sleeping tail immediately, and no wall-clock reads are needed
(tools/mapitlint's DET002 stays clean).
"""

from __future__ import annotations

import os
import socket
import threading
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.serve.daemon import ServeDaemon


class FollowSource:
    """Tail *path* from *offset*, yielding ``(line, end_offset)`` pairs.

    Only complete lines are yielded: a partial final line (a writer
    mid-append, or a crash mid-write) stays buffered until its newline
    arrives, so the daemon never parses half a record.  With
    ``once=True`` the tail stops at end-of-file — the ``--once`` batch
    replay and drain-at-shutdown path; a trailing unterminated line is
    then flushed, matching how batch ingest reads a file that does not
    end in a newline.
    """

    def __init__(
        self,
        path: Union[str, Path],
        offset: int = 0,
        poll_interval: float = 0.1,
    ) -> None:
        self.path = Path(path)
        self.offset = offset
        self.poll_interval = poll_interval
        # the offsets-dict key: the full path as given, never the
        # basename — two followed files named alike (or a follow file
        # named like the dataset's traces.txt) must not share offsets.
        # Resuming with a differently-spelled path misses the stored
        # offset and re-reads from zero, which folds idempotently.
        self.name = str(self.path)

    def lines(
        self, stop: Optional[threading.Event] = None, once: bool = False
    ) -> Iterator[Tuple[str, int]]:
        stop = stop or threading.Event()
        buffer = b""
        # position tracks bytes *read*; offset tracks bytes *consumed*
        # (complete lines yielded).  They differ only by a buffered
        # partial line, which is re-read after a crash — harmless,
        # since folds are idempotent.
        position = self.offset
        while not stop.is_set():
            chunk = self._read_chunk(position)
            if chunk:
                position += len(chunk)
                buffer += chunk
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line = buffer[: newline + 1]
                    buffer = buffer[newline + 1 :]
                    self.offset += len(line)
                    yield line.decode("utf-8", errors="replace"), self.offset
            elif once:
                break
            else:
                stop.wait(self.poll_interval)
        if once and buffer:
            self.offset += len(buffer)
            yield buffer.decode("utf-8", errors="replace"), self.offset

    def _read_chunk(self, position: int, size: int = 65536) -> bytes:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(position)
                return handle.read(size)
        except FileNotFoundError:
            return b""

    def feed(
        self,
        daemon: ServeDaemon,
        stop: Optional[threading.Event] = None,
        once: bool = False,
    ) -> int:
        """Pump this source into *daemon*'s queue; returns lines offered.

        This is the follow-thread entry point, and the only daemon
        method it touches is the locked :meth:`ServeDaemon.offer` —
        parsing, folding, and cadence all stay on the pump thread
        (the thread-role contract RACE001/RACE002 enforce).
        """
        delivered = 0
        for line, offset in self.lines(stop=stop, once=once):
            daemon.offer(line, self.name, offset)
            delivered += 1
        return delivered

    def replay(self, daemon: ServeDaemon, stop: Optional[threading.Event] = None) -> int:
        """Synchronously fold the file into *daemon* (the ``--once``
        and warm-start path): no queue, no shedding, arrival order.

        Must run on the pump thread — it calls straight into
        :meth:`ServeDaemon.ingest_entry`, which folds.
        """
        delivered = 0
        for line, offset in self.lines(stop=stop, once=True):
            daemon.ingest_entry(line, self.name, offset)
            delivered += 1
        return delivered


class SocketSource:
    """Accept newline-delimited records on a unix domain socket.

    Each accepted connection gets a reader thread that splits the byte
    stream on newlines and offers every complete line to the daemon
    (no offset — socket delivery is at-most-once).  A half-line at
    connection close is flushed, mirroring :class:`FollowSource`'s
    end-of-file behaviour.
    """

    def __init__(self, path: Union[str, Path], daemon: ServeDaemon) -> None:
        self.path = Path(path)
        self.daemon = daemon
        self.name = f"socket:{self.path.name}"
        if self.path.exists():
            self.path.unlink()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(str(self.path))
        self._listener.listen(8)
        self._stop = threading.Event()
        # appended from the accept thread, joined from the closing
        # thread — every touch goes through the lock
        self._threads: list = []
        self._threads_lock = threading.Lock()

    def start(self) -> None:
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        with self._threads_lock:
            self._threads.append(thread)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return  # listener closed during shutdown
            thread = threading.Thread(
                target=self._read_connection, args=(connection,), daemon=True
            )
            thread.start()
            with self._threads_lock:
                self._threads.append(thread)

    def _read_connection(self, connection: socket.socket) -> None:
        buffer = b""
        try:
            while True:
                chunk = connection.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line = buffer[:newline]
                    buffer = buffer[newline + 1 :]
                    self.daemon.offer(
                        line.decode("utf-8", errors="replace"), self.name
                    )
            if buffer:
                self.daemon.offer(buffer.decode("utf-8", errors="replace"), self.name)
        finally:
            connection.close()

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        with self._threads_lock:
            pending = list(self._threads)
        for thread in pending:
            thread.join(timeout=1.0)
        if self.path.exists():
            try:
                self.path.unlink()
            except OSError:  # noqa: BLE001 - stale socket file is cosmetic
                pass


def read_file_size(path: Union[str, Path]) -> int:
    """Current byte size of *path* (0 when absent) — the offset a
    warm start records after folding a cache hit whole."""
    try:
        return os.path.getsize(path)
    except OSError:
        return 0
