"""Snapshot-isolated query API for the serve daemon.

:class:`QueryAPI` answers every question from ONE read of the daemon's
published :class:`~repro.serve.daemon.ServeSnapshot` reference: the
snapshot is grabbed once at the top of each handler and all response
fields — records, counts, the fingerprint stamped on the payload —
derive from that single object.  Concurrent quiesces therefore cannot
tear a response: a reader sees either the world before a swap or the
world after it, never a mixture (the concurrency test holds every
response fingerprint to the set of published quiesce fingerprints).

:class:`ServeHTTPServer` is the stdlib transport: a threading HTTP
server with GET routes mapping one-to-one onto the API methods.  Port 0
binds an ephemeral port; ``server.port`` reports what the OS granted.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.net.ipv4 import parse_address
from repro.serve.daemon import ServeDaemon


class QueryAPI:
    """The daemon's read side; every payload is snapshot-derived."""

    def __init__(self, daemon: ServeDaemon) -> None:
        self.daemon = daemon

    def health(self) -> Dict[str, object]:
        """Liveness + headline state: seq, fingerprint, counters."""
        daemon = self.daemon
        daemon.note_query()
        snapshot = daemon.snapshot
        payload: Dict[str, object] = {
            "status": "ok" if snapshot.seq > 0 else "warming",
            "queue_depth": daemon.queue_depth,
        }
        payload.update(snapshot.summary())
        payload["stats"] = dict(snapshot.stats)
        return payload

    def fingerprint(self) -> Dict[str, object]:
        """The §4.6 state fingerprint of the published snapshot."""
        self.daemon.note_query()
        snapshot = self.daemon.snapshot
        return {"seq": snapshot.seq, "fingerprint": snapshot.fingerprint}

    def links_by_address(self, address: str) -> Dict[str, object]:
        """Inference records for one interface address (dotted quad)."""
        self.daemon.note_query()
        snapshot = self.daemon.snapshot
        packed = parse_address(address)
        return {
            "address": address,
            "links": snapshot.by_address.get(packed, []),
            "seq": snapshot.seq,
            "fingerprint": snapshot.fingerprint,
        }

    def links_by_as(self, asn: int) -> Dict[str, object]:
        """Inference records with *asn* as either endpoint."""
        self.daemon.note_query()
        snapshot = self.daemon.snapshot
        return {
            "asn": asn,
            "links": snapshot.by_as.get(asn, []),
            "seq": snapshot.seq,
            "fingerprint": snapshot.fingerprint,
        }

    def explain(self, address: str) -> Dict[str, object]:
        """Why (or why not) *address* carries an inference: its
        records plus the graph's other-side judgement."""
        self.daemon.note_query()
        return self.daemon.explain_records(parse_address(address))

    def metrics(self) -> Dict[str, object]:
        """The live metrics registry (empty when none is attached)."""
        self.daemon.note_query()
        registry = self.daemon.obs.metrics
        return registry.to_dict() if registry is not None else {}


class _Handler(BaseHTTPRequestHandler):
    """GET routes onto :class:`QueryAPI`; one snapshot per response."""

    api: QueryAPI  # set on the subclass built by ServeHTTPServer

    # the stdlib logs every request to stderr by default; a daemon
    # polled by health checks must stay quiet
    def log_message(self, format: str, *args: object) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        try:
            status, payload = self._route(parts.path, query)
        except ValueError as error:
            status, payload = 400, {"error": str(error)}
        body = json.dumps(payload, indent=2).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self, path: str, query: Dict[str, list]) -> Tuple[int, Dict[str, object]]:
        api = self.api
        if path == "/health":
            return 200, api.health()
        if path == "/fingerprint":
            return 200, api.fingerprint()
        if path == "/metrics":
            return 200, api.metrics()
        if path == "/links":
            if "address" in query:
                return 200, api.links_by_address(query["address"][0])
            if "asn" in query:
                return 200, api.links_by_as(int(query["asn"][0]))
            return 400, {"error": "links requires ?address= or ?asn="}
        if path == "/explain":
            if "address" in query:
                return 200, api.explain(query["address"][0])
            return 400, {"error": "explain requires ?address="}
        return 404, {"error": f"no such endpoint {path}"}


class ServeHTTPServer:
    """Threaded HTTP transport wrapping one :class:`QueryAPI`."""

    def __init__(self, api: QueryAPI, port: int = 0, host: str = "127.0.0.1") -> None:
        handler = type("BoundHandler", (_Handler,), {"api": api})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
