"""The serve daemon: bounded ingest, quiesce cadence, atomic snapshots.

:class:`ServeDaemon` glues the streaming pieces together
(docs/SERVE.md has the state machine):

* reader threads (file tail, socket connections) call :meth:`offer`,
  which either enqueues a raw line or — when the bounded queue is full
  — *sheds* it deterministically (drop-newest, count, feed the
  ErrorBudget at the next quiesce);
* one pump (the daemon's worker thread, or the caller itself in
  ``--once`` mode) drains the queue: parse via the shared
  :func:`~repro.robust.ingest.parse_record`, fold into the
  :class:`~repro.serve.incremental.IncrementalIndex`, and every
  ``quiesce_every`` folds re-run the dirty-region multipass and publish
  a fresh immutable :class:`ServeSnapshot` by a single reference swap
  (atomic under the GIL — readers never observe a torn state);
* every ``checkpoint_every`` folds the fold state and source offsets
  go to the run journal, so a killed daemon resumes exactly where the
  last durable checkpoint left off.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.results import MapItResult
from repro.graph.othersides import OtherSideTable
from repro.net.ipv4 import format_address
from repro.obs.observer import NULL_OBS, Observability
from repro.robust.errors import ErrorBudget
from repro.robust.faults import active_chaos
from repro.robust.ingest import parse_record
from repro.robust.journal import RunJournal
from repro.serve.checkpoint import load_latest_checkpoint, write_checkpoint
from repro.serve.incremental import IncrementalIndex
from repro.traceroute.parse import TraceParseError

#: counters a snapshot/checkpoint carries (all deterministic)
_STAT_KEYS = (
    "ingested",
    "parsed",
    "malformed",
    "skipped",
    "shed",
    "folds",
    "quiesces",
    "checkpoints",
)


class ServeSnapshot:
    """One immutable published view of the inference state.

    Built at a quiesce point and swapped in with a single attribute
    assignment; every field is derived from that one quiesce, so any
    reader holding a snapshot sees an internally consistent world.
    """

    __slots__ = (
        "seq",
        "fingerprint",
        "result",
        "stats",
        "by_address",
        "by_as",
        "other_sides",
    )

    def __init__(
        self,
        seq: int,
        fingerprint: str,
        result: Optional[MapItResult],
        stats: Dict[str, int],
        other_sides: Optional[OtherSideTable] = None,
    ) -> None:
        self.seq = seq
        self.fingerprint = fingerprint
        self.result = result
        self.stats = stats
        # the quiesce-time point-to-point table, captured by reference:
        # the index swaps in a *fresh* table when the universe grows,
        # so this one is immutable from the moment it lands here
        self.other_sides = other_sides
        self.by_address: Dict[int, List[dict]] = {}
        self.by_as: Dict[int, List[dict]] = {}
        if result is not None:
            for inference in list(result.inferences) + list(result.uncertain):
                record = inference.to_dict()
                self.by_address.setdefault(inference.address, []).append(record)
                for asn in sorted({inference.local_as, inference.remote_as}):
                    self.by_as.setdefault(asn, []).append(record)

    @classmethod
    def empty(cls) -> "ServeSnapshot":
        return cls(0, "", None, {key: 0 for key in _STAT_KEYS})

    def other_side(self, address: int) -> Optional[int]:
        """The inferred point-to-point partner as of this snapshot."""
        if self.other_sides is None:
            return None
        return self.other_sides.other_side.get(address)

    def summary(self) -> Dict[str, object]:
        """Headline fields every API response embeds."""
        base: Dict[str, object] = {"seq": self.seq, "fingerprint": self.fingerprint}
        if self.result is not None:
            base.update(self.result.summary())
            base["converged"] = self.result.converged
        return base


class ServeDaemon:
    """A long-running incremental MAP-IT service over one index."""

    def __init__(
        self,
        index: IncrementalIndex,
        *,
        format: str = "jsonl",
        on_error: str = "lenient",
        budget: Optional[ErrorBudget] = None,
        journal: Optional[RunJournal] = None,
        obs: Observability = NULL_OBS,
        quiesce_every: int = 64,
        checkpoint_every: int = 0,
        queue_limit: int = 1024,
    ) -> None:
        self.index = index
        self.format = format
        self.on_error = on_error
        self.budget = budget
        self.journal = journal
        self.obs = obs
        self.quiesce_every = max(0, quiesce_every)
        self.checkpoint_every = max(0, checkpoint_every)
        self.queue_limit = max(1, queue_limit)
        self.snapshot = ServeSnapshot.empty()
        self.offsets: Dict[str, int] = {}
        self.stats: Dict[str, int] = {key: 0 for key in _STAT_KEYS}
        self.queries = 0
        self._queue: Deque[Tuple[str, int, str, Optional[int]]] = deque()
        self._lock = threading.Lock()
        self._line_numbers: Dict[str, int] = {}
        self._folds_since_quiesce = 0
        self._folds_since_checkpoint = 0
        if obs.enabled:
            obs.event(
                "serve.start",
                format=format,
                on_error=on_error,
                quiesce_every=self.quiesce_every,
                checkpoint_every=self.checkpoint_every,
                queue_limit=self.queue_limit,
            )

    # -- reader side (any thread) -------------------------------------------

    def offer(self, line: str, source: str = "stream", offset: Optional[int] = None) -> bool:
        """Enqueue one raw line; returns False when it was shed.

        Shedding is deterministic: the queue has a hard bound and a
        line arriving while it is full is dropped and counted — the
        newest observation loses, never a random victim.  Shed counts
        feed the ErrorBudget at the next quiesce.
        """
        with self._lock:
            number = self._line_numbers.get(source, 0) + 1
            self._line_numbers[source] = number
            if len(self._queue) >= self.queue_limit:
                self.stats["shed"] += 1
                self.obs.inc("serve.shed")
                return False
            self._queue.append((source, number, line, offset))
            self.stats["ingested"] += 1
        self.obs.inc("serve.ingested")
        return True

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- pump side (one thread) ---------------------------------------------

    def pump(self, max_records: Optional[int] = None) -> int:
        """Drain queued lines into the index; returns records processed.

        Runs the parse → fold → cadence pipeline for each line; the
        quiesce and checkpoint cadences fire between records, so a
        checkpoint's fold state and source offsets are always mutually
        consistent.
        """
        processed = 0
        while max_records is None or processed < max_records:
            with self._lock:
                if not self._queue:
                    break
                entry = self._queue.popleft()
            self._process(*entry)
            processed += 1
        return processed

    def ingest_entry(self, line: str, source: str, offset: Optional[int] = None) -> None:
        """Synchronous ingest (the ``--once`` path): no queue, no shed."""
        with self._lock:
            number = self._line_numbers.get(source, 0) + 1
            self._line_numbers[source] = number
            self.stats["ingested"] += 1
        self.obs.inc("serve.ingested")
        self._process(source, number, line, offset)

    def warm_fold(
        self, flat, parsed: int, skipped: int, source: str, offset: int
    ) -> int:
        """Fold a verified columnar cache payload as the warm base.

        Runs on the pump thread before any reader starts, but keeps
        the same locked-counter discipline as the live path so the
        warm start is not a special case the concurrency rules exempt.
        Returns traces folded.
        """
        self.index.fold_flat(flat, 0, len(flat))
        self._bump("ingested", parsed + skipped)
        self._bump("parsed", parsed)
        self._bump("skipped", skipped)
        self._bump("folds", parsed)
        self.offsets[source] = offset
        return parsed

    def _bump(self, key: str, amount: int = 1) -> int:
        """Locked counter increment; returns the new value.

        ``stats`` is mutated from the reader side (:meth:`offer` sheds
        and counts under the lock) *and* the pump side, so every pump
        increment holds the same lock — the mutual-lock discipline
        RACE001 checks.
        """
        with self._lock:
            self.stats[key] += amount
            return self.stats[key]

    def stats_view(self) -> Dict[str, int]:
        """A consistent copy of the counters, taken under the lock."""
        with self._lock:
            return dict(self.stats)

    def _process(self, source: str, number: int, raw: str, offset: Optional[int]) -> None:
        line = raw.strip()
        if offset is not None:
            self.offsets[source] = offset
        if not line or (self.format == "text" and line.startswith("#")):
            return
        try:
            trace = parse_record(line, number, self.format)
        except TraceParseError:
            if self.on_error == "strict":
                raise
            self._bump("malformed")
            self.obs.inc("serve.malformed")
            if self.obs.enabled:
                self.obs.event(
                    "serve.reject", source=source, line=number, snippet=line[:120]
                )
            return
        if trace is None:
            self._bump("skipped")
            self.obs.inc("serve.skipped")
            return
        self._bump("parsed")
        self.obs.inc("serve.parsed")
        self.index.fold([trace])
        folds = self._bump("folds")
        self.obs.inc("serve.folds")
        self._folds_since_quiesce += 1
        self._folds_since_checkpoint += 1
        chaos = active_chaos()
        if chaos is not None:
            chaos.maybe_crash_fold(folds)
        if self.quiesce_every and self._folds_since_quiesce >= self.quiesce_every:
            self.quiesce()
        if (
            self.journal is not None
            and self.checkpoint_every
            and self._folds_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    # -- quiesce / checkpoint -------------------------------------------------

    def quiesce(self) -> ServeSnapshot:
        """Re-infer over the dirty region and publish a new snapshot.

        Also the deterministic point where the ErrorBudget judges the
        stream: malformed plus shed records against everything offered,
        exactly like batch ingest judges a whole file.
        """
        self._folds_since_quiesce = 0
        result = self.index.quiesce()
        self._bump("quiesces")
        self.obs.inc("serve.quiesces")
        fingerprint = self.index.fingerprint()
        stats = self.stats_view()
        snapshot = ServeSnapshot(
            self.snapshot.seq + 1,
            fingerprint,
            result,
            stats,
            other_sides=self.index.graph.other_sides,
        )
        # One reference assignment: atomic under the GIL, so readers
        # always see either the old or the new complete snapshot.
        self.snapshot = snapshot
        self.obs.gauge("serve.queue_depth", self.queue_depth)
        self.obs.gauge("serve.inferences", len(result.inferences))
        if self.obs.enabled:
            self.obs.event(
                "serve.quiesce",
                seq=snapshot.seq,
                fingerprint=fingerprint,
                folds=stats["folds"],
                inferences=len(result.inferences),
                uncertain=len(result.uncertain),
                iterations=result.iterations,
            )
        if self.budget is not None:
            considered = stats["parsed"] + stats["malformed"] + stats["shed"]
            self.budget.check(
                "serve", stats["malformed"] + stats["shed"], considered
            )
        return snapshot

    def checkpoint(self) -> bool:
        """Write fold state + source offsets to the journal."""
        if self.journal is None:
            return False
        self._folds_since_checkpoint = 0
        stats = self.stats_view()
        seq = stats["checkpoints"]
        stuck = write_checkpoint(
            self.journal,
            seq,
            self.index.export_state(),
            self.offsets,
            stats,
            self.snapshot.fingerprint,
        )
        if stuck:
            self._bump("checkpoints")
            self.obs.inc("serve.checkpoints")
            if self.obs.enabled:
                self.obs.event(
                    "serve.checkpoint",
                    seq=seq,
                    folds=stats["folds"],
                    offsets=dict(self.offsets),
                )
        return stuck

    def resume(self) -> bool:
        """Restore the newest durable checkpoint; returns success.

        The follow sources then seek to the restored offsets, so every
        line folded after the checkpoint is re-read and re-folded —
        at-least-once delivery with idempotent folds (set unions), which
        is why recovery is byte-identical.
        """
        if self.journal is None:
            return False
        checkpoint = load_latest_checkpoint(self.journal)
        if checkpoint is None:
            return False
        self.index.restore_state(checkpoint["fold"])
        self.offsets = dict(checkpoint["offsets"])
        with self._lock:
            for key in _STAT_KEYS:
                self.stats[key] = int(checkpoint["stats"].get(key, 0))
            self._line_numbers = {}
            folds = self.stats["folds"]
        self._folds_since_quiesce = 0
        self._folds_since_checkpoint = 0
        if self.obs.enabled:
            self.obs.event(
                "serve.resume",
                folds=folds,
                offsets=dict(self.offsets),
                fingerprint=checkpoint.get("fingerprint", ""),
            )
        return True

    # -- daemon loop -----------------------------------------------------------

    def finalize(self) -> ServeSnapshot:
        """Quiesce anything folded since the last snapshot (or produce
        the first one) and write a final checkpoint — the shutdown and
        ``--once`` completion step."""
        if self._folds_since_quiesce or self.snapshot.seq == 0:
            self.quiesce()
        if self.journal is not None:
            self.checkpoint()
        return self.snapshot

    def run_loop(self, stop: threading.Event, idle_wait: float = 0.05) -> None:
        """Drain the queue until *stop* is set, then finalize.

        When the stream goes idle before the quiesce cadence fires, the
        pending folds are quiesced immediately so readers catch up to
        the stream's tail instead of waiting for ``quiesce_every``.
        """
        while not stop.is_set():
            if self.pump(max_records=256) == 0:
                if self._folds_since_quiesce:
                    self.quiesce()
                stop.wait(idle_wait)
        self.pump()
        self.finalize()
        if self.obs.enabled:
            self.obs.event(
                "serve.shutdown",
                folds=self.stats_view()["folds"],
                seq=self.snapshot.seq,
            )

    # -- query support ----------------------------------------------------------

    def note_query(self) -> None:
        # handler threads run this concurrently; unlocked += loses counts
        with self._lock:
            self.queries += 1
        self.obs.inc("serve.queries")

    def explain_records(self, address: int) -> Dict[str, object]:
        """Snapshot-derived explain payload for one interface address.

        Every field — records *and* the other-side judgement — comes
        from the captured snapshot, never the live index: handler
        threads must not read structures the pump is folding into.
        """
        snapshot = self.snapshot
        other = snapshot.other_side(address)
        return {
            "address": format_address(address),
            "records": snapshot.by_address.get(address, []),
            "other_side": format_address(other) if other is not None else None,
            "seq": snapshot.seq,
            "fingerprint": snapshot.fingerprint,
        }
