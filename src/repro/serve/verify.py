"""The serve-vs-batch differential layer.

Batch is the spec: for every prefix of the trace stream, a quiesced
serve state must be **byte-identical** to ``mapit run`` over exactly
those traces — same §4.6 state fingerprint, same result JSON.  This
module holds serve to that bar three ways:

* :func:`check_world` replays a world trace by trace through an
  :class:`~repro.serve.incremental.IncrementalIndex`, quiescing after
  every fold and comparing prefixes against fresh batch runs;
* :func:`check_sweep` runs that over a seeded world sweep (the CI
  serve job's ≥25-world property leg);
* on divergence, :func:`shrink_serve_divergence` minimizes the world
  with the differential harness's ddmin shrinker and writes a
  replayable regression bundle.

:func:`dirty_tracking_fault` deliberately drops a fraction of
dirty-half invalidations — the exact bug class this layer exists to
catch — so the tests can prove the sweep and the shrinker actually
fire on a broken incremental engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.config import MapItConfig
from repro.core.mapit import MapIt
from repro.diff.shrink import ShrinkReport, shrink_world, write_regression
from repro.diff.worlds import World, world_sweep
from repro.graph.neighbors import build_interface_graph
from repro.obs.observer import NULL_OBS, Observability
from repro.robust.faults import _half_selected
from repro.serve.incremental import IncrementalIndex
from repro.traceroute.sanitize import sanitize_traces


def batch_state(
    world: World, prefix: int, config: MapItConfig
) -> Tuple[str, str]:
    """(fingerprint, result JSON) of a batch run over the first
    *prefix* traces — the ground truth a quiesce is held to."""
    report = sanitize_traces(world.traces[:prefix])
    graph = build_interface_graph(
        report.traces, all_addresses=report.all_addresses
    )
    mapit = MapIt(
        graph, world.ip2as(), org=world.as2org, rel=world.relationships,
        config=config,
    )
    result = mapit.run()
    return mapit.engine.state.fingerprint(), result.to_json(indent=2)


@dataclass
class ServeDivergence:
    """Serve and batch disagreed after folding *prefix* traces."""

    world: str
    prefix: int
    batch_fingerprint: str
    serve_fingerprint: str
    json_equal: bool

    def summary(self) -> str:
        return (
            f"{self.world}: divergence at prefix {self.prefix} "
            f"(batch {self.batch_fingerprint[:12]} vs serve "
            f"{self.serve_fingerprint[:12]}, json_equal={self.json_equal})"
        )


@dataclass
class SweepOutcome:
    """One property sweep's verdict."""

    preset: str
    worlds: int
    prefixes_checked: int = 0
    divergences: List[ServeDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def lines(self) -> List[str]:
        status = "OK" if self.ok else "DIVERGED"
        out = [
            f"serve sweep [{status}]: {self.worlds} {self.preset} world(s), "
            f"{self.prefixes_checked} prefix compare(s), "
            f"{len(self.divergences)} divergence(s)"
        ]
        out.extend(f"  {d.summary()}" for d in self.divergences)
        return out


def check_world(
    world: World,
    config: Optional[MapItConfig] = None,
    check_every: int = 1,
    obs: Observability = NULL_OBS,
) -> Tuple[Optional[ServeDivergence], int]:
    """Fold *world* trace by trace; compare prefixes against batch.

    Quiesces after **every** fold (so the dirty-region engine runs its
    worst case); compares fingerprints and result JSON against a fresh
    batch run every *check_every* prefixes and always at the end.
    Returns ``(first divergence or None, prefixes compared)``.
    """
    config = config or MapItConfig()
    index = IncrementalIndex(
        world.ip2as(), org=world.as2org, rel=world.relationships,
        config=config, obs=obs,
    )
    checked = 0
    total = len(world.traces)
    for position, trace in enumerate(world.traces, start=1):
        index.fold([trace])
        result = index.quiesce()
        if position % max(1, check_every) and position != total:
            continue
        checked += 1
        batch_fp, batch_json = batch_state(world, position, config)
        serve_fp = index.fingerprint()
        serve_json = result.to_json(indent=2)
        if serve_fp != batch_fp or serve_json != batch_json:
            obs.inc("serve.verify.divergences")
            return (
                ServeDivergence(
                    world=world.name,
                    prefix=position,
                    batch_fingerprint=batch_fp,
                    serve_fingerprint=serve_fp,
                    json_equal=serve_json == batch_json,
                ),
                checked,
            )
    obs.inc("serve.verify.prefixes", checked)
    return None, checked


def serve_world_diverges(
    world: World, config: Optional[MapItConfig] = None, check_every: int = 1
) -> bool:
    """The shrinker predicate: does *world* still diverge?"""
    divergence, _ = check_world(world, config, check_every=check_every)
    return divergence is not None


def check_sweep(
    preset: str,
    worlds: int,
    seed: int,
    config: Optional[MapItConfig] = None,
    check_every: int = 1,
    obs: Observability = NULL_OBS,
) -> SweepOutcome:
    """Run :func:`check_world` over a deterministic world sweep."""
    outcome = SweepOutcome(preset=preset, worlds=worlds)
    for world in world_sweep(preset, worlds, seed):
        with obs.span("serve/verify_world"):
            divergence, checked = check_world(
                world, config, check_every=check_every, obs=obs
            )
        outcome.prefixes_checked += checked
        if divergence is not None:
            outcome.divergences.append(divergence)
    return outcome


def shrink_serve_divergence(
    world: World,
    config: Optional[MapItConfig] = None,
    directory=None,
    check_every: int = 1,
    obs: Observability = NULL_OBS,
) -> Tuple[World, ShrinkReport, Optional[str]]:
    """Minimize a diverging world; optionally write the repro bundle.

    The caller must hold whatever made the world diverge (e.g. a
    :func:`dirty_tracking_fault` context) open across the shrink, so
    the predicate keeps observing the same bug.
    """
    config = config or MapItConfig()

    def predicate(candidate: World) -> bool:
        return serve_world_diverges(candidate, config, check_every=check_every)

    shrunk, report = shrink_world(world, predicate, obs=obs)
    written = None
    if directory is not None:
        written = str(
            write_regression(
                shrunk,
                config.remove_rule,
                directory,
                extra_manifest={"layer": "serve-incremental"},
            )
        )
    return shrunk, report, written


@contextmanager
def dirty_tracking_fault(rate: float = 0.5, seed: int = 0) -> Iterator[None]:
    """Deliberately drop a fraction of dirty-half invalidations.

    Simulates the canonical incremental-engine bug — a stale base memo
    surviving a neighbor-set change — so tests can prove the
    differential layer catches it.  Selection is per-half deterministic
    (same ``(seed, half)`` always drops), so shrinking under the fault
    converges.
    """
    from repro.core.engine import Engine

    original = Engine.invalidate_halves

    def leaky(self, halves):
        kept = [
            half for half in halves if not _half_selected(half, rate, seed)
        ]
        return original(self, kept)

    Engine.invalidate_halves = leaky
    try:
        yield
    finally:
        Engine.invalidate_halves = original
