"""Persistent fold state + dirty-region re-inference.

:class:`IncrementalIndex` is the serve daemon's heart: it owns the
mutable neighbor tables an arriving trace folds into (via the columnar
:func:`~repro.perf.flat.accumulate_flat` kernel, which reports exactly
which interface halves gained a member) and a persistent
:class:`~repro.core.mapit.MapIt` whose engine memoizes base direct-pass
decisions across quiesces.  A quiesce refreshes the other-side table if
the address universe grew, then calls
:meth:`~repro.core.mapit.MapIt.run_incremental` with the accumulated
dirty halves — producing a result byte-identical to a batch run over
every trace folded so far (docs/SERVE.md proves why).

Folding is order-independent (set unions), so permuted arrival orders
quiesce to identical states; the differential layer in
:mod:`repro.serve.verify` holds this to byte-identity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bgp.ip2as import IP2AS
from repro.core.config import MapItConfig
from repro.core.mapit import MapIt
from repro.core.results import MapItResult
from repro.graph.halves import BACKWARD, FORWARD
from repro.graph.neighbors import InterfaceGraph, accumulate_neighbors
from repro.graph.othersides import infer_other_sides
from repro.net.special import SpecialPurposeRegistry, default_special_registry
from repro.obs.observer import NULL_OBS, Observability
from repro.org.as2org import AS2Org
from repro.perf.flat import FlatEncodeError, FlatTraces, accumulate_flat, pack_traces
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.model import Trace
from repro.traceroute.sanitize import sanitize_traces


class IncrementalIndex:
    """Streaming MAP-IT state: fold traces in, quiesce results out."""

    def __init__(
        self,
        ip2as: IP2AS,
        org: Optional[AS2Org] = None,
        rel: Optional[RelationshipDataset] = None,
        config: Optional[MapItConfig] = None,
        obs: Observability = NULL_OBS,
        special: Optional[SpecialPurposeRegistry] = None,
    ) -> None:
        self.forward: Dict[int, Set[int]] = {}
        self.backward: Dict[int, Set[int]] = {}
        self.seen: Set[int] = set()
        self.universe: Set[int] = set()
        self.retained = 0
        self.discarded = 0
        self.buggy = 0
        self.obs = obs
        self._is_special = (special or default_special_registry()).is_special
        self._dirty: Set[Tuple[int, bool]] = set()
        #: universe size when the other-side table was last computed;
        #: -1 forces the first quiesce to build it
        self._other_sides_at = -1
        self.graph = InterfaceGraph(forward=self.forward, backward=self.backward)
        self._mapit = MapIt(self.graph, ip2as, org=org, rel=rel, config=config, obs=obs)
        self._mapit.engine.enable_incremental()
        self.result: Optional[MapItResult] = None

    # -- folding ------------------------------------------------------------

    def fold(self, traces: List[Trace]) -> int:
        """Sanitize and fold *traces* into the neighbor tables.

        Returns the number of traces retained (§4.1 may discard).  The
        interface halves whose neighbor set actually grew accumulate in
        the dirty set consumed by the next :meth:`quiesce`.
        """
        if not traces:
            return 0
        try:
            flat = pack_traces(traces)
        except FlatEncodeError:
            # A field outside the columnar ranges (legal but rare):
            # fall back to the object kernels for this batch.
            return self._fold_objects(traces)
        return self.fold_flat(flat, 0, len(flat))

    def fold_flat(self, flat: FlatTraces, start: int, end: int) -> int:
        """Fold a pre-packed columnar block (the ``.mapitc`` v2
        warm-start path folds a cache hit's payload directly)."""
        with self.obs.span("serve/fold"):
            retained, discarded, buggy = accumulate_flat(
                flat,
                start,
                end,
                self.forward,
                self.backward,
                self.seen,
                self.universe,
                self._is_special,
                dirty=self._dirty,
            )
        self.retained += retained
        self.discarded += discarded
        self.buggy += buggy
        return retained

    def _fold_objects(self, traces: List[Trace]) -> int:
        """Object-kernel fallback fold with the same dirty tracking."""
        report = sanitize_traces(traces)
        self.universe.update(report.all_addresses)
        staged_forward: Dict[int, Set[int]] = {}
        staged_backward: Dict[int, Set[int]] = {}
        accumulate_neighbors(
            report.traces, staged_forward, staged_backward, self.seen, self._is_special
        )
        for address, members in staged_forward.items():
            current = self.forward.setdefault(address, set())
            if not members <= current:
                current |= members
                self._dirty.add((address, FORWARD))
        for address, members in staged_backward.items():
            current = self.backward.setdefault(address, set())
            if not members <= current:
                current |= members
                self._dirty.add((address, BACKWARD))
        self.retained += len(report.traces)
        self.discarded += report.discarded
        self.buggy += report.buggy_hops_removed
        return len(report.traces)

    # -- quiescing ----------------------------------------------------------

    @property
    def dirty_halves(self) -> int:
        """Interface halves touched since the last quiesce."""
        return len(self._dirty)

    def quiesce(self) -> MapItResult:
        """Re-run inference over the current graph, dirty region only.

        Byte-identical to a batch run over every trace folded so far:
        the other-side table is recomputed from the (possibly grown)
        address universe exactly as :func:`finish_interface_graph`
        would, and the multipass restarts from an empty state with the
        engine's base-decision memo confining recomputation to the
        frontier (docs/SERVE.md).
        """
        if self._other_sides_at != len(self.universe):
            with self.obs.span("serve/other_sides"):
                self.graph.other_sides = infer_other_sides(
                    address
                    for address in self.universe
                    if not self._is_special(address)
                )
            self._other_sides_at = len(self.universe)
        dirty, self._dirty = self._dirty, set()
        with self.obs.span("serve/quiesce"):
            self.result = self._mapit.run_incremental(dirty)
        return self.result

    def fingerprint(self) -> str:
        """The §4.6 state fingerprint of the last quiesce."""
        return self._mapit.engine.state.fingerprint()

    # -- checkpoint plumbing -------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """The picklable fold state a checkpoint captures.

        Inference state is deliberately absent: it is a pure function
        of the graph and is recomputed (memo cold) on the first quiesce
        after a restore.
        """
        return {
            "forward": self.forward,
            "backward": self.backward,
            "seen": self.seen,
            "universe": self.universe,
            "retained": self.retained,
            "discarded": self.discarded,
            "buggy": self.buggy,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt fold state captured by :meth:`export_state`.

        The dicts are updated in place so the engine's graph alias
        stays valid; memo and dirty tracking reset — the next quiesce
        recomputes from scratch, which is exactly the batch trajectory.
        """
        self.forward.clear()
        self.forward.update(state["forward"])
        self.backward.clear()
        self.backward.update(state["backward"])
        self.seen.clear()
        self.seen.update(state["seen"])
        self.universe.clear()
        self.universe.update(state["universe"])
        self.retained = int(state["retained"])
        self.discarded = int(state["discarded"])
        self.buggy = int(state["buggy"])
        self._dirty = set()
        self._other_sides_at = -1
        self._mapit.engine.reset_incremental()
        self.result = None
