"""``repro.serve``: the incremental inference daemon (``mapit serve``).

The batch pipeline re-parses everything and re-runs the full multipass
on every invocation.  This package turns that into a long-running
service (docs/SERVE.md):

* :class:`~repro.serve.incremental.IncrementalIndex` — persistent fold
  state (neighbor tables, address universe, other-side table) plus a
  dirty-region :class:`~repro.core.mapit.MapIt` that re-infers only
  the frontier touched since the last quiesce, byte-identical to batch;
* :class:`~repro.serve.daemon.ServeDaemon` — bounded ingest queue with
  deterministic shedding, quiesce/checkpoint cadences, and atomically
  swapped immutable snapshots for readers;
* :mod:`~repro.serve.sources` — file-follow tailing and unix-socket
  line ingestion;
* :mod:`~repro.serve.api` — the snapshot-isolated query API (health,
  links by address/AS, explain, metrics) and its stdlib HTTP transport;
* :mod:`~repro.serve.verify` — the differential layer proving
  serve ≡ batch over golden bundles and seeded world sweeps;
* :mod:`~repro.serve.smoke` — the end-to-end kill/resume smoke the CI
  serve job runs.
"""

from repro.serve.daemon import ServeDaemon, ServeSnapshot
from repro.serve.incremental import IncrementalIndex

__all__ = ["IncrementalIndex", "ServeDaemon", "ServeSnapshot"]
