"""CI entry points: ``python -m repro.serve --sweep`` / ``--smoke``.

Two legs, both exiting non-zero on any violation:

* ``--sweep`` — the property leg: seeded worlds replayed trace by
  trace through the incremental engine, every prefix (at the chosen
  cadence) compared byte-for-byte against a fresh batch run
  (:mod:`repro.serve.verify`);
* ``--smoke`` — the integration leg: a real daemon subprocess with
  HTTP queries, a SIGKILL mid-stream, and a checkpoint resume that
  must land byte-identical to the batch golden
  (:mod:`repro.serve.smoke`).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="serve equivalence checks (property sweep / daemon smoke)",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--sweep", action="store_true", help="run the world-sweep property leg"
    )
    mode.add_argument(
        "--smoke", action="store_true", help="run the kill/resume daemon smoke"
    )
    parser.add_argument("--preset", default="tiny")
    parser.add_argument("--worlds", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check-every",
        type=int,
        default=1,
        metavar="N",
        help="compare against batch every N prefixes (default 1 = all)",
    )
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args(argv)

    if args.sweep:
        from repro.serve.verify import check_sweep

        outcome = check_sweep(
            args.preset, args.worlds, args.seed, check_every=args.check_every
        )
        for line in outcome.lines():
            print(line)
        return 0 if outcome.ok else 1

    from repro.serve.smoke import SmokeError, run_smoke

    workdir = args.workdir or tempfile.mkdtemp(prefix="mapit-serve-smoke-")
    try:
        for line in run_smoke(workdir, seed=args.seed):
            print(line)
    except SmokeError as error:
        print(f"SMOKE FAILED: {error}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
