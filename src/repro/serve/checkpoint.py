"""Serve checkpoints: durable fold state via the run journal.

A serve checkpoint is one pickled blob appended to the same
:class:`~repro.robust.journal.RunJournal` machinery batch runs use
(``<dir>/<run-id>.serve-XXXXXX.blob`` + a checksummed journal line),
capturing the daemon's fold state — neighbor tables, address universe,
ingest counters — together with the byte offset reached in each
followed source file.  Inference state is *not* checkpointed: it is a
pure function of the graph and is recomputed on the first quiesce after
a restore, which is exactly the batch trajectory, so recovery is
byte-identical (the chaos serve schedule enforces this).

The serve run id is keyed on the *mapping* datasets plus the config and
stream format — the inputs that determine results for a given stream —
so a journal can never be resumed against a different dataset or
configuration by accident.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.io.atomic import file_sha256
from repro.robust.journal import RunJournal, run_identity

#: bump when the checkpoint blob layout changes; old journals then key
#: to a different run id and are simply not resumed
CHECKPOINT_VERSION = 1

#: journal unit name for serve checkpoints
CHECKPOINT_UNIT = "serve-checkpoint"

#: mapping files that contribute to the serve run identity
_IDENTITY_FILES = (
    "cymru.txt",
    "ixp.txt",
    "as2org.txt",
    "relationships.txt",
)


def serve_run_identity(dataset: Union[str, Path], config: Any, format: str) -> str:
    """The run id for a serve session over *dataset*'s mappings.

    Hashes the content of every mapping file present (BGP dumps,
    cymru, IXP, org, relationships) so a resumed session provably runs
    against the same IP2AS world; the config and stream format
    contribute through :func:`~repro.robust.journal.run_identity`.
    """
    root = Path(dataset)
    digests = [f"serve:{CHECKPOINT_VERSION}"]
    bgp_dir = root / "bgp"
    if bgp_dir.is_dir():
        for path in sorted(bgp_dir.glob("*.txt")):
            digests.append(f"bgp/{path.name}:{file_sha256(path)}")
    for name in _IDENTITY_FILES:
        path = root / name
        if path.exists():
            digests.append(f"{name}:{file_sha256(path)}")
    material = hashlib.sha256("\n".join(digests).encode()).hexdigest()
    return run_identity(material, config, "serve", format)


def checkpoint_blob(
    fold_state: Dict[str, object],
    offsets: Dict[str, int],
    stats: Dict[str, int],
    fingerprint: str,
) -> bytes:
    """Serialize one checkpoint (fold state + source offsets + stats)."""
    return pickle.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "fold": fold_state,
            "offsets": dict(offsets),
            "stats": dict(stats),
            "fingerprint": fingerprint,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def write_checkpoint(
    journal: RunJournal,
    seq: int,
    fold_state: Dict[str, object],
    offsets: Dict[str, int],
    stats: Dict[str, int],
    fingerprint: str,
) -> bool:
    """Append checkpoint *seq* to *journal*; returns whether it stuck.

    A failed write (ENOSPC) disables the journal and costs only
    durability — the daemon keeps serving, exactly like batch
    journaling (docs/ROBUSTNESS.md).
    """
    blob = checkpoint_blob(fold_state, offsets, stats, fingerprint)
    return journal.append_with_blob(
        CHECKPOINT_UNIT,
        f"serve{seq:06d}",
        blob,
        extra={"checkpoint": seq, "fingerprint": fingerprint},
    )


def load_latest_checkpoint(journal: RunJournal) -> Optional[Dict[str, Any]]:
    """The newest intact checkpoint in *journal*, or None.

    Walks the verified journal records newest-first and returns the
    first whose blob passes its sha256 — a torn tail or corrupt blob
    degrades to the previous checkpoint, never to a crash.
    """
    records = [
        record for record in journal.read() if record.get("unit") == CHECKPOINT_UNIT
    ]
    for record in reversed(records):
        payload = record.get("payload", {})
        data = journal.load_blob(payload.get("blob", ""), payload.get("sha256", ""))
        if data is None:
            continue
        try:
            checkpoint = pickle.loads(data)
        except Exception:  # noqa: BLE001 - a bad blob is just an older resume point
            journal.obs.inc("robust.journal.blob_corrupt")
            continue
        if checkpoint.get("version") != CHECKPOINT_VERSION:
            continue
        return checkpoint
    return None
