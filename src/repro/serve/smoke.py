"""End-to-end serve smoke: stream, query, kill, resume, diff.

The CI serve job's integration leg.  One run:

1. builds a tiny world and computes the batch golden output
   (``mapit run --json``);
2. starts a real ``mapit serve`` daemon subprocess following an
   initially-empty stream file, with the HTTP API on an ephemeral port
   and periodic checkpoints into a journal;
3. appends the world's traces to the stream in chunks, polling the API
   between chunks (health, fingerprint, links) — every response must
   be internally consistent;
4. SIGKILLs the daemon mid-stream (after at least one checkpoint),
   appends the remaining traces, and resumes with
   ``mapit serve --resume --once``;
5. asserts the resumed output is **byte-identical** to the batch
   golden.

Everything runs against localhost; the only wall-clock use is
``time.monotonic`` deadlines (DET002-clean).
"""

from __future__ import annotations

import json
import shutil
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path
from typing import List, Optional, Union

from repro.diff.worlds import world_from_preset


class SmokeError(AssertionError):
    """A smoke step failed; the message says which."""


def _http_json(port: int, path: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return json.loads(response.read().decode())


def _wait_for(predicate, deadline: float, what: str, interval: float = 0.05):
    """Poll *predicate* until it returns a truthy value or *deadline*
    (monotonic seconds) passes."""
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise SmokeError(f"timed out waiting for {what}")
        time.sleep(interval)


def _start_daemon(args: List[str]) -> "subprocess.Popen[str]":
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _read_port(process: "subprocess.Popen[str]", timeout: float = 30.0) -> int:
    """Parse the ephemeral port from the daemon's stderr banner."""
    deadline = time.monotonic() + timeout
    assert process.stderr is not None
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            raise SmokeError(
                f"daemon exited before binding (rc={process.poll()})"
            )
        if "serve: http on" in line:
            return int(line.rsplit(":", 1)[1])
    raise SmokeError("no http banner within timeout")


def run_smoke(
    workdir: Union[str, Path],
    seed: int = 0,
    chunk: int = 20,
    timeout: float = 60.0,
) -> List[str]:
    """Run the full smoke; returns report lines, raises SmokeError."""
    root = Path(workdir)
    root.mkdir(parents=True, exist_ok=True)
    report: List[str] = []

    # 1. world + batch golden
    world = world_from_preset("tiny", seed)
    world_dir = world.save(root / "world")
    golden = root / "golden.json"
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "run", str(world_dir),
            "--json", "--output", str(golden),
        ],
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise SmokeError(f"batch golden failed: {completed.stderr}")
    report.append(f"golden: {len(world.traces)} traces -> {golden.name}")
    golden_data = json.loads(golden.read_text())
    if not golden_data["inferences"]:
        raise SmokeError("golden run produced no inferences; world too small")
    probe = golden_data["inferences"][0]

    # 2. serve dataset = the world minus its traces file
    serve_dir = root / "serve-dataset"
    shutil.copytree(world_dir, serve_dir)
    (serve_dir / "traces.txt").unlink()
    stream = root / "stream.txt"
    stream.write_text("")
    journal = root / "journal"
    lines = (world_dir / "traces.txt").read_text().splitlines(keepends=True)

    daemon_args = [
        str(serve_dir),
        "--follow", str(stream),
        "--http", "0",
        "--journal", str(journal),
        "--checkpoint-every", "5",
        "--quiesce-every", "7",
        "--poll-interval", "0.05",
    ]
    process = _start_daemon(daemon_args)
    killed = False
    try:
        port = _read_port(process)
        report.append(f"daemon: pid {process.pid}, http port {port}")
        deadline = time.monotonic() + timeout

        # 3. stream the first half in chunks, querying between chunks
        half = max(chunk, len(lines) // 2)
        streamed = 0
        while streamed < half:
            batch = lines[streamed : streamed + chunk]
            with open(stream, "a") as handle:
                handle.writelines(batch)
            streamed += len(batch)
            health = _wait_for(
                lambda: (
                    lambda h: h if h["stats"]["folds"] > 0 else None
                )(_http_json(port, "/health")),
                deadline,
                "first quiesce",
            )
        health = _wait_for(
            lambda: (
                lambda h: h
                if h["stats"]["folds"] >= streamed and h["stats"]["checkpoints"] >= 1
                else None
            )(_http_json(port, "/health")),
            deadline,
            f"{streamed} folds and a checkpoint",
        )
        fingerprint = _http_json(port, "/fingerprint")
        if fingerprint["fingerprint"] != health["fingerprint"] and (
            fingerprint["seq"] == health["seq"]
        ):
            raise SmokeError("fingerprint/health disagree at the same seq")
        links = _http_json(port, f"/links?asn={probe['local_as']}")
        explain = _http_json(port, f"/explain?address={probe['address']}")
        report.append(
            f"mid-stream: {health['stats']['folds']} folds, "
            f"{health['stats']['checkpoints']} checkpoint(s), seq {health['seq']}, "
            f"AS{probe['local_as']} links {len(links['links'])}, "
            f"explain records {len(explain['records'])}"
        )

        # 4. kill -9 mid-stream, append the rest, resume --once
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)
        killed = True
        report.append("killed daemon with SIGKILL")
        with open(stream, "a") as handle:
            handle.writelines(lines[streamed:])
        resumed_out = root / "resumed.json"
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "serve", str(serve_dir),
                "--follow", str(stream),
                "--journal", str(journal),
                "--resume", "--once",
                "--json", "--output", str(resumed_out),
            ],
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        if completed.returncode != 0:
            raise SmokeError(f"resume failed: {completed.stderr}")
        if "resume: restored checkpoint" not in completed.stderr:
            raise SmokeError(
                f"resume did not restore a checkpoint: {completed.stderr}"
            )

        # 5. byte-identity against the batch golden
        if resumed_out.read_bytes() != golden.read_bytes():
            raise SmokeError("resumed serve output differs from batch golden")
        report.append("resumed output byte-identical to batch golden")
    finally:
        if not killed and process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI shim
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(prog="repro.serve.smoke")
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    workdir = args.workdir or tempfile.mkdtemp(prefix="mapit-serve-smoke-")
    try:
        for line in run_smoke(workdir, seed=args.seed):
            print(line)
    except SmokeError as error:
        print(f"SMOKE FAILED: {error}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0
