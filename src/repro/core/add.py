"""The add step (paper section 4.4).

Each pass makes direct inferences (Alg 2), propagates indirect
inferences to link other-sides, resolves point-to-point contradictions
(dual inferences, divergent other sides), and removes adjacent inverse
inferences; updated mappings become visible at the next pass.  Passes
repeat until no new direct inference is made.

A half that received a direct inference during this add step is never
reconsidered within the same step, even when a contradiction fix later
discarded that inference — "only a single direct inference can be made
on each IH per add step" (section 4.4.2).  Across outer iterations a
discarded half may be re-inferred, which is what produces the repeating
terminal state of section 4.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.engine import Engine
from repro.core.state import DirectInference, IndirectInference
from repro.graph.halves import BACKWARD, FORWARD, Half, half_fields

#: Optional hook fired after named sub-stages (used for Fig 7).
StageHook = Callable[[str], None]


@dataclass
class AddStepReport:
    """What one add step (Alg 2 passes plus the §4.4.3–4.4.4 fixes) did."""

    passes: int = 0
    direct_added: int = 0
    indirect_added: int = 0
    dual_resolved: int = 0
    inverse_removed: int = 0
    uncertain_marked: int = 0


def add_step(engine: Engine, hook: Optional[StageHook] = None) -> AddStepReport:
    """Run the full add step (Alg 1 line 3, section 4.4): repeat the
    four sub-steps — direct pass, indirect propagation, contradiction
    fixes, inverse-inference removal — to fixpoint."""
    state = engine.state
    obs = engine.obs
    state.inferred_this_step = set()
    report = AddStepReport()
    with obs.span("add/candidates"):
        candidates = engine.candidate_halves()
    first_pass = True
    while True:
        report.passes += 1
        if obs.enabled:
            obs.event("add.pass.start", **{"pass": report.passes})
        with obs.span("add/direct"):
            new_directs = _direct_pass(engine, candidates)
        report.direct_added += len(new_directs)
        if first_pass and hook is not None:
            hook("direct")
        with obs.span("add/indirect"):
            indirect_added = _propagate_indirect(engine, new_directs)
        report.indirect_added += indirect_added
        with obs.span("add/contradictions"):
            if engine.config.fix_dual_inferences:
                report.dual_resolved += _fix_dual_inferences(engine)
            if engine.config.fix_divergent_other_sides:
                _flag_divergent_other_sides(engine)
        if first_pass and hook is not None:
            hook("contradictions")
        with obs.span("add/inverse"):
            if engine.config.fix_inverse_inferences:
                removed, uncertain = _fix_inverse_inferences(engine)
                report.inverse_removed += removed
                report.uncertain_marked += uncertain
        if first_pass and hook is not None:
            hook("inverse")
        state.refresh_visible()
        if obs.enabled:
            obs.event(
                "add.pass.end",
                direct_added=len(new_directs),
                indirect_added=indirect_added,
                direct=len(state.direct),
                indirect=len(state.indirect),
                **{"pass": report.passes},
            )
        if not new_directs:
            break
        first_pass = False
    if obs.enabled:
        obs.event(
            "add.end",
            passes=report.passes,
            direct_added=report.direct_added,
            indirect_added=report.indirect_added,
            dual_resolved=report.dual_resolved,
            inverse_removed=report.inverse_removed,
            uncertain_marked=report.uncertain_marked,
        )
        obs.inc("mapit.add.passes", report.passes)
        obs.inc("mapit.inference.direct_added", report.direct_added)
        obs.inc("mapit.inference.indirect_added", report.indirect_added)
    return report


def _direct_pass(engine: Engine, candidates: List[Half]) -> List[DirectInference]:
    """Alg 2: one greedy pass over the interface halves."""
    if engine.incremental:
        return _direct_pass_incremental(engine, candidates)
    state = engine.state
    f = engine.config.f
    tracing = engine.obs.tracer.enabled
    added: List[DirectInference] = []
    for half in candidates:
        if half in state.direct or half in state.inferred_this_step:
            continue
        plurality = engine.plurality(half)
        if plurality is None or not plurality.satisfies_f(f):
            continue
        previous = engine.half_asn(half)
        if engine.canonical(previous) == plurality.canonical_as:
            continue
        inference = DirectInference(
            half=half,
            local_as=previous,
            remote_as=plurality.member_as,
        )
        state.add_direct(inference)
        added.append(inference)
        if tracing:
            engine.obs.event(
                "inference.added",
                kind="direct",
                rule="direct",
                local_as=previous,
                remote_as=plurality.member_as,
                count=plurality.count,
                total=plurality.total,
                **half_fields(half),
            )
    return added


def _hot_halves(engine: Engine) -> set:
    """Halves whose Alg 2 test can read a visible (inferred) mapping.

    A half ``(a, d)`` tallies the halves ``(n, not d)`` for each
    neighbor ``n`` of ``(a, d)``, plus its own visible entry.  Inverting
    that: an overridden half ``(n, e)`` influences itself and every
    ``(a, not e)`` with ``a`` in ``neighbors(n, e)``.  Any half outside
    this set computes exactly its base (original-mapping) decision.
    """
    graph = engine.graph
    hot = set(engine.state.visible)
    for address, direction in list(hot):
        for neighbor in graph.neighbors(address, direction):
            hot.add((neighbor, not direction))
    return hot


def _direct_pass_incremental(
    engine: Engine, candidates: List[Half]
) -> List[DirectInference]:
    """Alg 2 pass restricted to the dirty region (docs/SERVE.md).

    Only three kinds of half can deviate from a memoized no-inference
    outcome: halves whose tally can see a visible override (*hot*),
    halves whose neighbor-set membership changed since the memo was
    written (*stale*), and halves whose memo says an inference fires
    (replayed from the memo without recounting).  Everything else is
    skipped — its recomputation would provably land on the memoized
    None.  The work list is iterated in the same sorted order the full
    pass uses, so the state trajectory is byte-identical.
    """
    state = engine.state
    f = engine.config.f
    tracing = engine.obs.tracer.enabled
    hot = _hot_halves(engine)
    recount = hot | engine._memo_stale
    work = recount | engine._memo_positive
    if len(work) < len(candidates):
        work_list = sorted(work & engine._candidate_set)
    else:
        work_list = candidates
    added: List[DirectInference] = []
    for half in work_list:
        if half in state.direct or half in state.inferred_this_step:
            continue
        if half in recount:
            decision = None
            plurality = engine.plurality(half)
            if plurality is not None and plurality.satisfies_f(f):
                previous = engine.half_asn(half)
                if engine.canonical(previous) != plurality.canonical_as:
                    decision = (
                        previous,
                        plurality.member_as,
                        plurality.count,
                        plurality.total,
                    )
            if half not in hot:
                # Computed against original mappings only: a valid base
                # decision, safe to memoize for future passes and runs.
                engine.memoize_base(half, decision)
            if decision is None:
                continue
        else:
            decision = engine._base_memo[half]
            if decision is None:  # pragma: no cover - positive set invariant
                continue
        local_as, remote_as, count, total = decision
        inference = DirectInference(
            half=half,
            local_as=local_as,
            remote_as=remote_as,
        )
        state.add_direct(inference)
        added.append(inference)
        if tracing:
            engine.obs.event(
                "inference.added",
                kind="direct",
                rule="direct",
                local_as=local_as,
                remote_as=remote_as,
                count=count,
                total=total,
                **half_fields(half),
            )
    return added


def _propagate_indirect(engine: Engine, new_directs: List[DirectInference]) -> int:
    """Section 4.4.2: update the other side of each new direct inference.

    Known IXP interfaces are skipped — IXP LANs are multipoint, so the
    /30-/31 other-side arithmetic does not apply to them.
    """
    state = engine.state
    tracing = engine.obs.tracer.enabled
    added = 0
    for direct in new_directs:
        if engine.ip2as.is_ixp(direct.half[0]):
            continue
        partner = engine.other_side_half(direct.half)
        if partner is None:
            continue
        state.add_indirect(
            IndirectInference(
                half=partner,
                local_as=direct.local_as,
                remote_as=direct.remote_as,
                source=direct.half,
            )
        )
        added += 1
        if tracing:
            engine.obs.event(
                "inference.added",
                kind="indirect",
                rule="propagate",
                local_as=direct.local_as,
                remote_as=direct.remote_as,
                source=half_fields(direct.half)["address"],
                **half_fields(partner),
            )
    return added


def _fix_dual_inferences(engine: Engine) -> int:
    """Section 4.4.3, first contradiction: both halves of one interface
    directly inferred toward *different* ASes.

    Third-party addresses cause this (Fig 4); the forward inference is
    the trustworthy one, so the backward inference is discarded.  Both
    are kept when they involve the same AS (or siblings).  Interfaces
    without an original IP2AS mapping are left alone — the paper
    declines to fix contradictions on unannounced addresses.
    """
    state = engine.state
    tracing = engine.obs.tracer.enabled
    resolved = 0
    backward_halves = [half for half in state.direct if half[1] == BACKWARD]
    for half in backward_halves:
        address = half[0]
        forward = (address, FORWARD)
        if forward not in state.direct:
            continue
        if engine.original_asn(address) <= 0:
            continue
        forward_remote = engine.canonical(state.direct[forward].remote_as)
        backward_remote = engine.canonical(state.direct[half].remote_as)
        if forward_remote == backward_remote:
            state.dual_same_as += 1
            continue
        discarded = state.direct[half]
        state.remove_direct(half)
        state.dual_resolved += 1
        resolved += 1
        if tracing:
            engine.obs.event(
                "inference.removed",
                rule="dual",
                local_as=discarded.local_as,
                remote_as=discarded.remote_as,
                **half_fields(half),
            )
    return resolved


def _flag_divergent_other_sides(engine: Engine) -> None:
    """Section 4.4.3, second contradiction: a link's two endpoints are
    directly inferred toward different ASes.

    The paper assumes the other-side pairing itself is wrong and does
    not pick a winner; we therefore detach the indirect updates the two
    directs imposed on each other and count the occurrence.
    """
    state = engine.state
    for half, direct in list(state.direct.items()):
        partner = engine.other_side_half(half)
        if partner is None or partner not in state.direct:
            continue
        if half > partner:
            continue  # visit each pair once
        if engine.original_asn(half[0]) <= 0 or engine.original_asn(partner[0]) <= 0:
            continue
        if engine.canonical(direct.remote_as) == engine.canonical(
            state.direct[partner].remote_as
        ):
            continue
        newly_detached = False
        for indirect_half, source in ((partner, half), (half, partner)):
            indirect = state.indirect.get(indirect_half)
            if indirect is not None and indirect.source == source and not indirect.detached:
                indirect.detached = True
                newly_detached = True
                if engine.obs.tracer.enabled:
                    engine.obs.event(
                        "inference.detached",
                        rule="divergent_other_side",
                        source=half_fields(source)["address"],
                        **half_fields(indirect_half),
                    )
        if newly_detached:
            state.divergent_other_sides += 1


def _fix_inverse_inferences(engine: Engine) -> tuple:
    """Section 4.4.4: adjacent inverse inferences.

    A backward inference (from AS_B to AS_A) on an interface *b* that
    appears in the forward neighbor set of an interface *a* carrying
    the inverse forward inference (from AS_A to AS_B) is usually the
    mistaken one: the forward inference is topologically nearer to the
    monitors.  We discard the backward inference — unless a direct
    inference also exists on the other side of *b*, in which case
    neither is nearer and every conflicting inference is kept but
    marked uncertain.

    All matching predecessors are considered, not just the first in
    address order: when several inverse-forward inferences surround one
    backward inference, the remove-vs-uncertain outcome and the set of
    flagged forward inferences must not depend on predecessor address
    ordering.
    """
    state = engine.state
    removed = 0
    uncertain = 0
    backward_halves = [
        half
        for half, direct in state.direct.items()
        if half[1] == BACKWARD and not direct.uncertain
    ]
    for half in backward_halves:
        backward = state.direct.get(half)
        if backward is None:
            continue
        local = engine.canonical(backward.local_as)
        remote = engine.canonical(backward.remote_as)
        # b appears in N_F(a) exactly when a appears in N_B(b).
        matching = []
        for predecessor in sorted(engine.graph.n_backward(half[0])):
            forward_half = (predecessor, FORWARD)
            forward = state.direct.get(forward_half)
            if forward is None:
                continue
            if (
                engine.canonical(forward.local_as) != remote
                or engine.canonical(forward.remote_as) != local
            ):
                continue
            matching.append((forward_half, forward))
        if not matching:
            continue
        partner = engine.other_side_half(half)
        tracing = engine.obs.tracer.enabled
        if partner is not None and partner in state.direct:
            if not backward.uncertain:
                backward.uncertain = True
                uncertain += 1
                if tracing:
                    engine.obs.event(
                        "inference.uncertain", rule="inverse", **half_fields(half)
                    )
            state.uncertain_log.setdefault(half, backward)
            for forward_half, forward in matching:
                if not forward.uncertain:
                    forward.uncertain = True
                    uncertain += 1
                    if tracing:
                        engine.obs.event(
                            "inference.uncertain",
                            rule="inverse",
                            **half_fields(forward_half),
                        )
                state.uncertain_log.setdefault(forward_half, forward)
                state.uncertain_pairs += 1
        else:
            state.remove_direct(half)
            state.inverse_removed += 1
            removed += 1
            if tracing:
                engine.obs.event(
                    "inference.removed",
                    rule="inverse",
                    local_as=backward.local_as,
                    remote_as=backward.remote_as,
                    **half_fields(half),
                )
    return removed, uncertain
