"""MAP-IT driver: Alg 1 plus the section 4.6 convergence rule.

The outer loop alternates the add step and the remove step until the
inference state at the end of a remove step repeats — the paper's
stopping criterion, needed because uncertain inference pairs may be
added and removed forever.  The stub heuristic runs once afterwards.

:class:`MapIt` operates on a pre-built interface graph; the
:func:`run_mapit` convenience function goes all the way from raw traces
(sanitizing them first) to a :class:`~repro.core.results.MapItResult`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.bgp.ip2as import IP2AS
from repro.core.add import add_step
from repro.core.config import MapItConfig
from repro.core.engine import Engine
from repro.core.remove import remove_step
from repro.core.results import (
    Checkpoint,
    DIRECT,
    EngineSnapshot,
    INDIRECT,
    LinkInference,
    MapItResult,
    STUB,
)
from repro.core.state import MapItState
from repro.core.stub import stub_step
from repro.graph.halves import Half
from repro.graph.neighbors import InterfaceGraph, build_interface_graph
from repro.obs.observer import Observability
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.model import Trace
from repro.traceroute.sanitize import sanitize_traces


class MapIt:
    """One configured MAP-IT run over an interface graph (Alg 1)."""

    def __init__(
        self,
        graph: InterfaceGraph,
        ip2as: IP2AS,
        org: Optional[AS2Org] = None,
        rel: Optional[RelationshipDataset] = None,
        config: Optional[MapItConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.engine = Engine(graph, ip2as, org, rel, config, obs=obs)
        self._checkpoints: List[Checkpoint] = []

    # -- checkpointing (Fig 7) ------------------------------------------------

    def _checkpoint(self, label: str) -> None:
        if not self.engine.config.record_checkpoints:
            return
        inferences, uncertain = self._collect()
        self._checkpoints.append(Checkpoint(label, inferences + uncertain))
        if self.engine.obs.enabled:
            self.engine.obs.event(
                "checkpoint", label=label, inferences=len(inferences) + len(uncertain)
            )

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        on_iteration: Optional[Callable[[int, EngineSnapshot], None]] = None,
        resume: Optional[EngineSnapshot] = None,
    ) -> MapItResult:
        """Execute Alg 1 (add step, remove step, section 4.6 repeated-
        state convergence, then the Alg 4 stub heuristic) and return
        the results.

        *on_iteration* is called after each completed (non-repeating)
        iteration with a resumable :class:`EngineSnapshot` — the run
        journal's hook.  *resume* continues the outer loop from such a
        snapshot instead of a fresh state; because each iteration is a
        pure function of the state it starts from, the continuation is
        byte-identical to the uninterrupted run.
        """
        engine = self.engine
        config = engine.config
        obs = engine.obs
        if obs.enabled:
            obs.event(
                "run.start",
                f=config.f,
                min_neighbors=config.min_neighbors,
                remove_rule=config.remove_rule,
                max_iterations=config.max_iterations,
                stub_heuristic=config.enable_stub_heuristic,
                resumed_from=resume.iterations if resume is not None else None,
            )
        if resume is not None:
            engine.state = resume.state
            self._checkpoints = list(resume.checkpoints)
            seen_fingerprints = set(resume.seen_fingerprints)
            iterations = resume.iterations
        else:
            seen_fingerprints = {engine.state.fingerprint()}
            iterations = 0
        engine.state.refresh_visible()
        converged = False
        while iterations < config.max_iterations:
            iterations += 1
            if obs.enabled:
                obs.event("iteration.start", iteration=iterations)
            first = iterations == 1 and config.record_checkpoints
            hook = (lambda stage: self._checkpoint(f"add 1: {stage}")) if first else None
            with obs.span("pass/add"):
                add_step(engine, hook)
            if first:
                self._checkpoint("add 1: all passes")
            if config.enable_remove_step:
                with obs.span("pass/remove"):
                    remove_step(engine)
            self._checkpoint(f"iteration {iterations}")
            fingerprint = engine.state.fingerprint()
            repeated = fingerprint in seen_fingerprints
            if obs.enabled:
                obs.event(
                    "iteration.end",
                    iteration=iterations,
                    direct=len(engine.state.direct),
                    indirect=len(engine.state.indirect),
                    repeated=repeated,
                )
            if repeated:
                converged = True
                break
            seen_fingerprints.add(fingerprint)
            if on_iteration is not None:
                on_iteration(
                    iterations,
                    EngineSnapshot(
                        iterations=iterations,
                        state=engine.state,
                        seen_fingerprints=sorted(seen_fingerprints),
                        checkpoints=list(self._checkpoints),
                    ),
                )
        if config.enable_stub_heuristic:
            with obs.span("pass/stub"):
                stub_step(engine)
            self._checkpoint("stub heuristic")
        with obs.span("collect"):
            inferences, uncertain = self._collect()
        state = engine.state
        if obs.enabled:
            obs.event(
                "run.end",
                iterations=iterations,
                converged=converged,
                direct=len(state.direct),
                indirect=len(state.indirect),
                uncertain=len(uncertain),
            )
            obs.inc("mapit.runs")
            obs.inc("mapit.iterations", iterations)
            obs.gauge("mapit.inferences", len(inferences))
            obs.gauge("mapit.uncertain", len(uncertain))
        return MapItResult(
            inferences=inferences,
            uncertain=uncertain,
            iterations=iterations,
            converged=converged,
            diagnostics={
                "dual_resolved": state.dual_resolved,
                "dual_same_as": state.dual_same_as,
                "divergent_other_sides": state.divergent_other_sides,
                "inverse_removed": state.inverse_removed,
                "uncertain_pairs": state.uncertain_pairs,
                "direct": len(state.direct),
                "indirect": len(state.indirect),
            },
            checkpoints=self._checkpoints,
        )

    # -- incremental entry point (docs/SERVE.md) -------------------------------

    def run_incremental(self, dirty_halves: Iterable[Half] = ()) -> MapItResult:
        """Re-run the multipass over a graph that grew since the last
        call, recomputing only the dirty region.

        *dirty_halves* are the interface halves whose neighbor-set
        membership changed (as reported by
        :func:`repro.perf.flat.accumulate_flat`).  The run restarts from
        an empty :class:`~repro.core.state.MapItState` — iteration
        counts, diagnostics, and the uncertain log are trajectory
        properties, so only the batch trajectory reproduces the batch
        result byte-for-byte — but the engine keeps its memo of base
        direct-pass decisions, so each pass touches only the frontier:
        hot halves (those that can see a visible override), stale halves
        (structurally dirty), and memoized positives.  The returned
        result is byte-identical to a fresh batch run over the same
        graph.
        """
        engine = self.engine
        engine.enable_incremental()
        with engine.obs.span("serve/invalidate"):
            stale = engine.invalidate_halves(dirty_halves)
        engine.obs.inc("serve.halves.invalidated", stale)
        engine.state = MapItState()
        self._checkpoints = []
        return self.run()

    # -- output ---------------------------------------------------------------

    def _collect(self) -> Tuple[List[LinkInference], List[LinkInference]]:
        """Materialize inference records from the live state (the two
        output lists of section 4.4.4: confident and uncertain).

        When a half carries both a direct and an indirect inference the
        direct one wins.  Detached indirects (divergent other sides)
        are dropped.  Indirect inferences inherit the uncertainty of
        their supporting direct.
        """
        engine = self.engine
        state = engine.state
        confident: List[LinkInference] = []
        uncertain: List[LinkInference] = []
        # Uncertain pairs are typically added and removed forever (the
        # section 4.6 cycle), so halves from the uncertain log that are
        # not currently held as direct inferences are reported from the
        # log.
        for half, direct in sorted(state.uncertain_log.items()):
            if half in state.direct:
                continue
            uncertain.append(
                LinkInference(
                    address=half[0],
                    forward=half[1],
                    local_as=direct.local_as,
                    remote_as=direct.remote_as,
                    kind=STUB if direct.via_stub else DIRECT,
                    other_side=engine.graph.other_side(half[0]),
                    uncertain=True,
                )
            )
        for half, direct in sorted(state.direct.items()):
            record = LinkInference(
                address=half[0],
                forward=half[1],
                local_as=direct.local_as,
                remote_as=direct.remote_as,
                kind=STUB if direct.via_stub else DIRECT,
                other_side=engine.graph.other_side(half[0]),
                uncertain=direct.uncertain,
            )
            (uncertain if direct.uncertain else confident).append(record)
        for half, indirect in sorted(state.indirect.items()):
            if half in state.direct or indirect.detached:
                continue
            source = state.direct.get(indirect.source)
            source_uncertain = source.uncertain if source is not None else False
            record = LinkInference(
                address=half[0],
                forward=half[1],
                local_as=indirect.local_as,
                remote_as=indirect.remote_as,
                kind=INDIRECT,
                other_side=indirect.source[0],
                uncertain=source_uncertain,
            )
            (uncertain if source_uncertain else confident).append(record)
        return confident, uncertain


def run_mapit_graph(
    graph: InterfaceGraph,
    ip2as: IP2AS,
    org: Optional[AS2Org] = None,
    rel: Optional[RelationshipDataset] = None,
    config: Optional[MapItConfig] = None,
    obs: Optional[Observability] = None,
) -> MapItResult:
    """Run MAP-IT over a pre-built interface graph.

    The tail of the fused parallel loader (docs/PERFORMANCE.md): the
    graph was already built at load time, so this skips sanitize/build
    and, before the passes start, warms the engine's origin cache with
    one sorted batched LPM sweep over every address the passes can
    query (``Engine.prime_origins``) — amortizing ip2as resolution per
    run instead of per neighbor lookup.  The result is identical to
    :func:`run_mapit` over the traces that produced *graph*.
    """
    from repro.perf.flat import graph_address_universe

    mapit = MapIt(graph, ip2as, org=org, rel=rel, config=config, obs=obs)
    warmed = mapit.engine.prime_origins(graph_address_universe(graph))
    mapit.engine.obs.inc("perf.flat.origins_warmed", warmed)
    return mapit.run()


def run_mapit(
    traces: Iterable[Trace],
    ip2as: IP2AS,
    org: Optional[AS2Org] = None,
    rel: Optional[RelationshipDataset] = None,
    config: Optional[MapItConfig] = None,
    obs: Optional[Observability] = None,
    jobs: int = 1,
    shard_timeout: Optional[float] = None,
) -> MapItResult:
    """Sanitize *traces* (section 4.1), build the interface graph
    (sections 4.2–4.3), and run MAP-IT (Alg 1).

    *obs*, when given, receives structured trace events, metrics, and
    profiling spans for the whole pipeline (docs/OBSERVABILITY.md).

    *jobs > 1* shards sanitization and graph construction across worker
    processes (:mod:`repro.perf.graph`); the inference passes themselves
    are serial either way, and the result is identical
    (docs/PERFORMANCE.md).  *shard_timeout* is the supervisor's
    per-shard deadline for the pooled stages (docs/ROBUSTNESS.md).
    """
    if jobs > 1:
        from repro.obs.observer import NULL_OBS
        from repro.perf.graph import build_graph_parallel

        graph = build_graph_parallel(
            list(traces),
            jobs,
            obs=obs if obs is not None else NULL_OBS,
            shard_timeout=shard_timeout,
        )
        return MapIt(graph, ip2as, org=org, rel=rel, config=config, obs=obs).run()
    if obs is not None:
        with obs.span("sanitize"):
            report = sanitize_traces(traces)
        graph = build_interface_graph(
            report.traces, all_addresses=report.all_addresses, obs=obs
        )
        return MapIt(graph, ip2as, org=org, rel=rel, config=config, obs=obs).run()
    report = sanitize_traces(traces)
    graph = build_interface_graph(report.traces, all_addresses=report.all_addresses)
    return MapIt(graph, ip2as, org=org, rel=rel, config=config).run()
