"""The low-visibility / NAT stub heuristic (paper section 4.8, Alg 4).

The main algorithm needs at least two distinct addresses from the
connected AS next to a link.  Stub ASes often expose exactly one
address — a NAT front, flow control, or simply too few probes — so
after the main loop converges, every forward half with a *single*
neighbor is examined:

* the neighbor must map (under the converged mappings) to a different,
  non-sibling AS that is a **stub** (no non-sibling customers in the
  relationship data);
* neither the interface's backward half nor the neighbor's backward
  half may already carry an inference — if the link were named from
  the stub's space, a backward inference would already exist.

A qualifying half gets a direct inference to the stub AS, its other
side gets the matching indirect inference, and both mappings update.
Third-party addresses cannot trigger this step: a third-party address
returned by a stub maps to one of its providers, and providers are by
definition not stubs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import Engine
from repro.core.state import DirectInference, IndirectInference
from repro.graph.halves import BACKWARD, FORWARD, half_fields


@dataclass
class StubStepReport:
    """What the stub heuristic (Alg 4, §4.8) did."""

    examined: int = 0
    inferred: int = 0


def stub_step(engine: Engine) -> StubStepReport:
    """Run Alg 4 (section 4.8) once over all single-neighbor forward
    halves, after the main loop has converged."""
    state = engine.state
    obs = engine.obs
    tracing = obs.tracer.enabled
    report = StubStepReport()
    for address in sorted(engine.graph.forward):
        members = engine.graph.forward[address]
        if len(members) != 1:
            continue
        report.examined += 1
        half = (address, FORWARD)
        if half in state.direct or half in state.indirect:
            # An existing inference (even an indirect one from the
            # link's other side) means the link is already captured;
            # stacking a stub inference on top can only compound an
            # upstream mistake.
            continue
        (neighbor,) = members
        neighbor_half = (neighbor, BACKWARD)
        backward_half = (address, BACKWARD)
        if backward_half in state.direct or backward_half in state.indirect:
            continue
        if neighbor_half in state.direct or neighbor_half in state.indirect:
            continue
        own_as = engine.half_asn(half)
        neighbor_as = engine.half_asn(neighbor_half)
        if neighbor_as <= 0 or own_as <= 0:
            continue
        if engine.canonical(own_as) == engine.canonical(neighbor_as):
            continue
        if not engine.rel.is_stub(neighbor_as, engine.org):
            continue
        if not engine.rel.knows(neighbor_as):
            # An AS absent from the relationship data cannot be
            # positively identified as a stub; inferring against it
            # would fire on every low-visibility ISP as well.
            continue
        direct = DirectInference(
            half=half,
            local_as=own_as,
            remote_as=neighbor_as,
            via_stub=True,
        )
        state.add_direct(direct)
        if tracing:
            obs.event(
                "inference.added",
                kind="direct",
                rule="stub",
                local_as=own_as,
                remote_as=neighbor_as,
                count=1,
                total=1,
                **half_fields(half),
            )
        partner = engine.other_side_half(half)
        if partner is not None and not engine.ip2as.is_ixp(address):
            state.add_indirect(
                IndirectInference(
                    half=partner,
                    local_as=own_as,
                    remote_as=neighbor_as,
                    source=half,
                )
            )
            if tracing:
                obs.event(
                    "inference.added",
                    kind="indirect",
                    rule="stub_propagate",
                    local_as=own_as,
                    remote_as=neighbor_as,
                    source=half_fields(half)["address"],
                    **half_fields(partner),
                )
        report.inferred += 1
    state.refresh_visible()
    if obs.enabled:
        obs.event(
            "stub.end",
            examined=report.examined,
            inferred=report.inferred,
            direct=len(state.direct),
            indirect=len(state.indirect),
        )
        obs.inc("mapit.inference.stub_added", report.inferred)
    return report
