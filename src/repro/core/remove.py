"""The remove step (paper section 4.5, Alg 3).

Multiple passes over the halves carrying direct inferences, each pass
reading only the mappings visible at its start.  A direct inference
whose connected AS no longer dominates its neighbor set is demoted to
an indirect inference (retaining its mapping) — it survives only while
a direct inference on the other side of its link supports it; after
every pass, unsupported indirect inferences are discarded along with
their mapping updates.  The step converges because inferences are only
ever discarded here.

Two readings of the dominance test exist in the paper (prose: "more
than half of its N"; Alg 3: "the inference would no longer be made").
Both are implemented; :class:`~repro.core.config.MapItConfig` selects
one, defaulting to the prose rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import REMOVE_ADD_RULE
from repro.core.engine import Engine
from repro.core.state import DirectInference, IndirectInference
from repro.graph.halves import Half, half_fields


@dataclass
class RemoveStepReport:
    """What one remove step (Alg 3, §4.5) did."""

    passes: int = 0
    demoted: int = 0
    indirect_discarded: int = 0


def _still_holds(engine: Engine, direct: DirectInference) -> bool:
    """Would this direct inference survive under current mappings?
    (Alg 3 line 4's test; section 4.5 prose vs literal readings are
    selected by :attr:`~repro.core.config.MapItConfig.remove_rule`.)"""
    tally = engine.dominance(direct.half, engine.canonical(direct.remote_as))
    if engine.config.remove_rule == REMOVE_ADD_RULE:
        plurality = engine.plurality(direct.half)
        return (
            plurality is not None
            and plurality.canonical_as == engine.canonical(direct.remote_as)
            and plurality.satisfies_f(engine.config.f)
        )
    return tally.is_majority()


def _supporter_for(engine: Engine, half: Half) -> Optional[Half]:
    """A live direct inference whose link other-side is *half*
    (Alg 3 line 5: demotion to an indirect inference needs a live
    supporting direct on the link's other side).

    Other-side assignment is usually symmetric, so the candidate is the
    direct inference on *half*'s own other side — but we verify that
    its other side really points back at *half*, covering the rare
    asymmetric /30-vs-/31 judgements.
    """
    partner = engine.other_side_half(half)
    if partner is None or partner not in engine.state.direct:
        return None
    if engine.other_side_half(partner) == half:
        return partner
    return None


def remove_step(engine: Engine) -> RemoveStepReport:
    """Run the remove step (Alg 3, section 4.5) to fixpoint."""
    state = engine.state
    obs = engine.obs
    tracing = obs.tracer.enabled
    report = RemoveStepReport()
    while True:
        report.passes += 1
        with obs.span("remove/dominance"):
            doomed: List[Half] = [
                half
                for half, direct in sorted(state.direct.items())
                if not direct.via_stub and not _still_holds(engine, direct)
            ]
        for half in doomed:
            direct = state.direct.pop(half)
            supporter = _supporter_for(engine, half)
            if supporter is not None:
                state.add_indirect(
                    IndirectInference(
                        half=half,
                        local_as=direct.local_as,
                        remote_as=direct.remote_as,
                        source=supporter,
                    )
                )
            if tracing:
                obs.event(
                    "inference.removed",
                    rule="demoted" if supporter is not None else "removed",
                    local_as=direct.local_as,
                    remote_as=direct.remote_as,
                    **half_fields(half),
                )
        report.demoted += len(doomed)
        swept = state.sweep_unsupported_indirect()
        report.indirect_discarded += swept
        state.refresh_visible()
        if obs.enabled:
            obs.event(
                "remove.pass.end",
                demoted=len(doomed),
                swept=swept,
                direct=len(state.direct),
                indirect=len(state.indirect),
                **{"pass": report.passes},
            )
        if not doomed and not swept:
            break
    if obs.enabled:
        obs.event(
            "remove.end",
            passes=report.passes,
            demoted=report.demoted,
            indirect_discarded=report.indirect_discarded,
        )
        obs.inc("mapit.remove.passes", report.passes)
        obs.inc("mapit.inference.demoted", report.demoted)
        obs.inc("mapit.inference.swept", report.indirect_discarded)
    return report
