"""Shared machinery for the add, remove, and stub passes.

The :class:`Engine` binds together the interface graph, the original
IP-to-AS mapper, sibling data, relationships, the config, and the
mutable state, and implements the neighbor-set AS counting that every
pass relies on (Alg 2 lines 2–3).

Counting rules, from the paper:

* a neighbor of the half ``(a, forward)`` is the *backward* half of
  each member of N_F(a), and vice versa (Fig 3) — mappings are per
  half, so the direction matters;
* sibling ASes count as one AS (section 4.4.1); when a sibling group
  wins, the recorded connected AS is the group's most frequent member;
* unannounced addresses (and IXP/private markers) are not inferable
  ASes, but they do occupy the denominator and compete for the
  plurality — a neighbor set made "primarily of unannounced addresses"
  must not yield an inference (section 5.4).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.ip2as import IP2AS
from repro.core.config import MapItConfig
from repro.core.state import MapItState
from repro.graph.halves import BACKWARD, FORWARD, Half
from repro.graph.neighbors import InterfaceGraph
from repro.obs.observer import NULL_OBS, Observability
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset


def most_frequent_member(members: Dict[int, int], default: int) -> int:
    """The most frequent AS in a member tally, lowest ASN on ties.

    Section 4.4.1: when a sibling group wins a count, the recorded
    connected AS is the group's most frequent member.  Both the add
    step's plurality and the remove step's dominance tally go through
    this one helper so the two passes can never disagree about which
    member AS a sibling group stands for.
    """
    if not members:
        return default
    top = max(members.values())
    return min(asn for asn, count in members.items() if count == top)


@dataclass(frozen=True)
class Plurality:
    """Outcome of counting a neighbor set (the Alg 2 line 3–5 tally).

    ``canonical_as`` is the winning organization's representative;
    ``member_as`` the most frequent actual AS inside it; ``count`` its
    tally; ``total`` the neighbor-set size (the f denominator).
    """

    canonical_as: int
    member_as: int
    count: int
    total: int

    def satisfies_f(self, f: float) -> bool:
        """Alg 2 line 3: COUNT(AS_N) >= COUNT(neighbors) * f."""
        return self.count >= self.total * f

    def is_majority(self) -> bool:
        """Section 4.5's remove test: more than half of N."""
        return 2 * self.count > self.total


class Engine:
    """Bound context for one MAP-IT run (the state Alg 1 threads
    through its add/remove steps): the interface graph, the IP2AS /
    sibling / relationship datasets, the config, and the mutable
    :class:`~repro.core.state.MapItState`."""

    def __init__(
        self,
        graph: InterfaceGraph,
        ip2as: IP2AS,
        org: Optional[AS2Org] = None,
        rel: Optional[RelationshipDataset] = None,
        config: Optional[MapItConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.graph = graph
        self.ip2as = ip2as
        self.org = org or AS2Org()
        self.rel = rel or RelationshipDataset()
        self.config = config or MapItConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.state = MapItState()
        self._origin_cache: Dict[int, int] = {}
        # Incremental (dirty-region) machinery, enabled by
        # :meth:`enable_incremental` for the serve daemon.  ``_base_memo``
        # caches, per candidate half, the outcome of the Alg 2 direct test
        # evaluated against *original* BGP mappings only (the iteration-1
        # pass-1 condition): either None (no inference) or the
        # ``(local_as, remote_as, count, total)`` it would add.  The memo
        # stays valid until the half's own neighbor-set membership changes,
        # because the base test reads only that set and static datasets
        # (ip2as / org / config).  ``_memo_positive`` indexes the non-None
        # entries; ``_memo_stale`` the halves whose memo must be refreshed.
        self._base_memo: Optional[Dict[Half, Optional[Tuple[int, int, int, int]]]] = None
        self._memo_positive: Set[Half] = set()
        self._memo_stale: Set[Half] = set()
        self._candidate_list: Optional[List[Half]] = None
        self._candidate_set: Set[Half] = set()

    # -- mappings -----------------------------------------------------------

    def original_asn(self, address: int) -> int:
        """BGP-derived origin for *address* (cached; Alg 1 input IP2AS)."""
        asn = self._origin_cache.get(address)
        if asn is None:
            asn = self.ip2as.asn(address)
            self._origin_cache[address] = asn
        return asn

    def prime_origins(self, addresses) -> int:
        """Warm the origin cache with one sorted, batched LPM pass.

        Resolving addresses in sorted order walks the longest-prefix
        trie through shared prefixes back to back instead of faulting
        lookups in one neighbor at a time mid-pass.  Purely a cache
        warm: each entry is exactly what :meth:`original_asn` would
        compute on demand.  Returns how many addresses were resolved.
        """
        cache = self._origin_cache
        asn = self.ip2as.asn
        warmed = 0
        for address in sorted(set(addresses)):
            if address not in cache:
                cache[address] = asn(address)
                warmed += 1
        return warmed

    def half_asn(self, half: Half) -> int:
        """Current (snapshot) mapping of *half* (section 4.4.1's per-half
        IP2AS view: direct inference, else indirect, else BGP origin)."""
        return self.state.visible_asn(half, self.original_asn(half[0]))

    def canonical(self, asn: int) -> int:
        """Organization identity (section 4.4.1 sibling merging);
        sentinels map to themselves."""
        if asn <= 0:
            return asn
        return self.org.canonical(asn)

    # -- incremental (dirty-region) mode -------------------------------------

    @property
    def incremental(self) -> bool:
        """True once :meth:`enable_incremental` armed the memo tables."""
        return self._base_memo is not None

    def enable_incremental(self) -> None:
        """Arm the dirty-region machinery (docs/SERVE.md).

        After this, :meth:`candidate_halves` is cached and maintained by
        :meth:`invalidate_halves`, and the add step's direct pass skips
        halves whose memoized base decision is still valid.  Results are
        byte-identical to non-incremental runs — the memo only elides
        recomputation whose inputs are provably unchanged.
        """
        if self._base_memo is None:
            self._base_memo = {}

    def reset_incremental(self) -> None:
        """Drop every memo and the candidate cache (still incremental).

        Used after wholesale graph replacement (checkpoint restore):
        the next run rebuilds the caches from the live tables, exactly
        like the first incremental run did.
        """
        if self._base_memo is None:
            return
        self._base_memo = {}
        self._memo_positive = set()
        self._memo_stale = set()
        self._candidate_list = None
        self._candidate_set = set()

    def invalidate_halves(self, halves: Iterable[Half]) -> int:
        """Mark *halves* structurally dirty: their neighbor-set
        membership changed, so their memoized base decisions are void
        and their candidate eligibility must be re-judged.  Returns how
        many candidate halves were actually invalidated.
        """
        if self._base_memo is None:
            return 0
        minimum = self.config.min_neighbors
        stale = 0
        for half in halves:
            self._base_memo.pop(half, None)
            self._memo_positive.discard(half)
            if self._candidate_list is None:
                continue
            if half in self._candidate_set:
                self._memo_stale.add(half)
                stale += 1
            elif len(self.graph.neighbors(half[0], half[1])) >= minimum:
                self._candidate_set.add(half)
                insort(self._candidate_list, half)
                self._memo_stale.add(half)
                stale += 1
        return stale

    def memoize_base(self, half: Half, decision: Optional[Tuple[int, int, int, int]]) -> None:
        """Record the base (original-mapping) direct-test outcome for
        *half* and clear its stale mark."""
        self._base_memo[half] = decision
        self._memo_stale.discard(half)
        if decision is None:
            self._memo_positive.discard(half)
        else:
            self._memo_positive.add(half)

    # -- candidates -----------------------------------------------------------

    def candidate_halves(self) -> List[Half]:
        """Halves eligible for direct inference: |N| >= min_neighbors
        (Alg 2 line 1's iteration set; the paper requires at least 2).

        Sorted for determinism; the algorithm's results do not depend
        on the order (section 4.4.5) but reproducible diagnostics do.
        In incremental mode the list is computed once and maintained by
        :meth:`invalidate_halves` — eligibility is monotone there
        because serve ingestion only ever grows neighbor sets.
        """
        if self._candidate_list is not None:
            return self._candidate_list
        minimum = self.config.min_neighbors
        halves: List[Half] = []
        for address, members in self.graph.forward.items():
            if len(members) >= minimum:
                halves.append((address, FORWARD))
        for address, members in self.graph.backward.items():
            if len(members) >= minimum:
                halves.append((address, BACKWARD))
        halves.sort()
        if self._base_memo is not None:
            self._candidate_list = halves
            self._candidate_set = set(halves)
            self._memo_stale = set(halves)
        return halves

    # -- counting -----------------------------------------------------------

    def count_groups(self, half: Half) -> Tuple[Dict[int, int], Dict[int, Dict[int, int]], int]:
        """Tally the neighbor set of *half* by organization (Alg 2
        line 2's COUNT, with section 4.4.1 sibling merging).

        Returns ``(group_counts, member_counts, total)`` where group
        keys are canonical ASes (or non-positive sentinels) and
        ``member_counts[group]`` tallies actual ASes inside it.
        """
        address, forward = half
        neighbors = self.graph.neighbors(address, forward)
        neighbor_direction = not forward
        group_counts: Dict[int, int] = {}
        member_counts: Dict[int, Dict[int, int]] = {}
        for neighbor in neighbors:
            asn = self.half_asn((neighbor, neighbor_direction))
            group = self.canonical(asn)
            group_counts[group] = group_counts.get(group, 0) + 1
            members = member_counts.setdefault(group, {})
            members[asn] = members.get(asn, 0) + 1
        return group_counts, member_counts, len(neighbors)

    def plurality(self, half: Half) -> Optional[Plurality]:
        """The AS appearing strictly more than all others in N(half)
        (Alg 2 line 2's AS_N; the f test of line 3 is applied by the
        caller via :meth:`Plurality.satisfies_f`).

        Returns None when the set is empty, when no real AS (positive
        number) wins, or when the top count is tied.
        """
        group_counts, member_counts, total = self.count_groups(half)
        if not group_counts:
            return None
        best_group = None
        best_count = 0
        tied = False
        for group, count in group_counts.items():
            if count > best_count:
                best_group, best_count, tied = group, count, False
            elif count == best_count:
                tied = True
        if tied or best_group is None or best_group <= 0:
            return None
        member_as = most_frequent_member(member_counts[best_group], best_group)
        return Plurality(best_group, member_as, best_count, total)

    def dominance(self, half: Half, canonical_as: int) -> Plurality:
        """Tally for a *specific* organization in N(half) — the remove
        step's section 4.5 dominance test (Alg 3 line 4)."""
        group_counts, member_counts, total = self.count_groups(half)
        count = group_counts.get(canonical_as, 0)
        member_as = most_frequent_member(
            member_counts.get(canonical_as, {}), canonical_as
        )
        return Plurality(canonical_as, member_as, count, total)

    # -- other sides ---------------------------------------------------------

    def other_side_half(self, half: Half) -> Optional[Half]:
        """The link partner of *half*: other address, opposite direction
        (section 4.2's /30-vs-/31 other-side judgement)."""
        other = self.graph.other_side(half[0])
        if other is None:
            return None
        return (other, not half[1])
