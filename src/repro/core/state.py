"""Mutable algorithm state: inferences and per-half IP-to-AS mappings.

Key design decisions, each anchored in the paper:

* IP-to-AS mappings are maintained **per interface half** (section
  4.4.1: "An IP2AS update on one half of an interface does not affect
  the IP2AS mapping for the other half").
* Updates are derived entirely from live inferences: the visible
  mapping for a half is the AS of its direct inference, else of its
  indirect inference, else the original BGP-derived origin.  Discarding
  an inference therefore automatically rolls back its update (Alg 3
  line 6).
* Determinism (section 4.4.5): passes read a *snapshot* of the visible
  mappings taken at the start of the pass; updates become visible only
  on the next pass.  :meth:`MapItState.refresh_visible` takes that
  snapshot.
* An indirect inference is linked to the direct inference on the other
  side of its link; it survives only while that direct does (section
  4.4.2).  Other-side assignment is not guaranteed symmetric, so the
  link is stored explicitly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.graph.halves import Half, half_str


@dataclass
class DirectInference:
    """A direct inference on one interface half (Alg 2).

    The inference asserts: the interface is used on an inter-AS link
    between ``local_as`` (the half's mapping when the inference was
    made) and ``remote_as`` (the AS dominating its neighbor set).  The
    half's visible mapping becomes ``remote_as``.
    """

    half: Half
    local_as: int
    remote_as: int
    uncertain: bool = False
    via_stub: bool = False

    def pair(self) -> Tuple[int, int]:
        """The unordered AS pair the link connects."""
        return (min(self.local_as, self.remote_as), max(self.local_as, self.remote_as))

    def __str__(self) -> str:
        return f"{half_str(self.half)}: AS{self.local_as} <-> AS{self.remote_as}"


@dataclass
class IndirectInference:
    """An indirect inference (section 4.4.2): the other side of a link.

    ``source`` is the half carrying the supporting direct inference.
    The half's visible mapping becomes ``remote_as`` (the same AS_N as
    the source's), unless a direct inference on this half overrides it.
    """

    half: Half
    local_as: int
    remote_as: int
    source: Half
    detached: bool = False  # divergent-other-side: update suppressed

    def __str__(self) -> str:
        return (
            f"{half_str(self.half)}: AS{self.local_as} <-> AS{self.remote_as}"
            f" (via {half_str(self.source)})"
        )


class MapItState:
    """All mutable state of a MAP-IT run.

    Live direct/indirect inference tables, the per-pass mapping
    snapshot of §4.4.5 (``visible``, refreshed between passes so every
    pass reads end-of-previous-pass state), the §4.4.4 uncertain log,
    and the order-independent fingerprint the §4.6 convergence test
    compares.
    """

    def __init__(self) -> None:
        #: live direct inferences, keyed by half
        self.direct: Dict[Half, DirectInference] = {}
        #: live indirect inferences, keyed by half
        self.indirect: Dict[Half, IndirectInference] = {}
        #: halves that received a direct inference during the current
        #: add step; Alg 2 skips them even if a contradiction fix later
        #: removed the inference ("only a single direct inference can be
        #: made on each IH per add step")
        self.inferred_this_step: Set[Half] = set()
        #: mapping snapshot the current pass reads (half -> AS override)
        self.visible: Dict[Half, int] = {}
        #: halves ever classified uncertain (section 4.4.4) — such
        #: inference pairs are typically added and removed forever (the
        #: section 4.6 cycle), so the final uncertain output is the
        #: union over the run, not a snapshot
        self.uncertain_log: Dict[Half, DirectInference] = {}
        #: diagnostic counters
        self.dual_resolved = 0
        self.dual_same_as = 0
        self.divergent_other_sides = 0
        self.inverse_removed = 0
        self.uncertain_pairs = 0

    # -- inference bookkeeping -------------------------------------------

    def add_direct(self, inference: DirectInference) -> None:
        """Record an Alg 2 direct inference and mark its half used
        for the rest of this add step (§4.4.5)."""
        self.direct[inference.half] = inference
        self.inferred_this_step.add(inference.half)

    def add_indirect(self, inference: IndirectInference) -> None:
        """Record a §4.4.2 indirect (other-side) inference."""
        self.indirect[inference.half] = inference

    def remove_direct(self, half: Half) -> Optional[DirectInference]:
        """Discard a direct inference and its dependent indirect."""
        inference = self.direct.pop(half, None)
        if inference is None:
            return None
        for key, indirect in list(self.indirect.items()):
            if indirect.source == half:
                del self.indirect[key]
        return inference

    def sweep_unsupported_indirect(self) -> int:
        """Drop indirect inferences whose supporting direct is gone."""
        doomed = [
            key
            for key, indirect in self.indirect.items()
            if indirect.source not in self.direct
        ]
        for key in doomed:
            del self.indirect[key]
        return len(doomed)

    # -- visible mappings --------------------------------------------------

    def refresh_visible(self) -> None:
        """Take the mapping snapshot the next pass will read.

        Direct inferences take precedence over indirect ones; detached
        indirect inferences (divergent other sides) contribute nothing.
        """
        visible: Dict[Half, int] = {}
        for half, indirect in self.indirect.items():
            if not indirect.detached:
                visible[half] = indirect.remote_as
        for half, direct in self.direct.items():
            visible[half] = direct.remote_as
        self.visible = visible

    def visible_asn(self, half: Half, original: int) -> int:
        """Mapping of *half* in the current snapshot."""
        return self.visible.get(half, original)

    # -- convergence ---------------------------------------------------------

    def fingerprint(self) -> str:
        """Deterministic, order-independent digest of the inference state.

        Used by section 4.6's stopping rule: the overall loop ends when
        the state at the end of a remove step repeats.  The digest is a
        sha256 over a canonical sorted encoding — *not* Python's
        ``hash()``, whose per-process string salt (PYTHONHASHSEED)
        would make fingerprints incomparable across processes and break
        ``--resume``, which must match journaled fingerprints from the
        crashed run.
        """
        lines = sorted(
            f"d:{half[0]}:{int(half[1])}:{direct.local_as}:"
            f"{direct.remote_as}:{int(direct.uncertain)}"
            for half, direct in self.direct.items()
        )
        lines += sorted(
            f"i:{half[0]}:{int(half[1])}:{indirect.remote_as}:"
            f"{indirect.source[0]}:{int(indirect.source[1])}:"
            f"{int(indirect.detached)}"
            for half, indirect in self.indirect.items()
        )
        return hashlib.sha256("\n".join(lines).encode("ascii")).hexdigest()

    # -- introspection ------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Live table sizes plus the §4.4.3–4.4.4 diagnostic counters."""
        return {
            "direct": len(self.direct),
            "indirect": len(self.indirect),
            "uncertain": sum(1 for d in self.direct.values() if d.uncertain),
        }

    def __len__(self) -> int:
        return len(self.direct) + len(self.indirect)
